"""Ingestion benchmark: write-path throughput and epoch-turnover latency.

Measures the live-ingestion subsystem on the bench_serving "medium" dataset
shape and records three scenarios into ``BENCH_ingest.json``:

* **throughput** — single-rating ``LiveStore.ingest`` calls per second and
  batched ``ingest_batch`` rows per second (validation + dedup included).
* **compaction** — wall seconds to fold deltas of increasing size into the
  next epoch, incrementally (vocabulary remap + index delta updates) vs the
  from-scratch rebuild reference (``use_incremental=False``), with the
  per-state attribute index pre-built so the incremental path must maintain
  it.  The speedup column is the headline: compaction cost must scale with
  the *delta*, not the store.
* **post_ingest_explain** — serving latency right after an epoch turnover:
  a carried-forward cache entry (untouched item), a re-warmed anchor
  (touched item, ``rewarm=True``), and the cold recompute a touched item
  pays when re-warming is disabled.

Run the writer (from the repository root)::

    python benchmarks/bench_ingest.py            # writes BENCH_ingest.json
    python benchmarks/bench_ingest.py --quick    # fewer rows, same shape
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

# Make the src layout importable when the package is not installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.config import MiningConfig, PipelineConfig, ServerConfig
from repro.data.ingest import LiveStore
from repro.data.model import Rating
from repro.data.storage import RatingStore
from repro.data.synthetic import SyntheticConfig, SyntheticMovieLens
from repro.server.api import MapRat

MINING_CONFIG = MiningConfig(max_groups=3, min_coverage=0.25, rhe_restarts=6)
DATASET_CONFIG = SyntheticConfig(
    num_reviewers=2400, num_movies=300, ratings_per_reviewer=50, seed=5
)


def build_dataset():
    return SyntheticMovieLens(DATASET_CONFIG).generate(name="bench-ingest")


def make_ratings(dataset, count: int, seed: int = 11):
    rng = np.random.default_rng(seed)
    item_ids = np.array([item.item_id for item in dataset.items()])
    reviewer_ids = np.array([r.reviewer_id for r in dataset.reviewers()])
    return [
        Rating(
            item_id=int(rng.choice(item_ids)),
            reviewer_id=int(rng.choice(reviewer_ids)),
            score=float(rng.integers(1, 6)),
            timestamp=int(4_000_000_000 + index),  # distinct: no dedup skew
        )
        for index in range(count)
    ]


def bench_throughput(dataset, store, rows: int) -> dict:
    live = LiveStore(store)
    singles = make_ratings(dataset, rows, seed=11)
    started = time.perf_counter()
    for rating in singles:
        live.ingest(rating)
    single_seconds = time.perf_counter() - started

    live_batch = LiveStore(store)
    batch = [(rating, None) for rating in make_ratings(dataset, rows, seed=13)]
    started = time.perf_counter()
    live_batch.ingest_batch(batch)
    batch_seconds = time.perf_counter() - started
    return {
        "rows": rows,
        "single_seconds": round(single_seconds, 4),
        "single_rows_per_second": round(rows / single_seconds, 1),
        "batch_seconds": round(batch_seconds, 4),
        "batch_rows_per_second": round(rows / batch_seconds, 1),
    }


def bench_compaction(dataset, store, delta_sizes) -> list:
    results = []
    for size in delta_sizes:
        ratings = make_ratings(dataset, size, seed=17)
        timings = {}
        for mode, use_incremental in (("incremental", True), ("rebuild", False)):
            live = LiveStore(store, use_incremental=use_incremental)
            live.snapshot.attribute_index("state")  # force index maintenance
            live.ingest_batch([(rating, None) for rating in ratings])
            started = time.perf_counter()
            result = live.compact()
            timings[mode] = time.perf_counter() - started
            assert result.epoch == store.epoch + 1
        results.append(
            {
                "delta_rows": size,
                "store_rows": len(store),
                "incremental_seconds": round(timings["incremental"], 4),
                "rebuild_seconds": round(timings["rebuild"], 4),
                "speedup": round(timings["rebuild"] / timings["incremental"], 2),
            }
        )
    return results


def bench_post_ingest_explain(dataset) -> dict:
    def timed(callable_):
        started = time.perf_counter()
        callable_()
        return time.perf_counter() - started

    config = PipelineConfig(
        mining=MINING_CONFIG, server=ServerConfig(mining_workers=0)
    )
    system = MapRat.for_dataset(dataset, config)
    top, second = [agg.item_id for agg in system.precomputer.top_items(limit=2)]
    reviewer = next(system.dataset.reviewers())
    system.explain_items([top])
    system.explain_items([second])

    # Touch `top`, leave `second` untouched; rewarm the invalidated anchor.
    system.ingest(top, reviewer.reviewer_id, 5.0, timestamp=4_100_000_000)
    compaction = system.compact(rewarm=True)
    carried_seconds = timed(lambda: system.explain_items([second]))
    rewarmed_seconds = timed(lambda: system.explain_items([top]))

    # The same turnover without re-warming: the touched anchor pays the
    # cold mining cost on its first post-ingest read.
    system.ingest(top, reviewer.reviewer_id, 5.0, timestamp=4_100_000_001)
    system.compact(rewarm=False)
    cold_seconds = timed(lambda: system.explain_items([top]))
    system.close()
    return {
        "carried_entries": compaction["carried_entries"],
        "rewarmed_anchors": compaction["rewarmed"],
        "carried_read_seconds": round(carried_seconds, 6),
        "rewarmed_read_seconds": round(rewarmed_seconds, 6),
        "cold_read_seconds": round(cold_seconds, 6),
        "cold_over_warm": round(cold_seconds / max(rewarmed_seconds, 1e-9), 1),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_ingest.json"),
        help="where to write the JSON record (default: repo-root BENCH_ingest.json)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="fewer rows, same report shape"
    )
    args = parser.parse_args(argv)

    dataset = build_dataset()
    store = RatingStore(dataset)
    throughput_rows = 2000 if args.quick else 10000
    delta_sizes = [100, 1000] if args.quick else [100, 1000, 5000]

    print(f"dataset: {dataset.num_ratings} ratings, store epoch {store.epoch}")
    throughput = bench_throughput(dataset, store, throughput_rows)
    print(f"throughput: {throughput['single_rows_per_second']}/s single, "
          f"{throughput['batch_rows_per_second']}/s batched")
    compaction = bench_compaction(dataset, store, delta_sizes)
    for row in compaction:
        print(f"compaction delta={row['delta_rows']}: "
              f"incremental {row['incremental_seconds']}s vs "
              f"rebuild {row['rebuild_seconds']}s ({row['speedup']}x)")
    post_ingest = bench_post_ingest_explain(dataset)
    print(f"post-ingest explain: carried {post_ingest['carried_read_seconds']}s, "
          f"rewarmed {post_ingest['rewarmed_read_seconds']}s, "
          f"cold {post_ingest['cold_read_seconds']}s")

    report = {
        "benchmark": "ingest",
        "dataset": {
            "reviewers": DATASET_CONFIG.num_reviewers,
            "movies": DATASET_CONFIG.num_movies,
            "ratings": dataset.num_ratings,
        },
        "quick": args.quick,
        "throughput": throughput,
        "compaction": compaction,
        "post_ingest_explain": post_ingest,
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
