"""Experiment "MRI-S": scalability of the mining pipeline.

The paper calls efficient group selection over "thousands of potential
candidates" the main technical challenge (§1), because the underlying problems
are NP-hard.  This benchmark measures how the two tractable stages scale with
the size of the input rating set, and records how fast the *intractable*
exhaustive alternative blows up (by counting, not executing, its evaluations).

Shapes to hold:

* candidate enumeration and RHE scale roughly linearly in the number of rating
  tuples of the query (the cube is bounded by the attribute domains),
* the exhaustive selection count grows by orders of magnitude with the
  candidate count, which is why RHE exists.
"""

import pytest

from repro.config import MiningConfig
from repro.core.baselines import ExhaustiveSolver
from repro.core.cube import CandidateEnumerator, enumerate_candidates
from repro.core.problems import SimilarityProblem
from repro.core.rhe import RandomizedHillExploration
from repro.data.storage import RatingStore
from repro.data.synthetic import SyntheticConfig, SyntheticMovieLens

#: Rating-set sizes exercised by the scaling sweep (per-query slice sizes).
SWEEP_FRACTIONS = {"quarter": 0.25, "half": 0.5, "full": 1.0}

SCALING_CONFIG = MiningConfig(
    max_groups=3, min_coverage=0.25, min_group_support=5, rhe_restarts=4
)


@pytest.fixture(scope="module")
def scaling_store():
    """A dedicated mid-size dataset so the sweep has headroom (~1200 reviewers)."""
    dataset = SyntheticMovieLens(
        SyntheticConfig(num_reviewers=1200, num_movies=300, ratings_per_reviewer=50, seed=5)
    ).generate(name="scaling")
    return RatingStore(dataset)


@pytest.fixture(scope="module")
def popular_slice(scaling_store):
    """The rating slice of the most-rated item of the scaling dataset."""
    item_id, _ = scaling_store.most_rated_items(limit=1)[0]
    return scaling_store.slice_for_items([item_id])


def _sub_slice(rating_slice, fraction):
    """A prefix sub-slice with the requested fraction of the rating tuples."""
    import numpy as np

    size = max(50, int(len(rating_slice) * fraction))
    mask = np.zeros(len(rating_slice), dtype=bool)
    mask[:size] = True
    return rating_slice.restrict(mask)


@pytest.mark.parametrize("label", sorted(SWEEP_FRACTIONS))
def test_candidate_enumeration_scaling(benchmark, popular_slice, label):
    """Cube enumeration time as the rating slice grows."""
    rating_slice = _sub_slice(popular_slice, SWEEP_FRACTIONS[label])
    candidates = benchmark(enumerate_candidates, rating_slice, SCALING_CONFIG)
    benchmark.extra_info["ratings"] = len(rating_slice)
    benchmark.extra_info["candidates"] = len(candidates)


@pytest.mark.parametrize("label", sorted(SWEEP_FRACTIONS))
def test_rhe_scaling(benchmark, popular_slice, label):
    """RHE solve time as the rating slice (and candidate cube) grows."""
    rating_slice = _sub_slice(popular_slice, SWEEP_FRACTIONS[label])
    candidates = enumerate_candidates(rating_slice, SCALING_CONFIG)
    problem = SimilarityProblem(rating_slice, candidates, SCALING_CONFIG)
    solver = RandomizedHillExploration(restarts=4, max_iterations=150, seed=3)
    result = benchmark.pedantic(lambda: solver.solve(problem), rounds=3, iterations=1)
    benchmark.extra_info["ratings"] = len(rating_slice)
    benchmark.extra_info["candidates"] = len(candidates)
    benchmark.extra_info["objective"] = round(result.objective, 4)
    benchmark.extra_info["feasible"] = result.feasible


def test_exhaustive_blowup_is_counted_not_executed(benchmark, popular_slice):
    """How many selections exhaustive search would need as the cube grows."""
    solver = ExhaustiveSolver()

    def count_all():
        counts = {}
        for label, fraction in SWEEP_FRACTIONS.items():
            rating_slice = _sub_slice(popular_slice, fraction)
            candidates = enumerate_candidates(rating_slice, SCALING_CONFIG)
            counts[label] = {
                "candidates": len(candidates),
                "selections_to_evaluate": solver.count_selections(len(candidates), 3),
            }
        return counts

    counts = benchmark.pedantic(count_all, rounds=1, iterations=1)
    assert counts["full"]["selections_to_evaluate"] > counts["quarter"]["selections_to_evaluate"]
    assert counts["full"]["selections_to_evaluate"] > 100_000
    benchmark.extra_info["exhaustive_counts"] = counts
