"""Experiment "§2.3 claim": pre-processing, pre-computation and caching minimise latency.

"Using a combination of aggressive data pre-processing, result pre-computation
and caching techniques, the latency of MapRat is minimized."

This benchmark measures the three latency regimes of the same query:

* **cold** — nothing cached: slice, cube, SM + DM mining on every call,
* **pre-computed** — the per-item aggregates and indexed store are already
  built (data pre-processing), mining still runs,
* **cached** — the query was explained before (result caching): the answer is
  an LRU lookup.

Shape to hold: cached ≪ cold by several orders of magnitude, and the one-off
store construction (pre-processing) is amortised across all queries.
"""

import pytest

from repro.config import PipelineConfig
from repro.data.storage import RatingStore
from repro.server.api import MapRat

QUERY = 'title:"Toy Story"'


def test_cold_explain_without_any_caching(benchmark, system):
    """Cold path: full mining on every request."""
    result = benchmark.pedantic(
        lambda: system.explain(QUERY, use_cache=False), rounds=5, iterations=1
    )
    assert result.similarity.groups
    benchmark.extra_info["regime"] = "cold"


def test_warm_cache_hit(benchmark, system):
    """Cached path: the same query answered from the result cache."""
    system.explain(QUERY)  # ensure the entry exists
    result = benchmark(lambda: system.explain(QUERY))
    assert result.similarity.groups
    benchmark.extra_info["regime"] = "cached"
    benchmark.extra_info["cache_hit_rate"] = system.cache.stats.hit_rate


def test_data_preprocessing_store_construction(benchmark, small_dataset, bench_config):
    """One-off cost of the aggressive data pre-processing (indexed store build)."""
    store = benchmark.pedantic(
        lambda: RatingStore(small_dataset), rounds=3, iterations=1
    )
    assert len(store) == small_dataset.num_ratings
    benchmark.extra_info["regime"] = "preprocessing (one-off)"


def test_precompute_warm_up_of_popular_items(benchmark, small_dataset, bench_config):
    """Result pre-computation: warming the cache for the most popular items."""

    def warm_up():
        fresh = MapRat.for_dataset(small_dataset, PipelineConfig(mining=bench_config))
        report = fresh.warm_up(limit=5)
        return fresh, report

    fresh, report = benchmark.pedantic(warm_up, rounds=2, iterations=1)
    assert report["results_precomputed"] >= 4
    # After warm-up the popular queries answer from the cache.
    before = fresh.cache.stats.hits
    fresh.explain_items([fresh.precomputer.top_items(1)[0].item_id])
    assert fresh.cache.stats.hits == before + 1
    benchmark.extra_info["regime"] = "precompute (one-off, 5 items)"
    benchmark.extra_info["report"] = report
