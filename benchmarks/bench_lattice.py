"""Benchmark of the materialised cuboid lattice vs per-request enumeration.

Measures, per scale, on the synthetic MovieLens-shaped workload:

* **lattice construction** — build wall-clock, resident bytes, cuboid and
  cell counts, and the pre-build estimate the budget gate uses;
* **candidate stage** — p50 of ``CandidateEnumerator.enumerate_with_stats``
  with ``use_lattice=True`` vs ``False`` for the four slice shapes the
  serving stack produces: whole-store (``direct`` mode), region
  (``restrict``), single-item and multi-item (``scan``).  Both paths are
  verified bit-identical before timings are recorded.  For the memoised
  modes the first (materialising) call is recorded separately from the
  steady-state lookup p50 — the lookup is what a cold request pays once the
  epoch's artifact exists, which is the lattice's design point;
* **cold endpoints** — p50 of cache-bypassed ``explain`` / ``geo_explain``
  requests against two otherwise-identical systems (lattice on / off).
  These improve by less than the candidate stage: with candidate production
  reduced to ~0, the cold request is bounded below by the RHE solves and
  explanation rendering, which are byte-identical on both sides (Amdahl's
  law — see PERFORMANCE.md).

Run the writer (from the repository root)::

    python benchmarks/bench_lattice.py           # writes BENCH_lattice.json
    python benchmarks/bench_lattice.py --quick   # medium scale only, fewer repeats

``BENCH_lattice.json`` is the perf trajectory future PRs regress against.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

# Make the src layout importable when the package is not installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.config import MiningConfig, PipelineConfig, ServerConfig
from repro.core.cube import CandidateEnumerator
from repro.core.miner import RatingMiner
from repro.data.lattice import CuboidLattice
from repro.data.storage import RatingStore
from repro.data.synthetic import SyntheticConfig, SyntheticMovieLens
from repro.geo.explorer import GeoExplorer
from repro.server.api import MapRat

MINING_CONFIG = MiningConfig(
    max_groups=3, min_coverage=0.25, min_group_support=5, rhe_restarts=4
)

SCALES = {
    "medium": dict(num_reviewers=2400, num_movies=300, ratings_per_reviewer=50),
    "large": dict(num_reviewers=9600, num_movies=600, ratings_per_reviewer=50),
}


def _p50(fn, repeats):
    """Median wall-clock of ``repeats`` runs, in milliseconds."""
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return round(statistics.median(times) * 1000, 3)


def _build_dataset(scale):
    config = SyntheticConfig(seed=5, **scale)
    return SyntheticMovieLens(config).generate(name="bench-lattice")


def _identical(left, right):
    """Bit-identity of two candidate lists (descriptor, rows, stats)."""
    if [g.descriptor for g in left] != [g.descriptor for g in right]:
        return False
    return all(
        np.array_equal(a.positions, b.positions)
        and a.mean == b.mean
        and a.error == b.error
        for a, b in zip(left, right)
    )


def _enumerate(rating_slice, use_lattice):
    enumerator = CandidateEnumerator.from_config(rating_slice, MINING_CONFIG)
    enumerator.use_lattice = use_lattice
    return enumerator.enumerate()


def bench_candidate_stage(store, repeats):
    """Per-slice-shape candidate timings: lattice path vs DFS enumeration."""
    explorer = GeoExplorer(RatingMiner(store, MINING_CONFIG))
    region = explorer.top_regions(limit=1)[0]
    top_items = [item_id for item_id, _ in store.most_rated_items(limit=3)]
    workloads = {
        "whole_store": lambda: store.slice_all(),
        "region": lambda: explorer._region_slice(region, None, None),
        "single_item": lambda: store.slice_for_items(top_items[:1]),
        "multi_item": lambda: store.slice_for_items(top_items),
    }
    record = {}
    for name, make_slice in workloads.items():
        rating_slice = make_slice()
        first_started = time.perf_counter()
        fast_groups = _enumerate(rating_slice, True)
        first_ms = round((time.perf_counter() - first_started) * 1000, 3)
        slow_groups = _enumerate(rating_slice, False)
        identical = _identical(fast_groups, slow_groups)
        lattice_ms = _p50(lambda: _enumerate(make_slice(), True), repeats)
        enum_ms = _p50(lambda: _enumerate(make_slice(), False), repeats)
        record[name] = {
            "ratings": len(rating_slice),
            "candidates": len(fast_groups),
            "lattice_first_call_ms": first_ms,
            "lattice_p50_ms": lattice_ms,
            "enumeration_p50_ms": enum_ms,
            "speedup": round(enum_ms / lattice_ms, 1) if lattice_ms else None,
            "identical": identical,
        }
    return record


def _strip_elapsed(node):
    if isinstance(node, dict):
        return {
            k: _strip_elapsed(v) for k, v in node.items() if k != "elapsed_seconds"
        }
    if isinstance(node, list):
        return [_strip_elapsed(v) for v in node]
    return node


def bench_cold_endpoints(dataset, repeats, budget_mb):
    """Cache-bypassed endpoint p50s on lattice-on vs lattice-off systems."""
    results = {}
    payloads = {}
    for use_lattice in (False, True):
        config = PipelineConfig(
            mining=MINING_CONFIG,
            server=ServerConfig(
                use_cuboid_lattice=use_lattice,
                lattice_budget_mb=budget_mb,
                mining_workers=0,
                precompute_top_items=0,
            ),
        )
        system = MapRat.for_dataset(dataset, config)
        try:
            store = system.miner.store
            region = GeoExplorer(system.miner).top_regions(limit=1)[0]
            top_items = [item_id for item_id, _ in store.most_rated_items(limit=3)]
            calls = {
                "explain_single_item": lambda: system.explain_items(
                    top_items[:1], use_cache=False
                ),
                "explain_multi_item": lambda: system.explain_items(
                    top_items, use_cache=False
                ),
                "geo_explain_whole_store": lambda: system.geo_explain_items(
                    None, region, use_cache=False
                ),
                "geo_explain_item": lambda: system.geo_explain_items(
                    top_items[:1], region, use_cache=False
                ),
            }
            payloads[use_lattice] = {
                name: _strip_elapsed(json.loads(json.dumps(call().to_dict())))
                for name, call in calls.items()
            }
            results[use_lattice] = {
                name: _p50(call, repeats) for name, call in calls.items()
            }
        finally:
            system.close()
    record = {}
    for name in results[True]:
        on_ms, off_ms = results[True][name], results[False][name]
        record[name] = {
            "lattice_p50_ms": on_ms,
            "enumeration_p50_ms": off_ms,
            "speedup": round(off_ms / on_ms, 2) if on_ms else None,
            "identical": payloads[True][name] == payloads[False][name],
        }
    return record


def bench_scale(scale, repeats, budget_mb):
    dataset = _build_dataset(scale)
    store = RatingStore(dataset)

    started = time.perf_counter()
    lattice = CuboidLattice.build(store)
    build_ms = round((time.perf_counter() - started) * 1000, 1)
    store.attach_lattice(lattice)

    record = {
        "ratings": len(store),
        "lattice": {
            "build_ms": build_ms,
            "resident_bytes": lattice.nbytes,
            "resident_mb": round(lattice.nbytes / 2**20, 1),
            "estimate_bytes": CuboidLattice.estimate_nbytes(len(store)),
            "num_cuboids": lattice.num_cuboids,
            "num_cells": lattice.num_cells,
        },
        "candidate_stage": bench_candidate_stage(store, repeats),
        "cold_endpoints": bench_cold_endpoints(dataset, repeats, budget_mb),
    }
    return record


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_lattice.json"),
        help="where to write the JSON record (default: repo-root BENCH_lattice.json)",
    )
    parser.add_argument("--repeats", type=int, default=7, help="timing repeats (p50)")
    parser.add_argument(
        "--quick", action="store_true", help="medium scale only, 3 repeats"
    )
    args = parser.parse_args(argv)

    repeats = 3 if args.quick else args.repeats
    scales = {"medium": SCALES["medium"]} if args.quick else SCALES

    report = {
        "benchmark": "lattice",
        "workload": "synthetic MovieLens; cold (cache-bypassed) mining requests",
        "mining": {
            "max_groups": MINING_CONFIG.max_groups,
            "min_coverage": MINING_CONFIG.min_coverage,
            "min_group_support": MINING_CONFIG.min_group_support,
            "rhe_restarts": MINING_CONFIG.rhe_restarts,
        },
        "scales": {},
    }
    for name, scale in scales.items():
        print(f"[bench_lattice] running scale {name!r} ...", flush=True)
        record = bench_scale(scale, repeats, budget_mb=1024)
        report["scales"][name] = record
        stage = record["candidate_stage"]["whole_store"]
        print(
            f"[bench_lattice]   {name}: ratings={record['ratings']} "
            f"build={record['lattice']['build_ms']}ms "
            f"size={record['lattice']['resident_mb']}MB "
            f"whole-store candidates {stage['enumeration_p50_ms']}ms -> "
            f"{stage['lattice_p50_ms']}ms ({stage['speedup']}x)",
            flush=True,
        )

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_lattice] wrote {output}")
    return report


if __name__ == "__main__":
    main()
