"""Experiment "§1 claim": Diversity Mining surfaces controversial items.

The paper motivates DM with The Twilight Saga: Eclipse — the overall average
(4.8/10) hides that teenage female reviewers love the movie while teenage male
reviewers hate it.  The synthetic dataset plants exactly that polarisation;
this benchmark runs DM on the controversial movie and checks/records the shape
of the answer:

* the DM groups disagree by more than a full rating point,
* the planted female-teen vs male-teen gap exceeds 1.5 points,
* DM costs about the same as SM (both are one RHE run over the same cube).
"""

import pytest

from repro.config import MiningConfig
from repro.explore.statistics import group_statistics

QUERY = 'title:"The Twilight Saga: Eclipse"'

#: The §1 example groups are demographic, so the geo anchor is relaxed here.
DEMOGRAPHIC_CONFIG = MiningConfig(
    max_groups=3,
    min_coverage=0.2,
    require_geo_anchor=False,
    grouping_attributes=("gender", "age_group", "occupation"),
    rhe_restarts=6,
)


@pytest.fixture(scope="module")
def eclipse_slice(system):
    item_ids = system.engine.matching_item_ids(QUERY)
    return system.miner.slice_for_items(item_ids)


def test_diversity_mining_on_the_controversial_movie(benchmark, system):
    """DM end-to-end on the planted controversial movie."""
    result = benchmark.pedantic(
        lambda: system.explain(QUERY, config=DEMOGRAPHIC_CONFIG, use_cache=False),
        rounds=5,
        iterations=1,
    )
    means = [group.average_rating for group in result.diversity.groups]
    assert max(means) - min(means) > 1.0
    benchmark.extra_info["overall_average"] = result.query.average_rating
    benchmark.extra_info["dm_groups"] = [
        (g.label, g.average_rating) for g in result.diversity.groups
    ]
    benchmark.extra_info["dm_gap"] = round(max(means) - min(means), 3)


def test_planted_gender_age_polarisation(benchmark, eclipse_slice):
    """The paper's exact contrast: female vs male reviewers under 18."""

    def contrast():
        female = group_statistics(eclipse_slice, {"gender": "F", "age_group": "Under 18"})
        male = group_statistics(eclipse_slice, {"gender": "M", "age_group": "Under 18"})
        return female, male

    female, male = benchmark(contrast)
    assert female.mean - male.mean > 1.5
    benchmark.extra_info["female_under_18"] = female.mean
    benchmark.extra_info["male_under_18"] = male.mean


def test_similarity_mining_on_the_controversial_movie(benchmark, system):
    """SM on the same movie (comparison point: similar cost, different answer)."""
    result = benchmark.pedantic(
        lambda: system.explain(QUERY, config=DEMOGRAPHIC_CONFIG, use_cache=False),
        rounds=3,
        iterations=1,
    )
    assert result.similarity.groups
    benchmark.extra_info["sm_groups"] = [
        (g.label, g.average_rating) for g in result.similarity.groups
    ]
