"""Fleet-backend benchmark: TCP scatter-gather vs in-box sharding vs serial.

The sharded backend (PR 8, ``bench_shards.py``) scatters one request's
candidate-cube enumeration over forked workers that attach /dev/shm
segments.  The fleet backend (``mining_backend="fleet"``) keeps the same
scatter and the same merge but replaces the fork-and-mmap transport with
TCP: packed shard segments are shipped once per epoch to localhost worker
processes (length-prefixed CRC frames), tasks are routed by consistent
hashing with replicated placement, and the coordinator merges exactly as
before — so every result stays bit-identical while the workers could, in
principle, live on other machines.

This driver measures the *transport tax* of that substitution on one box:

* the same medium synthetic dataset and cold ``explain_items`` anchors as
  ``bench_procs`` / ``bench_shards``,
* **serial** (the reference), **sharded spawned** (the /dev/shm scatter the
  fleet replaces), and **fleet** (2 localhost TCP workers, replicas=2 — the
  smallest production topology),
* bit-identity of the first anchor's full response asserted across all
  modes before any timing is recorded, and the bytes shipped over the wire
  reported from the pool's own counters.

Results go to ``BENCH_fleet.json``.  On a 1-core box every mode shares one
CPU, so expect the fleet to *trail* serial and in-box sharding: the numbers
here price the pickle+frame+socket round-trip per task plus the one-time
segment ship per epoch, not scale-out.  The scale-out claim — per-worker
memory and CPU that leave the coordinator's box entirely — is structural
(workers are plain TCP endpoints; point ``--fleet-worker`` at another host)
and is documented, not measured, by this benchmark.

Run the writer (from the repository root)::

    python benchmarks/bench_fleet.py            # writes BENCH_fleet.json
    python benchmarks/bench_fleet.py --quick    # smaller load, same shape
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

# Make the src layout importable when the package is not installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.config import MiningConfig, PipelineConfig, ServerConfig
from repro.data.synthetic import SyntheticConfig, SyntheticMovieLens
from repro.server.api import MapRat

MINING_CONFIG = MiningConfig(max_groups=3, min_coverage=0.25, rhe_restarts=6)
#: The bench_procs / bench_shards dataset shape, for comparable numbers.
DATASET_CONFIG = SyntheticConfig(
    num_reviewers=2400, num_movies=300, ratings_per_reviewer=50, seed=5
)


def build_dataset():
    return SyntheticMovieLens(DATASET_CONFIG).generate(name="bench-fleet")


def build_system(dataset, backend: str, workers: int, shards: int) -> MapRat:
    config = PipelineConfig(
        mining=MINING_CONFIG,
        server=ServerConfig(
            mining_backend=backend,
            mining_workers=workers,
            mining_shards=shards,
            fleet_replicas=2,
        ),
    )
    return MapRat.for_dataset(dataset, config)


def normalized(payload: dict) -> dict:
    payload = json.loads(json.dumps(payload))

    def strip(node):
        if isinstance(node, dict):
            return {k: strip(v) for k, v in node.items() if k != "elapsed_seconds"}
        if isinstance(node, list):
            return [strip(v) for v in node]
        return node

    return strip(payload)


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def drive(system: MapRat, anchors) -> dict:
    """Open loop, one client: per-request latency is what the wire taxes."""
    latencies = []
    started = time.perf_counter()
    for item_ids in anchors:
        request_started = time.perf_counter()
        system.explain_items(item_ids, use_cache=False)
        latencies.append(time.perf_counter() - request_started)
    elapsed = time.perf_counter() - started
    latencies.sort()
    return {
        "anchors": len(anchors),
        "elapsed_seconds": round(elapsed, 4),
        "explains_per_second": round(len(anchors) / elapsed, 2) if elapsed else 0.0,
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 2),
        "p95_ms": round(percentile(latencies, 0.95) * 1000, 2),
    }


def run(quick: bool) -> dict:
    cpu_count = os.cpu_count() or 1
    workers = max(2, min(4, cpu_count))
    shards = workers
    num_anchors = 6 if quick else 24

    dataset = build_dataset()
    modes = {
        "serial": ("thread", 0, 1),
        "sharded_spawned": ("sharded", workers, shards),
        "fleet": ("fleet", workers, shards),
    }
    results: dict = {}
    fingerprints = {}
    fleet_wire: dict = {}
    for mode, (backend, mode_workers, mode_shards) in modes.items():
        started = time.perf_counter()
        system = build_system(dataset, backend, mode_workers, mode_shards)
        try:
            anchors = [
                [aggregate.item_id]
                for aggregate in system.precomputer.top_items(limit=num_anchors)
            ]
            startup = time.perf_counter() - started
            fingerprints[mode] = normalized(
                system.explain_items(anchors[0], use_cache=False).to_dict()
            )
            measured = drive(system, anchors)
            measured["startup_seconds"] = round(startup, 4)
            measured["backend"] = backend
            measured["workers"] = mode_workers
            measured["shards"] = mode_shards
            if backend == "fleet":
                pool = system.pool.to_dict()
                fleet_wire = {
                    "bytes_shipped": pool.get("bytes_shipped", 0),
                    "tasks_submitted": pool.get("tasks_submitted", 0),
                    "failovers": pool.get("failovers", 0),
                    "replicas": pool.get("replicas", 0),
                }
            results[mode] = measured
        finally:
            system.close()

    for mode in modes:
        assert fingerprints[mode] == fingerprints["serial"], f"{mode} != serial"

    def speedup(numerator: str, denominator: str) -> float:
        slow = results[numerator]["elapsed_seconds"]
        fast = results[denominator]["elapsed_seconds"]
        return round(slow / fast, 2) if fast else 0.0

    return {
        "benchmark": "fleet mining backend (TCP transport tax, cold explain latency)",
        "workload": {
            "dataset": {
                "reviewers": DATASET_CONFIG.num_reviewers,
                "movies": DATASET_CONFIG.num_movies,
                "ratings": dataset.num_ratings,
            },
            "mining": {
                "max_groups": MINING_CONFIG.max_groups,
                "min_coverage": MINING_CONFIG.min_coverage,
                "rhe_restarts": MINING_CONFIG.rhe_restarts,
            },
            "anchors": num_anchors,
            "clients": 1,
            "cache": "off (cold mining isolates backend latency)",
        },
        "shards": shards,
        "workers": workers,
        "cpu_count": cpu_count,
        "environment": {
            "cpu_count": cpu_count,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "modes": results,
        "fleet_wire": fleet_wire,
        "bit_identical": True,
        "speedup_fleet_vs_serial": speedup("serial", "fleet"),
        "speedup_fleet_vs_sharded_spawned": speedup("sharded_spawned", "fleet"),
        "interpretation": (
            "The fleet keeps the sharded backend's scatter and merge but "
            "swaps fork+/dev/shm for TCP: segments ship once per epoch over "
            "CRC-framed sockets and every task round-trips a pickled spec "
            "and result.  On this 1-core box the fleet therefore pays the "
            "in-box sharding tax plus the wire tax with no parallelism to "
            "buy it back — the honest headline is the per-task transport "
            "overhead, visible as the fleet/sharded latency gap, and the "
            "one-time segment ship recorded in fleet_wire.bytes_shipped.  "
            "What this benchmark cannot show on one machine is the "
            "backend's actual claim: workers are plain TCP endpoints "
            "(serve with `repro fleet-worker`, point --fleet-worker at "
            "other hosts), so the K-way split of memory *and CPU* leaves "
            "the coordinator's box entirely, with replicated placement "
            "surviving worker loss — all while every response stays "
            "bit-identical to serial, which is what the asserts here and "
            "the golden-fleet CI lane pin down."
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller load, same shape")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_fleet.json",
    )
    args = parser.parse_args()
    report = run(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
