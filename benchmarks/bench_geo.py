"""Geo serving benchmark: per-region mining fan-out and drill-down latency.

Measures the geo-visualization serving pillar on the bench_serving "medium"
dataset shape and records three scenarios into ``BENCH_geo.json``:

* **fanout** — :meth:`~repro.geo.explorer.GeoExplorer.explain_top_regions`
  mines the top-K regions of the whole store (the regional-dashboard
  workload), serially and sharded across the mining worker pool (one task
  per region, submission-ordered gathering).  Reported: wall seconds,
  regions/second, speedup, and a bit-identity check between the serial and
  sharded results — the determinism-under-parallelism invariant of the
  serving layer.  Note the speedup is modest by design: the RHE inner loop
  is pure-Python (GIL-bound), so the pool's value on this path is
  determinism plus keeping region mining off the request path (the warm
  pool), not CPU scaling.
* **drilldown** — warm vs cold latency of the ``geo_drilldown`` aggregate
  path (city and zipcode children of the largest state).  Cold bypasses the
  result cache (every request recomputes the bincount aggregation), warm
  answers from the canonical-key cache entry.
* **geo_explain** — warm vs cold latency of within-region mining, the
  expensive geo endpoint the top-region warm-up exists for.

Run the writer (from the repository root)::

    python benchmarks/bench_geo.py            # writes BENCH_geo.json
    python benchmarks/bench_geo.py --quick    # fewer repetitions, same shape
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

# Make the src layout importable when the package is not installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.config import MiningConfig, PipelineConfig, ServerConfig
from repro.core.explanation import stable_payload as stable
from repro.data.synthetic import SyntheticConfig, SyntheticMovieLens
from repro.server.api import MapRat

MINING_CONFIG = MiningConfig(max_groups=3, min_coverage=0.25, rhe_restarts=6)
DATASET_CONFIG = SyntheticConfig(
    num_reviewers=2400, num_movies=300, ratings_per_reviewer=50, seed=5
)
FANOUT_REGIONS = 8


def build_dataset():
    return SyntheticMovieLens(DATASET_CONFIG).generate(name="bench-geo")


def build_system(dataset, workers: int) -> MapRat:
    config = PipelineConfig(
        mining=MINING_CONFIG, server=ServerConfig(mining_workers=workers)
    )
    return MapRat.for_dataset(dataset, config)


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def time_repeated(fn, repetitions):
    """Latency distribution of ``fn`` over ``repetitions`` calls (ms)."""
    latencies = []
    for _ in range(repetitions):
        started = time.perf_counter()
        fn()
        latencies.append((time.perf_counter() - started) * 1000)
    latencies.sort()
    return {
        "repetitions": repetitions,
        "p50_ms": round(percentile(latencies, 0.50), 3),
        "p95_ms": round(percentile(latencies, 0.95), 3),
        "mean_ms": round(sum(latencies) / len(latencies), 3),
    }


def bench_fanout(dataset):
    """Serial vs pool-sharded per-region mining over the top regions."""
    record = {"regions": FANOUT_REGIONS, "selection": "whole store"}
    results = {}
    for label, workers in (("serial", 1), ("pool_4", 4)):
        system = build_system(dataset, workers=workers)
        started = time.perf_counter()
        mined = system.geo.explain_top_regions(
            None,
            limit=FANOUT_REGIONS,
            config=MINING_CONFIG,
            pool=system.pool,
        )
        elapsed = time.perf_counter() - started
        results[label] = [stable(result.to_dict()) for result in mined]
        record[label] = {
            "workers": workers,
            "wall_seconds": round(elapsed, 4),
            "regions_per_second": round(len(mined) / elapsed, 2),
        }
        system.close()
    record["speedup"] = round(
        record["serial"]["wall_seconds"] / record["pool_4"]["wall_seconds"], 2
    )
    record["bit_identical"] = results["serial"] == results["pool_4"]
    if not record["bit_identical"]:
        raise RuntimeError("sharded per-region mining diverged from the serial run")
    return record


def bench_drilldown(system, region, repetitions):
    """Warm vs cold latency of the aggregate drill-down path."""
    record = {"region": region}
    for by in ("city", "zipcode"):
        cold = time_repeated(
            lambda: system.geo_drilldown(region=region, by=by, use_cache=False),
            repetitions,
        )
        system.geo_drilldown(region=region, by=by)  # populate the cache
        warm = time_repeated(
            lambda: system.geo_drilldown(region=region, by=by), repetitions
        )
        record[by] = {
            "cold": cold,
            "warm": warm,
            "speedup_p50": round(cold["p50_ms"] / max(warm["p50_ms"], 1e-6), 1),
        }
    return record


def bench_geo_explain(system, top_item_ids, region, repetitions):
    """Warm vs cold latency of within-region mining."""
    query_ids = list(top_item_ids)
    cold = time_repeated(
        lambda: system.geo_explain_items(query_ids, region, use_cache=False),
        max(3, repetitions // 10),
    )
    system.geo_explain_items(query_ids, region)  # populate the cache
    warm = time_repeated(
        lambda: system.geo_explain_items(query_ids, region), repetitions
    )
    return {
        "region": region,
        "cold": cold,
        "warm": warm,
        "speedup_p50": round(cold["p50_ms"] / max(warm["p50_ms"], 1e-6), 1),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_geo.json"),
        help="where to write the JSON record (default: repo-root BENCH_geo.json)",
    )
    parser.add_argument("--repetitions", type=int, default=50)
    parser.add_argument("--quick", action="store_true", help="fewer repetitions")
    args = parser.parse_args(argv)
    repetitions = 10 if args.quick else args.repetitions

    print("[bench_geo] generating dataset ...", flush=True)
    dataset = build_dataset()
    system = build_system(dataset, workers=4)
    top_item = system.precomputer.top_items(limit=1)[0]
    top_item_ids = [top_item.item_id]
    top_region = system.geo.top_regions(top_item_ids, limit=1)[0]
    print(
        f"[bench_geo] anchor: item {top_item.item_id} ({top_item.title!r}), "
        f"top region {top_region}",
        flush=True,
    )

    print(f"[bench_geo] fanout: {FANOUT_REGIONS} regions, serial vs pool ...", flush=True)
    fanout = bench_fanout(dataset)
    print(
        f"[bench_geo]   serial {fanout['serial']['wall_seconds']}s -> "
        f"pool {fanout['pool_4']['wall_seconds']}s "
        f"({fanout['speedup']}x, bit_identical={fanout['bit_identical']})",
        flush=True,
    )

    print(f"[bench_geo] drilldown: warm vs cold x{repetitions} ...", flush=True)
    drilldown = bench_drilldown(system, top_region, repetitions)
    print(
        f"[bench_geo]   city p50 {drilldown['city']['cold']['p50_ms']}ms cold -> "
        f"{drilldown['city']['warm']['p50_ms']}ms warm "
        f"({drilldown['city']['speedup_p50']}x)",
        flush=True,
    )

    print("[bench_geo] geo_explain: warm vs cold ...", flush=True)
    explain = bench_geo_explain(system, top_item_ids, top_region, repetitions)
    print(
        f"[bench_geo]   p50 {explain['cold']['p50_ms']}ms cold -> "
        f"{explain['warm']['p50_ms']}ms warm ({explain['speedup_p50']}x)",
        flush=True,
    )
    system.close()

    report = {
        "benchmark": "geo",
        "workload": (
            "geo serving surface over the most popular item "
            "(synthetic MovieLens, 2400 reviewers x 300 movies)"
        ),
        "mining_config": {
            "max_groups": MINING_CONFIG.max_groups,
            "min_coverage": MINING_CONFIG.min_coverage,
            "rhe_restarts": MINING_CONFIG.rhe_restarts,
            "seed": MINING_CONFIG.seed,
        },
        "fanout": fanout,
        "drilldown": drilldown,
        "geo_explain": explain,
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_geo] wrote {output}")
    return report


if __name__ == "__main__":
    main()
