"""HTTP-edge benchmark: keep-alive socket QPS and latency, sync vs async.

The serving benchmark (``bench_serving.py``) measures the in-process closed
loop — no sockets, no HTTP framing.  This one measures the **front door**:
persistent keep-alive clients driving real TCP connections against both HTTP
backends, which is what the paper's "interactive web front-end for many
users" claim actually stresses.  Two scenarios per backend, recorded into
``BENCH_http.json``:

* **ops** — ``GET /health`` in a closed loop: pure edge overhead (framing,
  routing, serialisation), no mining and no cache involved.  This is the
  ceiling of the edge itself.
* **cached_explain** — repeated popular-item ``GET /api/explain`` after a
  completed warm-up, Zipf-weighted: the steady-state interactive workload
  where every response is a cache hit and the edge dominates end-to-end
  latency.

Each client keeps ONE connection for its whole request stream; the report
includes ``requests_per_connection`` — before the HTTP/1.1 fix the sync edge
silently closed after every response, so this ratio is also the regression
guard for keep-alive.  Client request streams are deterministic
(``split_seed``), identical across backends.

Run the writer (from the repository root)::

    python benchmarks/bench_http.py            # writes BENCH_http.json
    python benchmarks/bench_http.py --quick    # smaller load, same shape
"""

from __future__ import annotations

import argparse
import http.client
import json
import random
import sys
import threading
import time
from pathlib import Path
from urllib.parse import quote

# Make the src layout importable when the package is not installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.config import MiningConfig, PipelineConfig, ServerConfig
from repro.data.synthetic import SyntheticConfig, SyntheticMovieLens
from repro.server.api import MapRat
from repro.server.app import MapRatHttpServer
from repro.server.asyncapi import AsyncMapRatHttpServer
from repro.server.pool import split_seed

MINING_CONFIG = MiningConfig(max_groups=3, min_coverage=0.25, rhe_restarts=6)
BASE_SEED = 2012
POPULAR_ITEMS = 12
WEIGHTS = [8, 6, 4, 3, 2, 2, 1, 1, 1, 1, 1, 1]
#: Modest dataset: mining cost only matters during the excluded warm-up; the
#: measured windows are cache-hit/ops traffic where the edge dominates.
DATASET_CONFIG = SyntheticConfig(
    num_reviewers=1200, num_movies=150, ratings_per_reviewer=40, seed=5
)

BACKENDS = {"sync": MapRatHttpServer, "async": AsyncMapRatHttpServer}


def build_dataset():
    return SyntheticMovieLens(DATASET_CONFIG).generate(name="bench-http")


def build_server(backend, dataset):
    config = PipelineConfig(
        mining=MINING_CONFIG,
        server=ServerConfig(mining_workers=4, max_inflight=0),
    )
    system = MapRat.for_dataset(dataset, config)
    server = BACKENDS[backend](system, host="127.0.0.1", port=0, owns_system=True)
    server.start()
    return server


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def run_http_closed_loop(server, targets, clients, requests_per_client):
    """Keep-alive closed loop: every client owns ONE persistent connection.

    Returns ``(elapsed_seconds, sorted_latencies)``; any non-200 response or
    dropped connection raises (the historic bugs would fail the benchmark
    loudly instead of skewing it).
    """
    all_latencies = [[] for _ in range(clients)]
    errors = []
    barrier = threading.Barrier(clients + 1)

    def client(client_id):
        rng = random.Random(split_seed(BASE_SEED, client_id))
        latencies = all_latencies[client_id]
        conn = http.client.HTTPConnection(server.host, server.port, timeout=120)
        try:
            barrier.wait()
            for _ in range(requests_per_client):
                target = rng.choices(targets, weights=WEIGHTS[: len(targets)])[0]
                started = time.perf_counter()
                conn.request("GET", target)
                response = conn.getresponse()
                body = response.read()
                latencies.append(time.perf_counter() - started)
                if response.status != 200:
                    raise RuntimeError(
                        f"{target} -> {response.status}: {body[:200]!r}"
                    )
        except BaseException as exc:  # noqa: BLE001 - reported by the driver
            errors.append(exc)
        finally:
            conn.close()

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise RuntimeError(f"{len(errors)} client(s) failed: {errors[0]}") from errors[0]
    merged = sorted(lat for per_client in all_latencies for lat in per_client)
    return elapsed, merged


def summarize(elapsed, latencies, connections):
    requests = len(latencies)
    return {
        "requests": requests,
        "connections": connections,
        "requests_per_connection": round(requests / connections, 1)
        if connections
        else None,
        "elapsed_seconds": round(elapsed, 4),
        "qps": round(requests / elapsed, 1) if elapsed else None,
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 3),
        "p95_ms": round(percentile(latencies, 0.95) * 1000, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1000, 3),
    }


def bench_backend(backend, dataset, clients, requests_per_client):
    """Both scenarios against one freshly served system."""
    server = build_server(backend, dataset)
    system = server.system
    try:
        record = {}

        # Scenario 1: pure edge overhead over /health.
        elapsed, latencies = run_http_closed_loop(
            server, ["/health"], clients, requests_per_client
        )
        connections = server.router.metrics.snapshot()["connections_total"]
        record["ops"] = summarize(elapsed, latencies, connections)

        # Scenario 2: cache-hit explain traffic after a completed warm-up.
        warm_report = system.start_warmer(limit=POPULAR_ITEMS).wait(timeout=600)
        if warm_report is None:
            raise RuntimeError("warm-up did not finish within 600s")
        titles = [agg.title for agg in system.precomputer.top_items(limit=POPULAR_ITEMS)]
        targets = [
            "/api/explain?q=" + quote(f'title:"{title}"')
            for title in titles
        ]
        before_connections = server.router.metrics.snapshot()["connections_total"]
        elapsed, latencies = run_http_closed_loop(
            server, targets, clients, requests_per_client
        )
        connections = (
            server.router.metrics.snapshot()["connections_total"] - before_connections
        )
        record["cached_explain"] = summarize(elapsed, latencies, connections)
        record["cached_explain"]["warmup_seconds"] = round(
            warm_report.elapsed_seconds, 4
        )
        return record
    finally:
        server.stop()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_http.json"),
        help="where to write the JSON record (default: repo-root BENCH_http.json)",
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=400, help="requests per client")
    parser.add_argument("--quick", action="store_true", help="smaller load")
    args = parser.parse_args(argv)

    clients = 4 if args.quick else args.clients
    requests_per_client = 80 if args.quick else args.requests

    print("[bench_http] generating dataset ...", flush=True)
    dataset = build_dataset()

    results = {}
    for backend in ("sync", "async"):
        print(
            f"[bench_http] {backend}: {clients} keep-alive clients x "
            f"{requests_per_client} requests per scenario ...",
            flush=True,
        )
        results[backend] = bench_backend(backend, dataset, clients, requests_per_client)
        for scenario in ("ops", "cached_explain"):
            row = results[backend][scenario]
            print(
                f"[bench_http]   {backend}/{scenario}: {row['qps']} qps, "
                f"p95 {row['p95_ms']}ms, "
                f"{row['requests_per_connection']} requests/connection",
                flush=True,
            )

    report = {
        "benchmark": "http",
        "workload": (
            "persistent keep-alive socket closed loop against both HTTP "
            "backends (synthetic MovieLens, 1200 reviewers x 150 movies)"
        ),
        "clients": clients,
        "requests_per_client": requests_per_client,
        "backends": results,
        "async_vs_sync": {
            scenario: round(
                results["async"][scenario]["qps"] / results["sync"][scenario]["qps"],
                2,
            )
            for scenario in ("ops", "cached_explain")
        },
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_http] wrote {output}")
    return report


if __name__ == "__main__":
    main()
