"""Durability benchmark: WAL cost, snapshot recovery, warm-restart latency.

Measures what persistence costs on the bench_ingest dataset shape and
records three scenarios into ``BENCH_durability.json``:

* **wal_throughput** — single-rating ingest rows/second without a journal
  (the in-memory baseline) and write-ahead logged under each fsync policy
  (``never`` / ``batch`` / ``always``; ``always`` runs fewer rows — it pays
  one fsync per record by design).
* **snapshot** — wall seconds to write the epoch snapshot, its size on
  disk, and recovery time from it (mmap + zero-copy re-slice) against the
  from-scratch store build it replaces.
* **warm_restart** — end-to-end restart latency: first start + cold explain
  vs a warm restart (snapshot recovery + warm-anchor replay) + the same
  explain served hot from the restored cache.

Run the writer (from the repository root)::

    python benchmarks/bench_durability.py            # writes BENCH_durability.json
    python benchmarks/bench_durability.py --quick    # fewer rows, same shape
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

# Make the src layout importable when the package is not installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.config import MiningConfig, PipelineConfig, ServerConfig
from repro.data.ingest import LiveStore
from repro.data.model import Rating
from repro.data.storage import RatingStore
from repro.data.synthetic import SyntheticConfig, SyntheticMovieLens
from repro.server.api import MapRat
from repro.server.recovery import DurabilityController

MINING_CONFIG = MiningConfig(max_groups=3, min_coverage=0.25, rhe_restarts=6)
DATASET_CONFIG = SyntheticConfig(
    num_reviewers=2400, num_movies=300, ratings_per_reviewer=50, seed=5
)


def build_dataset():
    return SyntheticMovieLens(DATASET_CONFIG).generate(name="bench-durability")


def make_ratings(dataset, count: int, seed: int = 11):
    rng = np.random.default_rng(seed)
    item_ids = np.array([item.item_id for item in dataset.items()])
    reviewer_ids = np.array([r.reviewer_id for r in dataset.reviewers()])
    return [
        Rating(
            item_id=int(rng.choice(item_ids)),
            reviewer_id=int(rng.choice(reviewer_ids)),
            score=float(rng.integers(1, 6)),
            timestamp=int(4_000_000_000 + index),  # distinct: no dedup skew
        )
        for index in range(count)
    ]


def _ingest_rate(live: LiveStore, ratings) -> float:
    started = time.perf_counter()
    for rating in ratings:
        live.ingest(rating)
    return len(ratings) / (time.perf_counter() - started)


def bench_wal_throughput(dataset, store, rows: int) -> dict:
    results = {"rows": rows}
    results["no_journal_rows_per_second"] = round(
        _ingest_rate(LiveStore(store), make_ratings(dataset, rows)), 1
    )
    for policy in ("never", "batch", "always"):
        # One fsync per record: keep "always" short or the benchmark is
        # all disk latency.
        policy_rows = rows if policy != "always" else max(rows // 20, 100)
        with tempfile.TemporaryDirectory() as tmp:
            controller = DurabilityController(tmp, fsync=policy)
            live, _ = controller.recover(dataset, lambda _ds: store)
            rate = _ingest_rate(live, make_ratings(dataset, policy_rows))
            controller.close()
        results[f"wal_{policy}_rows_per_second"] = round(rate, 1)
        results[f"wal_{policy}_rows"] = policy_rows
    return results


def bench_snapshot(dataset, store, delta_rows: int) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        controller = DurabilityController(tmp)
        live, _ = controller.recover(dataset, lambda _ds: store)
        live.ingest_batch([(r, None) for r in make_ratings(dataset, delta_rows)])
        started = time.perf_counter()
        live.compact()  # drains + writes snapshot-00000001.snap
        compact_and_snapshot_seconds = time.perf_counter() - started
        snapshot = controller.last_snapshot
        controller.close()

        started = time.perf_counter()
        recovered_controller = DurabilityController(tmp)
        recovered, report = recovered_controller.recover(
            dataset, lambda _ds: RatingStore(_ds)
        )
        recover_seconds = time.perf_counter() - started
        assert report.mode == "snapshot" and recovered.epoch == 1
        recovered_controller.close()

    started = time.perf_counter()
    RatingStore(dataset)
    build_seconds = time.perf_counter() - started
    return {
        "store_rows": len(store) + delta_rows,
        "snapshot_bytes": snapshot["bytes"],
        "compact_and_snapshot_seconds": round(compact_and_snapshot_seconds, 4),
        "recover_from_snapshot_seconds": round(recover_seconds, 4),
        "cold_store_build_seconds": round(build_seconds, 4),
        "recovery_speedup_over_build": round(
            build_seconds / max(recover_seconds, 1e-9), 2
        ),
    }


def bench_warm_restart(dataset) -> dict:
    config = PipelineConfig(
        mining=MINING_CONFIG,
        server=ServerConfig(
            mining_workers=0, warm_in_background=False, precompute_top_items=0
        ),
    )

    def timed(callable_):
        started = time.perf_counter()
        result = callable_()
        return result, time.perf_counter() - started

    with tempfile.TemporaryDirectory() as tmp:
        durable = PipelineConfig(
            mining=config.mining,
            server=ServerConfig(
                mining_workers=0,
                warm_in_background=False,
                precompute_top_items=0,
                data_dir=tmp,
            ),
        )
        system, first_start_seconds = timed(
            lambda: MapRat.for_dataset(dataset, durable)
        )
        top = system.precomputer.top_items(limit=1)[0].item_id
        _, cold_explain_seconds = timed(lambda: system.explain_items([top]))
        system.close()  # saves warm_anchors.json

        restarted, warm_restart_seconds = timed(
            lambda: MapRat.for_dataset(dataset, durable)
        )
        report = restarted.recovery_info()
        _, hot_explain_seconds = timed(lambda: restarted.explain_items([top]))
        restarted.close()

    return {
        "first_start_seconds": round(first_start_seconds, 4),
        "cold_explain_seconds": round(cold_explain_seconds, 4),
        "warm_restart_seconds": round(warm_restart_seconds, 4),
        "warm_anchors_replayed": report["recovery"]["warm_anchors_replayed"],
        "hot_explain_seconds": round(hot_explain_seconds, 6),
        "cold_over_hot_explain": round(
            cold_explain_seconds / max(hot_explain_seconds, 1e-9), 1
        ),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_durability.json"
        ),
        help="where to write the JSON record (default: repo-root BENCH_durability.json)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="fewer rows, same report shape"
    )
    args = parser.parse_args(argv)

    dataset = build_dataset()
    store = RatingStore(dataset)
    rows = 2000 if args.quick else 10000
    delta_rows = 200 if args.quick else 1000

    print(f"dataset: {dataset.num_ratings} ratings, store epoch {store.epoch}")
    throughput = bench_wal_throughput(dataset, store, rows)
    print(
        f"ingest rows/s: {throughput['no_journal_rows_per_second']} no journal, "
        f"{throughput['wal_never_rows_per_second']} wal=never, "
        f"{throughput['wal_batch_rows_per_second']} wal=batch, "
        f"{throughput['wal_always_rows_per_second']} wal=always"
    )
    snapshot = bench_snapshot(dataset, store, delta_rows)
    print(
        f"snapshot: {snapshot['snapshot_bytes']} bytes, recover "
        f"{snapshot['recover_from_snapshot_seconds']}s vs build "
        f"{snapshot['cold_store_build_seconds']}s "
        f"({snapshot['recovery_speedup_over_build']}x)"
    )
    warm = bench_warm_restart(dataset)
    print(
        f"warm restart: {warm['warm_restart_seconds']}s to serving with "
        f"{warm['warm_anchors_replayed']} anchor(s) hot; explain "
        f"{warm['hot_explain_seconds']}s hot vs {warm['cold_explain_seconds']}s cold"
    )

    report = {
        "benchmark": "durability",
        "dataset": {
            "reviewers": DATASET_CONFIG.num_reviewers,
            "movies": DATASET_CONFIG.num_movies,
            "ratings": dataset.num_ratings,
        },
        "quick": args.quick,
        "wal_throughput": throughput,
        "snapshot": snapshot,
        "warm_restart": warm,
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")


if __name__ == "__main__":
    main()
