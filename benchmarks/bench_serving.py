"""Serving-layer benchmark: sustained QPS and latency under concurrent load.

Drives :class:`~repro.server.api.JsonApi` in-process with a multi-threaded
closed-loop load generator (each client issues its next request as soon as
the previous one returns) on a repeated-popular-item workload, and records
two scenarios into ``BENCH_serving.json``:

* **steady** — the headline number.  *Before* is the seed serving model: one
  request at a time (a global dispatch lock), cold cache, no effective
  warm-up, inline mining.  *After* is the PR-2 serving subsystem: background
  warmer completes at startup (its cost is excluded from the window and
  reported as ``warmup_seconds``), single-flight cache, mining worker pool,
  fully concurrent dispatch.  Reported: sustained QPS, p50/p95/p99 latency,
  mining runs.  The asymmetry (cold before vs warmed after) is deliberate:
  the seed's warm-up keyed pre-computations differently from query traffic
  (``("items", …)`` vs ``("query", …)``), so its cache could not be
  pre-warmed for queries by construction — popular-item mining on the
  request path *was* its steady behaviour.  The steady speedup therefore
  bundles warming-off-the-request-path with concurrent dispatch; the
  stampede scenario below isolates the single-flight effect on its own.
* **stampede** — concurrent clients hit the same cold item simultaneously.
  A plain cache mines once per client (duplicated work); the single-flight
  cache mines once total and coalesces the rest.

Every client's request stream is deterministic: client ``i`` draws from
``random.Random(split_seed(base_seed, i))``, so runs are reproducible and
identical across modes.

Run the writer (from the repository root)::

    python benchmarks/bench_serving.py            # writes BENCH_serving.json
    python benchmarks/bench_serving.py --quick    # smaller load, same shape
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from pathlib import Path

# Make the src layout importable when the package is not installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.config import MiningConfig, PipelineConfig, ServerConfig
from repro.data.synthetic import SyntheticConfig, SyntheticMovieLens
from repro.server.api import JsonApi, MapRat
from repro.server.pool import split_seed

#: Mining settings shared by every mode (the Figure-1 defaults used by the
#: other benchmarks); the workload repeats the most popular items.
MINING_CONFIG = MiningConfig(max_groups=3, min_coverage=0.25, rhe_restarts=6)
BASE_SEED = 2012
POPULAR_ITEMS = 12
#: Zipf-ish popularity of the repeated items (most popular first).
WEIGHTS = [8, 6, 4, 3, 2, 2, 1, 1, 1, 1, 1, 1]
#: The bench_kernel "medium" dataset shape: per-item mining costs tens of
#: milliseconds, which is what the serving layer must keep off the hot path.
DATASET_CONFIG = SyntheticConfig(
    num_reviewers=2400, num_movies=300, ratings_per_reviewer=50, seed=5
)


def build_dataset():
    return SyntheticMovieLens(DATASET_CONFIG).generate(name="bench-serving")


def build_system(dataset, single_flight: bool, workers: int) -> MapRat:
    config = PipelineConfig(
        mining=MINING_CONFIG,
        server=ServerConfig(single_flight=single_flight, mining_workers=workers),
    )
    return MapRat.for_dataset(dataset, config)


def popular_titles(system: MapRat) -> list:
    return [agg.title for agg in system.precomputer.top_items(limit=POPULAR_ITEMS)]


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def run_closed_loop(api: JsonApi, titles, clients, requests_per_client, serialize):
    """Closed-loop load generation; returns (elapsed_seconds, latencies)."""
    lock = threading.Lock() if serialize else None
    all_latencies = [[] for _ in range(clients)]
    barrier = threading.Barrier(clients + 1)

    def client(client_id):
        rng = random.Random(split_seed(BASE_SEED, client_id))
        latencies = all_latencies[client_id]
        barrier.wait()
        for _ in range(requests_per_client):
            title = rng.choices(titles, weights=WEIGHTS[: len(titles)])[0]
            params = {"q": f'title:"{title}"'}
            started = time.perf_counter()
            if lock is not None:
                with lock:
                    api.dispatch("explain", params)
            else:
                api.dispatch("explain", params)
            latencies.append(time.perf_counter() - started)

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    merged = sorted(lat for per_client in all_latencies for lat in per_client)
    return elapsed, merged


def snapshot_stats(system):
    stats = system.cache.stats
    return {"misses": stats.misses, "hits": stats.hits, "coalesced": stats.coalesced}


def summarize(elapsed, latencies, system, baseline=None):
    """Roll up one measured window; counters are deltas from ``baseline`` so
    warm-up work never masquerades as in-window mining."""
    baseline = baseline or {"misses": 0, "hits": 0, "coalesced": 0}
    stats = system.cache.stats
    return {
        "requests": len(latencies),
        "elapsed_seconds": round(elapsed, 4),
        "qps": round(len(latencies) / elapsed, 1) if elapsed else None,
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 3),
        "p95_ms": round(percentile(latencies, 0.95) * 1000, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1000, 3),
        "mining_runs": stats.misses - baseline["misses"],
        "cache_hits": stats.hits - baseline["hits"],
        "coalesced": stats.coalesced - baseline["coalesced"],
    }


def bench_steady(dataset, clients, requests_per_client):
    """Seed serving model vs the concurrent serving subsystem.

    One serving session each, same deterministic request streams: *before*
    starts cold and mines popular items on the request path, one request at
    a time; *after* warms the same items in the background at startup (the
    excluded cost is reported as ``warmup_seconds``) and serves concurrently
    with single-flight coalescing.
    """
    # Before: serial dispatch, plain cache, cold start, inline mining.
    before_system = build_system(dataset, single_flight=False, workers=0)
    titles = popular_titles(before_system)
    before_api = JsonApi(before_system)
    elapsed, latencies = run_closed_loop(
        before_api, titles, clients, requests_per_client, serialize=True
    )
    before = summarize(elapsed, latencies, before_system)
    before_system.close()

    # After: background warmer at startup, then concurrent single-flight serving.
    after_system = build_system(dataset, single_flight=True, workers=4)
    warm_report = after_system.start_warmer(limit=POPULAR_ITEMS).wait(timeout=600)
    if warm_report is None:
        raise RuntimeError("warm-up did not finish within 600s")
    after_api = JsonApi(after_system)
    post_warm = snapshot_stats(after_system)
    elapsed, latencies = run_closed_loop(
        after_api, titles, clients, requests_per_client, serialize=False
    )
    after = summarize(elapsed, latencies, after_system, baseline=post_warm)
    after["warmup_seconds"] = round(warm_report.elapsed_seconds, 4)
    after["warmed_items"] = warm_report.results_precomputed
    after_system.close()

    return {
        "workload": {
            "clients": clients,
            "requests_per_client": requests_per_client,
            "popular_items": POPULAR_ITEMS,
            "weights": WEIGHTS,
        },
        "before_serial": before,
        "after_single_flight": after,
        "qps_speedup": round(after["qps"] / before["qps"], 2),
    }


def bench_stampede(dataset, clients):
    """All clients hit the same cold item at once: plain vs single-flight."""
    record = {"clients": clients}
    for label, single_flight in (("plain", False), ("single_flight", True)):
        system = build_system(dataset, single_flight=single_flight, workers=4)
        title = popular_titles(system)[0]
        api = JsonApi(system)
        barrier = threading.Barrier(clients + 1)
        latencies = []
        latencies_lock = threading.Lock()

        def client():
            barrier.wait()
            started = time.perf_counter()
            api.dispatch("explain", {"q": f'title:"{title}"'})
            with latencies_lock:
                latencies.append(time.perf_counter() - started)

        threads = [threading.Thread(target=client, daemon=True) for _ in range(clients)]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        stats = system.cache.stats
        record[label] = {
            "wall_ms": round(elapsed * 1000, 3),
            "mining_runs": stats.misses,
            "coalesced": stats.coalesced,
            "max_latency_ms": round(max(latencies) * 1000, 3),
        }
        system.close()
    plain, flight = record["plain"], record["single_flight"]
    record["duplicated_minings_avoided"] = plain["mining_runs"] - flight["mining_runs"]
    return record


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_serving.json"),
        help="where to write the JSON record (default: repo-root BENCH_serving.json)",
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=150, help="requests per client")
    parser.add_argument("--quick", action="store_true", help="smaller load")
    args = parser.parse_args(argv)

    clients = 4 if args.quick else args.clients
    requests_per_client = 50 if args.quick else args.requests

    print("[bench_serving] generating dataset ...", flush=True)
    dataset = build_dataset()
    print(
        f"[bench_serving] steady: {clients} clients x {requests_per_client} requests ...",
        flush=True,
    )
    steady = bench_steady(dataset, clients, requests_per_client)
    print(
        f"[bench_serving]   before(serial) {steady['before_serial']['qps']} qps "
        f"p95 {steady['before_serial']['p95_ms']}ms | "
        f"after(single-flight) {steady['after_single_flight']['qps']} qps "
        f"p95 {steady['after_single_flight']['p95_ms']}ms | "
        f"speedup {steady['qps_speedup']}x",
        flush=True,
    )

    print(f"[bench_serving] stampede: {clients} clients, one cold item ...", flush=True)
    stampede = bench_stampede(dataset, clients)
    print(
        f"[bench_serving]   plain {stampede['plain']['mining_runs']} minings -> "
        f"single-flight {stampede['single_flight']['mining_runs']} "
        f"({stampede['duplicated_minings_avoided']} duplicates avoided)",
        flush=True,
    )

    report = {
        "benchmark": "serving",
        "workload": (
            "repeated-popular-item closed loop over JsonApi "
            "(synthetic MovieLens, 2400 reviewers x 300 movies)"
        ),
        "mining_config": {
            "max_groups": MINING_CONFIG.max_groups,
            "min_coverage": MINING_CONFIG.min_coverage,
            "rhe_restarts": MINING_CONFIG.rhe_restarts,
            "seed": MINING_CONFIG.seed,
        },
        "steady": steady,
        "stampede": stampede,
    }
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_serving] wrote {output}")
    return report


if __name__ == "__main__":
    main()
