"""Shared fixtures for the benchmark harness.

Every benchmark runs against the deterministic synthetic MovieLens-shaped
dataset (the offline stand-in for MovieLens-1M, see DESIGN.md).  The "small"
scale (~24k ratings) is the default workload; the scalability benchmark
additionally generates larger scales on demand.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark prints / attaches (``extra_info``) the rows or series of the
experiment it regenerates, as indexed in DESIGN.md §4 and recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the src layout importable when the package is not installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.config import MiningConfig, PipelineConfig
from repro.core.miner import RatingMiner
from repro.data.synthetic import generate_dataset
from repro.server.api import MapRat

#: Mining configuration used by the headline benchmarks (Figure 1 settings).
BENCH_MINING_CONFIG = MiningConfig(max_groups=3, min_coverage=0.25, rhe_restarts=6)


@pytest.fixture(scope="session")
def small_dataset():
    """The default benchmark dataset (~600 reviewers, ~24k ratings)."""
    return generate_dataset("small")


@pytest.fixture(scope="session")
def bench_config():
    return BENCH_MINING_CONFIG


@pytest.fixture(scope="session")
def system(small_dataset, bench_config):
    """A full MapRat system over the benchmark dataset."""
    return MapRat.for_dataset(small_dataset, PipelineConfig(mining=bench_config))


@pytest.fixture(scope="session")
def miner(system):
    return system.miner


@pytest.fixture(scope="session")
def toy_story_ids(small_dataset):
    return [item.item_id for item in small_dataset.items_by_title("Toy Story")]


@pytest.fixture(scope="session")
def toy_story_slice(miner, toy_story_ids):
    return miner.slice_for_items(toy_story_ids)
