"""Micro-benchmark of the integer-coded mining kernel vs the naive reference.

Measures, on the bench_mri_scalability workload (synthetic MovieLens-shaped
dataset, most-rated-item slices):

* cube enumeration — integer-code/bincount kernel vs boolean-mask DFS,
* RHE solves for Similarity and Diversity Mining — delta-evaluated
  ``SelectionState`` vs full per-trial rebuilds (``use_fast_eval=False``),
* the end-to-end ``mine_similarity`` + ``mine_diversity`` path.

Both paths are verified to return identical selections before timings are
recorded, so the speedup numbers compare equal work.

Run the writer (from the repository root)::

    python benchmarks/bench_kernel.py            # writes BENCH_kernel.json
    python benchmarks/bench_kernel.py --quick    # fewer repeats, small scale only

``BENCH_kernel.json`` is the perf trajectory future PRs regress against.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

# Make the src layout importable when the package is not installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.config import MiningConfig
from repro.core.cube import CandidateEnumerator
from repro.core.problems import DiversityProblem, SimilarityProblem
from repro.core.rhe import RandomizedHillExploration
from repro.data.storage import RatingStore
from repro.data.synthetic import SyntheticConfig, SyntheticMovieLens

#: The bench_mri_scalability workload configuration.
MINING_CONFIG = MiningConfig(
    max_groups=3, min_coverage=0.25, min_group_support=5, rhe_restarts=4
)
SOLVER_KWARGS = dict(restarts=4, max_iterations=150, seed=3)

#: Scales: dataset shape + how many of the most-rated items form the slice.
SCALES = {
    "small": dict(num_reviewers=1200, num_movies=300, ratings_per_reviewer=50, items=1),
    "medium": dict(num_reviewers=2400, num_movies=300, ratings_per_reviewer=50, items=3),
}


def _best_of(fn, repeats):
    """Minimum wall-clock of ``repeats`` runs (robust against scheduler noise)."""
    times = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - started)
    return min(times), result


def _build_slice(scale):
    config = SyntheticConfig(
        num_reviewers=scale["num_reviewers"],
        num_movies=scale["num_movies"],
        ratings_per_reviewer=scale["ratings_per_reviewer"],
        seed=5,
    )
    dataset = SyntheticMovieLens(config).generate(name="bench-kernel")
    store = RatingStore(dataset)
    item_ids = [item_id for item_id, _ in store.most_rated_items(limit=scale["items"])]
    return store.slice_for_items(item_ids)


def _enumerate(rating_slice, use_kernel):
    enumerator = CandidateEnumerator.from_config(rating_slice, MINING_CONFIG)
    enumerator.use_kernel = use_kernel
    # Per-run stats (ISSUE 9): the enumerator no longer stores counters, so
    # the benchmark reads them from the same call it times.
    groups, stats = enumerator.enumerate_with_stats()
    return groups, stats


def _solve(problem, use_fast_eval):
    solver = RandomizedHillExploration(use_fast_eval=use_fast_eval, **SOLVER_KWARGS)
    return solver.solve(problem)


def bench_scale(scale, repeats):
    """Benchmark one scale; returns the result record for BENCH_kernel.json."""
    rating_slice = _build_slice(scale)

    kernel_groups, kernel_stats = _enumerate(rating_slice, True)
    naive_groups, naive_stats = _enumerate(rating_slice, False)
    enum_identical = (
        [g.descriptor for g in kernel_groups] == [g.descriptor for g in naive_groups]
        and kernel_stats == naive_stats
    )

    enum_kernel_s, (candidates, stats) = _best_of(
        lambda: _enumerate(rating_slice, True), repeats
    )
    enum_naive_s, _ = _best_of(lambda: _enumerate(rating_slice, False), repeats)

    record = {
        "ratings": len(rating_slice),
        "candidates": len(candidates),
        "enumeration": {
            "kernel_ms": round(enum_kernel_s * 1000, 3),
            "naive_ms": round(enum_naive_s * 1000, 3),
            "speedup": round(enum_naive_s / enum_kernel_s, 2),
            "identical": enum_identical,
            "explored": stats.explored,
            "pruned_by_support": stats.pruned_by_support,
        },
    }

    e2e_fast_s = enum_kernel_s * 2  # mine_similarity + mine_diversity each enumerate
    e2e_naive_s = enum_naive_s * 2
    for name, problem_class in (
        ("similarity", SimilarityProblem),
        ("diversity", DiversityProblem),
    ):
        problem = problem_class(rating_slice, candidates, MINING_CONFIG)
        fast_result = _solve(problem, True)
        naive_result = _solve(problem, False)
        identical = (
            [g.descriptor for g in fast_result.groups]
            == [g.descriptor for g in naive_result.groups]
            and fast_result.objective == naive_result.objective
            and fast_result.trace == naive_result.trace
        )
        fast_s, _ = _best_of(lambda: _solve(problem, True), repeats)
        naive_s, _ = _best_of(lambda: _solve(problem, False), repeats)
        e2e_fast_s += fast_s
        e2e_naive_s += naive_s
        record[name] = {
            "fast_ms": round(fast_s * 1000, 3),
            "naive_ms": round(naive_s * 1000, 3),
            "speedup": round(naive_s / fast_s, 2),
            "objective": round(fast_result.objective, 6),
            "feasible": fast_result.feasible,
            "identical": identical,
        }

    record["end_to_end"] = {
        "fast_ms": round(e2e_fast_s * 1000, 3),
        "naive_ms": round(e2e_naive_s * 1000, 3),
        "speedup": round(e2e_naive_s / e2e_fast_s, 2),
    }
    return record


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_kernel.json"),
        help="where to write the JSON record (default: repo-root BENCH_kernel.json)",
    )
    parser.add_argument("--repeats", type=int, default=5, help="timing repeats (best-of)")
    parser.add_argument(
        "--quick", action="store_true", help="small scale only, 2 repeats"
    )
    args = parser.parse_args(argv)

    repeats = 2 if args.quick else args.repeats
    scales = {"small": SCALES["small"]} if args.quick else SCALES

    report = {
        "benchmark": "kernel",
        "workload": "bench_mri_scalability (synthetic MovieLens, most-rated-item slices)",
        "solver": SOLVER_KWARGS,
        "scales": {},
    }
    for name, scale in scales.items():
        print(f"[bench_kernel] running scale {name!r} ...", flush=True)
        record = bench_scale(scale, repeats)
        report["scales"][name] = record
        e2e = record["end_to_end"]
        print(
            f"[bench_kernel]   {name}: ratings={record['ratings']} "
            f"candidates={record['candidates']} "
            f"e2e {e2e['naive_ms']:.1f}ms -> {e2e['fast_ms']:.1f}ms "
            f"({e2e['speedup']}x)",
            flush=True,
        )

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_kernel] wrote {output}")
    return report


if __name__ == "__main__":
    main()
