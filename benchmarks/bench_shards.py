"""Sharded-backend benchmark: scatter-gather mining vs serial and process.

The process backend (PR 5, ``bench_procs.py``) parallelises over anchors —
each worker re-slices and mines a whole selection, so one request's SM+DM
fans out to at most two tasks and every worker maps the full store.  The
sharded backend (``mining_backend="sharded"``) parallelises *inside* one
request: the store is partitioned into K reviewer-hash shards, each worker
enumerates a partial data cube over only its shard's rows, and the
coordinator merges the partial counts and replays the kernel DFS — so the
per-request critical path shrinks with K while every result stays
bit-identical.

This driver measures that trade on the ``bench_procs`` workload shape:

* the same medium synthetic dataset and cold ``explain_items`` anchors,
* **serial** (the reference), **inline sharded** (``workers=0`` — measures
  pure partition/merge/replay overhead with no IPC), and **spawned sharded**
  (``workers=N`` — the production mode) over the same K,
* bit-identity of the first anchor's full response asserted across all
  modes before any timing is recorded.

Results go to ``BENCH_shards.json`` with the shard/worker/core context.
Expect the sharded modes to trail the process backend on *many-client*
throughput (the merge runs on the coordinator) but to cut single-request
latency once per-anchor mining dwarfs the ~1-2 ms per-shard IPC — and to be
the only backend whose per-worker memory footprint shrinks with K.

Run the writer (from the repository root)::

    python benchmarks/bench_shards.py            # writes BENCH_shards.json
    python benchmarks/bench_shards.py --quick    # smaller load, same shape
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

# Make the src layout importable when the package is not installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.config import MiningConfig, PipelineConfig, ServerConfig
from repro.data.synthetic import SyntheticConfig, SyntheticMovieLens
from repro.server.api import MapRat

MINING_CONFIG = MiningConfig(max_groups=3, min_coverage=0.25, rhe_restarts=6)
#: The bench_procs dataset shape: per-anchor SM+DM mining costs tens of
#: milliseconds — enough work for the scatter to amortise per-shard IPC.
DATASET_CONFIG = SyntheticConfig(
    num_reviewers=2400, num_movies=300, ratings_per_reviewer=50, seed=5
)


def build_dataset():
    return SyntheticMovieLens(DATASET_CONFIG).generate(name="bench-shards")


def build_system(dataset, backend: str, workers: int, shards: int) -> MapRat:
    config = PipelineConfig(
        mining=MINING_CONFIG,
        server=ServerConfig(
            mining_backend=backend,
            mining_workers=workers,
            mining_shards=shards,
        ),
    )
    return MapRat.for_dataset(dataset, config)


def normalized(payload: dict) -> dict:
    payload = json.loads(json.dumps(payload))

    def strip(node):
        if isinstance(node, dict):
            return {k: strip(v) for k, v in node.items() if k != "elapsed_seconds"}
        if isinstance(node, list):
            return [strip(v) for v in node]
        return node

    return strip(payload)


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def drive(system: MapRat, anchors) -> dict:
    """Open loop, one client: per-request latency is the sharded backend's
    target metric (the scatter parallelises inside a single request)."""
    latencies = []
    started = time.perf_counter()
    for item_ids in anchors:
        request_started = time.perf_counter()
        system.explain_items(item_ids, use_cache=False)
        latencies.append(time.perf_counter() - request_started)
    elapsed = time.perf_counter() - started
    latencies.sort()
    return {
        "anchors": len(anchors),
        "elapsed_seconds": round(elapsed, 4),
        "explains_per_second": round(len(anchors) / elapsed, 2) if elapsed else 0.0,
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 2),
        "p95_ms": round(percentile(latencies, 0.95) * 1000, 2),
    }


def run(quick: bool) -> dict:
    cpu_count = os.cpu_count() or 1
    workers = max(2, min(4, cpu_count))
    shards = workers
    num_anchors = 6 if quick else 24

    dataset = build_dataset()
    modes = {
        "serial": ("thread", 0, 1),
        "sharded_inline": ("sharded", 0, shards),
        "sharded_spawned": ("sharded", workers, shards),
        "process": ("process", workers, 1),
    }
    results: dict = {}
    fingerprints = {}
    for mode, (backend, mode_workers, mode_shards) in modes.items():
        started = time.perf_counter()
        system = build_system(dataset, backend, mode_workers, mode_shards)
        try:
            anchors = [
                [aggregate.item_id]
                for aggregate in system.precomputer.top_items(limit=num_anchors)
            ]
            startup = time.perf_counter() - started
            fingerprints[mode] = normalized(
                system.explain_items(anchors[0], use_cache=False).to_dict()
            )
            measured = drive(system, anchors)
            measured["startup_seconds"] = round(startup, 4)
            measured["backend"] = backend
            measured["workers"] = mode_workers
            measured["shards"] = mode_shards
            results[mode] = measured
        finally:
            system.close()

    for mode in modes:
        assert fingerprints[mode] == fingerprints["serial"], f"{mode} != serial"

    def speedup(numerator: str, denominator: str) -> float:
        slow = results[numerator]["elapsed_seconds"]
        fast = results[denominator]["elapsed_seconds"]
        return round(slow / fast, 2) if fast else 0.0

    return {
        "benchmark": "data-sharded mining backend (cold single-client explain latency)",
        "workload": {
            "dataset": {
                "reviewers": DATASET_CONFIG.num_reviewers,
                "movies": DATASET_CONFIG.num_movies,
                "ratings": dataset.num_ratings,
            },
            "mining": {
                "max_groups": MINING_CONFIG.max_groups,
                "min_coverage": MINING_CONFIG.min_coverage,
                "rhe_restarts": MINING_CONFIG.rhe_restarts,
            },
            "anchors": num_anchors,
            "clients": 1,
            "cache": "off (cold mining isolates backend latency)",
        },
        "shards": shards,
        "workers": workers,
        "cpu_count": cpu_count,
        "environment": {
            "cpu_count": cpu_count,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "modes": results,
        "bit_identical": True,
        "speedup_sharded_inline_vs_serial": speedup("serial", "sharded_inline"),
        "speedup_sharded_spawned_vs_serial": speedup("serial", "sharded_spawned"),
        "speedup_sharded_spawned_vs_process": speedup("process", "sharded_spawned"),
        "interpretation": (
            "The scatter parallelises the candidate-cube enumeration inside "
            "one request; RHE and the merge replay stay on the coordinator, "
            "so Amdahl caps the per-request speedup by the solver share of "
            "the critical path.  Inline sharding measures the pure partition/"
            "merge/replay tax — on this small shape it is a net slowdown "
            "(the bitset merge and DFS replay re-derive what serial computes "
            "in one pass), and spawned sharding adds per-shard IPC on top.  "
            "The backend's claim is therefore not speed at this scale: it is "
            "the K-way split of per-worker memory (no worker ever maps the "
            "full store) with bit-identical results, which is what the "
            "asserts here pin down."
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller load, same shape")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_shards.json",
    )
    args = parser.parse_args()
    report = run(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
