"""Experiment "Figure 3": interactive exploration of one selected group.

Figure 3 shows the exploration view that opens when the user clicks the result
"Male reviewers from California": detailed rating statistics, a comparison of
related groups and city-level drill-down.  This benchmark measures each of
those interactions plus the full exploration HTML page.

Shape to hold: every exploration interaction is much cheaper than the original
mining (they are numpy aggregations over the already-sliced ratings), which is
what makes the drill-down feel instantaneous in the demo.
"""

import pytest

from repro.explore.drilldown import DrillDown
from repro.explore.statistics import compare_groups, group_statistics

QUERY = 'title:"Toy Story"'


@pytest.fixture(scope="module")
def explained(system):
    result = system.explain(QUERY)
    rating_slice = system.miner.slice_for_items(result.query.item_ids)
    group = result.similarity.groups[0]
    return result, rating_slice, group


def test_group_statistics_panel(benchmark, explained):
    """The statistics panel for the clicked group."""
    _, rating_slice, group = explained
    stats = benchmark(group_statistics, rating_slice, group.pairs)
    assert stats.size == group.size
    benchmark.extra_info["group"] = group.label
    benchmark.extra_info["mean"] = stats.mean


def test_compare_related_groups(benchmark, explained):
    """Side-by-side comparison of every selected group plus the baseline."""
    result, rating_slice, _ = explained
    rows = benchmark(
        compare_groups,
        rating_slice,
        [g.pairs for g in result.similarity.groups],
        [g.label for g in result.similarity.groups],
    )
    assert rows[0].label == "all reviewers"


def test_city_drilldown(benchmark, explained):
    """State → city drill-down of the selected group (§3.1)."""
    _, rating_slice, group = explained
    driller = DrillDown(rating_slice)
    aggregates = benchmark(driller.drill, group.pairs)
    assert aggregates
    benchmark.extra_info["cities"] = [a.location for a in aggregates]


def test_full_exploration_page(benchmark, system):
    """The complete Figure-3 HTML page (statistics + comparison + drill-down + trend)."""
    html = benchmark.pedantic(
        lambda: system.exploration_html(QUERY, task="similarity", group_index=0),
        rounds=5,
        iterations=1,
    )
    assert "Rating distribution" in html
    benchmark.extra_info["html_bytes"] = len(html)
