"""Experiment "MRI-Q": solution quality of RHE against the reference solvers.

MapRat's technical core is the NP-hard group-selection problem of the MRI
framework, solved with Randomized Hill Exploration.  This benchmark reproduces
the quality comparison that motivates RHE: on candidate spaces small enough
for exhaustive enumeration, RHE should land within a few percent of the
optimum while the naive baselines (top-k-by-size, random) fall visibly short;
on time, RHE should beat exhaustive enumeration by a wide margin.

The table printed into ``extra_info`` has one row per (task, solver) with the
objective value, the gap to the optimum and the wall-clock time.
"""

import pytest

from repro.config import MiningConfig
from repro.core.annealing import SimulatedAnnealingSolver
from repro.core.baselines import (
    ExhaustiveSolver,
    GreedyCoverageSolver,
    RandomSolver,
    TopKBySizeSolver,
)
from repro.core.cube import CandidateEnumerator
from repro.core.problems import DiversityProblem, SimilarityProblem
from repro.core.rhe import RandomizedHillExploration

#: A configuration that keeps the candidate space small enough for exhaustive
#: search (single-pair descriptions over two demographic attributes).
SMALL_SPACE_CONFIG = MiningConfig(
    max_groups=3,
    min_coverage=0.3,
    min_group_support=10,
    max_description_length=1,
    require_geo_anchor=False,
    grouping_attributes=("age_group", "occupation"),
    rhe_restarts=6,
)

SOLVERS = {
    "rhe": lambda: RandomizedHillExploration(restarts=6, max_iterations=200, seed=7),
    "annealing": lambda: SimulatedAnnealingSolver(steps=400, restarts=2, seed=7),
    "exhaustive": ExhaustiveSolver,
    "greedy": GreedyCoverageSolver,
    "top_k_by_size": TopKBySizeSolver,
    "random": lambda: RandomSolver(seed=7),
}


@pytest.fixture(scope="module")
def problems(toy_story_slice):
    candidates = CandidateEnumerator.from_config(toy_story_slice, SMALL_SPACE_CONFIG).enumerate()
    similarity = SimilarityProblem(toy_story_slice, candidates, SMALL_SPACE_CONFIG)
    diversity = DiversityProblem(toy_story_slice, candidates, SMALL_SPACE_CONFIG)
    return {"similarity": similarity, "diversity": diversity}


@pytest.fixture(scope="module")
def optima(problems):
    solver = ExhaustiveSolver()
    return {task: solver.solve(problem) for task, problem in problems.items()}


@pytest.mark.parametrize("task", ["similarity", "diversity"])
@pytest.mark.parametrize("solver_name", sorted(SOLVERS))
def test_solver_quality(benchmark, problems, optima, task, solver_name):
    """Objective value and runtime of one solver on one mining task."""
    problem = problems[task]
    optimum = optima[task].objective

    def solve():
        return SOLVERS[solver_name]().solve(problem)

    result = benchmark.pedantic(solve, rounds=3, iterations=1)
    gap = optimum - result.objective
    benchmark.extra_info["task"] = task
    benchmark.extra_info["solver"] = solver_name
    benchmark.extra_info["objective"] = round(result.objective, 4)
    benchmark.extra_info["optimum"] = round(optimum, 4)
    benchmark.extra_info["gap_to_optimum"] = round(gap, 4)
    benchmark.extra_info["feasible"] = result.feasible

    if solver_name == "exhaustive":
        assert gap == pytest.approx(0.0, abs=1e-9)
    if solver_name == "rhe":
        # RHE must stay close to the optimum on this small instance...
        assert result.feasible
        assert gap <= 0.25
        # ...and must not be worse than the naive popularity baseline.
        top_k = TopKBySizeSolver().solve(problem)
        if top_k.feasible:
            assert result.objective >= top_k.objective - 1e-9
