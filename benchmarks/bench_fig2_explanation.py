"""Experiment "Figure 2": the Explain Ratings result.

Figure 2 is the core output of MapRat: the Similarity Mining and Diversity
Mining interpretations for the queried movie, rendered as state choropleths.
This benchmark regenerates that result end to end and measures each stage:

* the full explain pipeline (slice → candidate cube → RHE for SM and DM),
* each mining task in isolation,
* rendering the interpretation as the choropleth SVG and the HTML report.

Shape to hold: the mining dominates the rendering by an order of magnitude,
and the whole uncached pipeline stays interactive (well under a second at the
benchmark scale), which is what makes the §2.3 caching claim worth measuring
separately (see bench_claim_latency_caching).
"""

import pytest

from repro.core.cube import enumerate_candidates
from repro.viz.choropleth import render_explanation_map
from repro.viz.report import ExplanationReport

QUERY = 'title:"Toy Story"'


@pytest.fixture(scope="module")
def mining_result(system):
    return system.explain(QUERY, use_cache=False)


def test_end_to_end_explain_uncached(benchmark, system, bench_config):
    """The full Figure-2 pipeline: query, slice, SM + DM mining."""
    result = benchmark.pedantic(
        lambda: system.explain(QUERY, use_cache=False), rounds=5, iterations=1
    )
    assert result.similarity.feasible
    benchmark.extra_info["ratings"] = result.query.num_ratings
    benchmark.extra_info["sm_groups"] = [g.label for g in result.similarity.groups]
    benchmark.extra_info["dm_groups"] = [g.label for g in result.diversity.groups]
    benchmark.extra_info["sm_coverage"] = result.similarity.coverage


def test_candidate_enumeration(benchmark, toy_story_slice, bench_config):
    """Building the data cube of candidate groups for the queried ratings."""
    candidates = benchmark(enumerate_candidates, toy_story_slice, bench_config)
    assert candidates
    benchmark.extra_info["candidates"] = len(candidates)
    benchmark.extra_info["ratings"] = len(toy_story_slice)


def test_similarity_mining_only(benchmark, miner, toy_story_slice, bench_config):
    """Similarity Mining (candidate cube + RHE) in isolation."""
    explanation = benchmark.pedantic(
        lambda: miner.mine_similarity(toy_story_slice, bench_config), rounds=5, iterations=1
    )
    assert explanation.groups
    benchmark.extra_info["objective"] = explanation.objective


def test_diversity_mining_only(benchmark, miner, toy_story_slice, bench_config):
    """Diversity Mining (candidate cube + RHE) in isolation."""
    explanation = benchmark.pedantic(
        lambda: miner.mine_diversity(toy_story_slice, bench_config), rounds=5, iterations=1
    )
    assert explanation.groups
    benchmark.extra_info["disagreement"] = explanation.disagreement


def test_render_choropleth_svg(benchmark, mining_result):
    """Rendering one interpretation as the tile-grid choropleth SVG."""
    svg = benchmark(render_explanation_map, mining_result.similarity)
    assert svg.startswith("<svg")
    benchmark.extra_info["svg_bytes"] = len(svg)


def test_render_full_html_report(benchmark, mining_result):
    """Rendering the complete Figure-2 HTML page (both tabs, both maps)."""
    report = ExplanationReport()
    html = benchmark(report.render, mining_result)
    assert "Similarity Mining" in html
    benchmark.extra_info["html_bytes"] = len(html)
