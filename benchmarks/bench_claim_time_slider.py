"""Experiment "§3.1 claim": the time slider shows how interpretations evolve.

"Moving the time slider over the range of values allows the user to observe
reviewer groups that provide best interpretations for the movie and how they
change over time."

The synthetic dataset plants a movie ("Drifting Star") whose reception decays
across the rating years.  This benchmark measures the two time-dimension
operations and records the planted drift so EXPERIMENTS.md can compare the
shape against the paper's narrative:

* re-mining each year of the slider (the expensive reading), and
* the per-year trend of a fixed group (the cheap reading).
"""

import pytest

QUERY = 'title:"Drifting Star"'


def test_interpretations_per_year(benchmark, system):
    """Re-mining SM + DM for every year of the slider."""
    slices = benchmark.pedantic(
        lambda: system.timeline(QUERY, min_ratings=20), rounds=3, iterations=1
    )
    mined = [s for s in slices if s.result is not None]
    assert len(mined) >= 2
    benchmark.extra_info["years"] = [s.year for s in slices]
    benchmark.extra_info["avg_by_year"] = {
        s.year: s.result.query.average_rating for s in mined
    }


def test_group_trend_over_years(benchmark, system):
    """Per-year average of the all-reviewers group (the trend chart series)."""
    trend = benchmark(lambda: system.group_trend(QUERY, {}))
    assert len(trend) >= 2
    drift = trend[-1].mean - trend[0].mean
    assert drift < -1.0, "the planted decay must be visible in the trend"
    benchmark.extra_info["series"] = [(p.year, p.mean) for p in trend]
    benchmark.extra_info["drift"] = round(drift, 3)


def test_stable_movie_has_no_drift(benchmark, system):
    """Control: a non-drifting movie's trend stays flat (|drift| small)."""
    trend = benchmark(lambda: system.group_trend('title:"Forrest Gump"', {}))
    drift = abs(trend[-1].mean - trend[0].mean)
    assert drift < 0.6
    benchmark.extra_info["series"] = [(p.year, p.mean) for p in trend]
