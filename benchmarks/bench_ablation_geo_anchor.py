"""Ablation A2: the geo-anchoring constraint.

§3.1: "for this demo, each of the groups always specify the state as their geo
condition in order to allow rendering of the explanation in the map."  That
constraint costs objective value (the best unconstrained description may not
mention a state) and changes the candidate space.  This ablation measures both
sides so the price of map-renderability is explicit.

Shape to hold: dropping the anchor can only improve (or match) the similarity
objective, while anchoring keeps every returned group renderable.
"""

import pytest

from repro.config import MiningConfig
from repro.core.cube import enumerate_candidates
from repro.core.problems import SimilarityProblem
from repro.core.rhe import RandomizedHillExploration

ANCHORED = MiningConfig(max_groups=3, min_coverage=0.25, min_group_support=5, rhe_restarts=6)
UNANCHORED = MiningConfig(
    max_groups=3,
    min_coverage=0.25,
    min_group_support=5,
    rhe_restarts=6,
    require_geo_anchor=False,
)

CONFIGS = {"geo_anchored": ANCHORED, "unconstrained": UNANCHORED}


@pytest.mark.parametrize("variant", sorted(CONFIGS))
def test_candidate_space(benchmark, toy_story_slice, variant):
    """Size of the candidate cube with and without the geo anchor."""
    config = CONFIGS[variant]
    candidates = benchmark(enumerate_candidates, toy_story_slice, config)
    if variant == "geo_anchored":
        assert all(c.descriptor.has_attribute("state") for c in candidates)
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["candidates"] = len(candidates)


@pytest.mark.parametrize("variant", sorted(CONFIGS))
def test_similarity_mining(benchmark, toy_story_slice, variant):
    """SM quality and runtime with and without the geo anchor."""
    config = CONFIGS[variant]
    candidates = enumerate_candidates(toy_story_slice, config)
    problem = SimilarityProblem(toy_story_slice, candidates, config)
    solver = RandomizedHillExploration.from_config(config)
    result = benchmark.pedantic(lambda: solver.solve(problem), rounds=3, iterations=1)
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["objective"] = round(result.objective, 4)
    benchmark.extra_info["groups"] = [g.label() for g in result.groups]
    if variant == "geo_anchored":
        assert all(g.descriptor.has_attribute("state") for g in result.groups)


def test_anchor_price_on_the_objective(benchmark, toy_story_slice):
    """The unconstrained optimum is at least as good as the anchored one."""

    def both():
        results = {}
        for variant, config in CONFIGS.items():
            candidates = enumerate_candidates(toy_story_slice, config)
            problem = SimilarityProblem(toy_story_slice, candidates, config)
            results[variant] = RandomizedHillExploration(
                restarts=8, max_iterations=250, seed=29
            ).solve(problem)
        return results

    results = benchmark.pedantic(both, rounds=1, iterations=1)
    # The anchored candidate set is a subset of the unconstrained one, so the
    # unconstrained solver has at least as much room (modulo RHE noise).
    assert results["unconstrained"].objective >= results["geo_anchored"].objective - 0.1
    benchmark.extra_info["anchored_objective"] = round(results["geo_anchored"].objective, 4)
    benchmark.extra_info["unconstrained_objective"] = round(results["unconstrained"].objective, 4)
