"""Ablation A1: the RHE restart / iteration budget.

DESIGN.md calls out the solver budget as the knob that trades latency for
solution quality.  This ablation sweeps the number of random restarts (and a
reduced iteration budget) and records objective value and runtime, so the
quality/latency curve behind the demo's default (8 restarts) is reproducible.

Shape to hold: quality is non-decreasing in the restart budget for a fixed
seed, while runtime grows roughly linearly.
"""

import pytest

from repro.core.problems import SimilarityProblem
from repro.core.rhe import RandomizedHillExploration
from repro.core.cube import enumerate_candidates

RESTART_BUDGETS = [1, 4, 16]


@pytest.fixture(scope="module")
def problem(toy_story_slice, bench_config):
    candidates = enumerate_candidates(toy_story_slice, bench_config)
    return SimilarityProblem(toy_story_slice, candidates, bench_config)


@pytest.mark.parametrize("restarts", RESTART_BUDGETS)
def test_restart_budget(benchmark, problem, restarts):
    """Quality and runtime of RHE for a given restart budget."""
    solver = RandomizedHillExploration(restarts=restarts, max_iterations=200, seed=17)
    result = benchmark.pedantic(lambda: solver.solve(problem), rounds=3, iterations=1)
    benchmark.extra_info["restarts"] = restarts
    benchmark.extra_info["objective"] = round(result.objective, 4)
    benchmark.extra_info["penalized"] = round(problem.penalized_objective(result.groups), 4)
    benchmark.extra_info["iterations"] = result.iterations
    benchmark.extra_info["feasible"] = result.feasible


def test_quality_is_monotone_in_the_restart_budget(benchmark, problem):
    """For a fixed seed, more restarts never produce a worse selection."""

    def sweep():
        scores = []
        for restarts in RESTART_BUDGETS:
            solver = RandomizedHillExploration(restarts=restarts, max_iterations=200, seed=17)
            result = solver.solve(problem)
            scores.append(problem.penalized_objective(result.groups))
        return scores

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(b >= a - 1e-9 for a, b in zip(scores, scores[1:]))
    benchmark.extra_info["penalized_by_budget"] = dict(zip(RESTART_BUDGETS, [round(s, 4) for s in scores]))


@pytest.mark.parametrize("max_iterations", [25, 200])
def test_iteration_budget(benchmark, problem, max_iterations):
    """Effect of the per-restart swap budget on quality and runtime."""
    solver = RandomizedHillExploration(restarts=4, max_iterations=max_iterations, seed=23)
    result = benchmark.pedantic(lambda: solver.solve(problem), rounds=3, iterations=1)
    benchmark.extra_info["max_iterations"] = max_iterations
    benchmark.extra_info["objective"] = round(result.objective, 4)
