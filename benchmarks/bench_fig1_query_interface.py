"""Experiment "Figure 1": the query interface.

Figure 1 of the paper is the search UI: an attribute query (movie name, actor,
director, genre), a query type, a time interval and the additional search
settings.  This benchmark measures the front-end query path — parsing the
query string and evaluating it against the item catalogue — for each query
type the demo plan (§3.2) mentions, plus the title auto-completion the search
box needs.

Shape to hold: query evaluation is interactive (well under a millisecond per
catalogue scan at this scale) and is dwarfed by the mining cost measured in
the Figure-2 benchmark.
"""

import pytest

from repro.query.engine import QueryEngine, TimeInterval
from repro.query.parser import parse_query

#: The §3.2 example queries, labelled by query type.
EXAMPLE_QUERIES = {
    "movie_name": 'title:"Toy Story"',
    "movie_set": '"Lord of the Rings"',
    "actor": 'actor:"Tom Hanks"',
    "director_genre": 'genre:Thriller AND director:"Steven Spielberg"',
    "disjunction": 'actor:"Tom Hanks" OR director:"Woody Allen"',
}


@pytest.fixture(scope="module")
def engine(small_dataset):
    return QueryEngine(small_dataset)


@pytest.mark.parametrize("query_type", sorted(EXAMPLE_QUERIES))
def test_parse_query_string(benchmark, query_type):
    """Latency of parsing one query string into a predicate tree."""
    query = EXAMPLE_QUERIES[query_type]
    predicate = benchmark(parse_query, query)
    assert predicate.describe()


@pytest.mark.parametrize("query_type", sorted(EXAMPLE_QUERIES))
def test_evaluate_query_against_catalogue(benchmark, engine, query_type):
    """Latency of evaluating a parsed query over the full item catalogue."""
    query = EXAMPLE_QUERIES[query_type]
    items = benchmark(engine.matching_items, query)
    assert items, f"query {query!r} should match items in the benchmark dataset"
    benchmark.extra_info["matched_items"] = len(items)


def test_query_with_time_interval(benchmark, engine):
    """Evaluating a query together with the Figure-1 time interval setting."""
    interval = TimeInterval.for_years(2001, 2002)

    def run():
        compiled = engine.compile('title:"Toy Story"', interval)
        return engine.matching_item_ids(compiled)

    item_ids = benchmark(run)
    assert item_ids


def test_title_autocompletion(benchmark, engine):
    """Prefix auto-completion of the search box."""
    titles = benchmark(engine.suggest_titles, "The", 10)
    assert titles
    benchmark.extra_info["suggestions"] = len(titles)
