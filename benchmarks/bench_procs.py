"""Process-backend benchmark: multi-core mining throughput vs the thread pool.

PR-3's geo benchmark measured the thread-pool mining fan-out as **GIL-bound**
(~1× speedup): the kernel's numpy calls are too fine-grained to release the
GIL for long, so threads serialise on one core.  This benchmark measures what
``ServerConfig.mining_backend="process"`` buys on the same workload shape:

* a medium synthetic dataset (the ``bench_serving`` shape: per-anchor SM+DM
  costs tens of milliseconds),
* ``ANCHORS`` distinct popular items, each explained **cold** (``use_cache=
  False`` — this isolates mining throughput; caching is benchmarked by
  ``bench_serving.py``),
* a closed-loop driver with ``clients`` threads pulling anchors off one
  queue (deterministic order via ``split_seed`` shuffling), run against
  three modes of the same system: **serial** (``workers=0``), **thread**
  (``workers=N``) and **process** (``workers=N``).

Bit-identity across the three modes is asserted on the first anchor's full
response before any timing is recorded.  Results go to ``BENCH_procs.json``
together with the hardware context — the process backend's speedup is a
function of available cores: expect ~1× (or below: IPC overhead with nothing
to parallelise against) on one core and ≥2× end-to-end at ≥4 cores, where
thread mode stays pinned at ~1×.

Run the writer (from the repository root)::

    python benchmarks/bench_procs.py            # writes BENCH_procs.json
    python benchmarks/bench_procs.py --quick    # smaller load, same shape
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import threading
import time
from pathlib import Path

# Make the src layout importable when the package is not installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.config import MiningConfig, PipelineConfig, ServerConfig
from repro.data.synthetic import SyntheticConfig, SyntheticMovieLens
from repro.server.api import MapRat
from repro.server.pool import split_seed

MINING_CONFIG = MiningConfig(max_groups=3, min_coverage=0.25, rhe_restarts=6)
BASE_SEED = 2012
#: The bench_serving "medium" dataset shape: per-anchor SM+DM mining costs
#: tens of milliseconds — the grain the process pool must amortise IPC over.
DATASET_CONFIG = SyntheticConfig(
    num_reviewers=2400, num_movies=300, ratings_per_reviewer=50, seed=5
)


def build_dataset():
    return SyntheticMovieLens(DATASET_CONFIG).generate(name="bench-procs")


def build_system(dataset, backend: str, workers: int) -> MapRat:
    config = PipelineConfig(
        mining=MINING_CONFIG,
        server=ServerConfig(mining_backend=backend, mining_workers=workers),
    )
    return MapRat.for_dataset(dataset, config)


def normalized(payload: dict) -> dict:
    payload = json.loads(json.dumps(payload))

    def strip(node):
        if isinstance(node, dict):
            return {k: strip(v) for k, v in node.items() if k != "elapsed_seconds"}
        if isinstance(node, list):
            return [strip(v) for v in node]
        return node

    return strip(payload)


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def drive(system: MapRat, anchors, clients: int) -> dict:
    """Closed loop: ``clients`` threads drain the anchor queue, mining cold."""
    order = list(anchors)
    random.Random(split_seed(BASE_SEED, 0)).shuffle(order)
    queue = list(order)
    lock = threading.Lock()
    latencies = []

    def worker() -> None:
        while True:
            with lock:
                if not queue:
                    return
                item_ids = queue.pop()
            started = time.perf_counter()
            system.explain_items(item_ids, use_cache=False)
            latency = time.perf_counter() - started
            with lock:
                latencies.append(latency)

    started = time.perf_counter()
    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    latencies.sort()
    return {
        "anchors": len(anchors),
        "clients": clients,
        "elapsed_seconds": round(elapsed, 4),
        "explains_per_second": round(len(anchors) / elapsed, 2) if elapsed else 0.0,
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 2),
        "p95_ms": round(percentile(latencies, 0.95) * 1000, 2),
    }


def run(quick: bool) -> dict:
    workers = max(2, min(4, os.cpu_count() or 1))
    clients = workers * 2
    num_anchors = 6 if quick else 24
    dataset = build_dataset()

    modes = {
        "serial": ("thread", 0),
        "thread": ("thread", workers),
        "process": ("process", workers),
    }
    results: dict = {}
    fingerprints = {}
    for mode, (backend, mode_workers) in modes.items():
        started = time.perf_counter()
        system = build_system(dataset, backend, mode_workers)
        try:
            anchors = [
                [aggregate.item_id]
                for aggregate in system.precomputer.top_items(limit=num_anchors)
            ]
            startup = time.perf_counter() - started
            fingerprints[mode] = normalized(
                system.explain_items(anchors[0], use_cache=False).to_dict()
            )
            measured = drive(system, anchors, clients)
            measured["startup_seconds"] = round(startup, 4)
            measured["backend"] = backend
            measured["workers"] = mode_workers
            results[mode] = measured
        finally:
            system.close()

    assert fingerprints["thread"] == fingerprints["serial"], "thread != serial"
    assert fingerprints["process"] == fingerprints["serial"], "process != serial"

    def speedup(numerator: str, denominator: str) -> float:
        slow = results[numerator]["elapsed_seconds"]
        fast = results[denominator]["elapsed_seconds"]
        return round(slow / fast, 2) if fast else 0.0

    return {
        "benchmark": "process-parallel mining backend (cold explain_items fan-out)",
        "workload": {
            "dataset": {
                "reviewers": DATASET_CONFIG.num_reviewers,
                "movies": DATASET_CONFIG.num_movies,
                "ratings": dataset.num_ratings,
            },
            "mining": {
                "max_groups": MINING_CONFIG.max_groups,
                "min_coverage": MINING_CONFIG.min_coverage,
                "rhe_restarts": MINING_CONFIG.rhe_restarts,
            },
            "anchors": num_anchors,
            "clients": clients,
            "cache": "off (cold mining isolates backend throughput)",
        },
        "environment": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "modes": results,
        "bit_identical": True,
        "speedup_thread_vs_serial": speedup("serial", "thread"),
        "speedup_process_vs_thread": speedup("thread", "process"),
        "speedup_process_vs_serial": speedup("serial", "process"),
        "interpretation": (
            "Thread mode is GIL-bound (~1x vs serial on this workload); the "
            "process backend scales with physical cores once mining work "
            "amortises the ~1-2 ms per-task IPC (spec pickle + result "
            "pickle + shared-memory re-slice).  On a single-core host the "
            "process numbers measure pure overhead; on >=4 cores the same "
            "driver sustains >=2x end-to-end explain throughput over the "
            "thread backend."
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller load, same shape")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_procs.json",
    )
    args = parser.parse_args()
    report = run(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
