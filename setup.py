"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so the package installs in fully offline
environments that lack the ``wheel`` package (legacy editable installs:
``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
