"""Shared fixtures for the test suite.

The expensive objects (synthetic dataset, indexed store, MapRat system) are
session-scoped: tests treat them as read-only inputs.  Mining-related fixtures
use a slightly relaxed configuration (lower support / coverage) because the
"tiny" dataset has only 150 reviewers.
"""

from __future__ import annotations

import pytest

from repro.config import MiningConfig, PipelineConfig
from repro.core.cube import enumerate_candidates
from repro.core.miner import RatingMiner
from repro.data.storage import RatingStore
from repro.data.synthetic import SyntheticConfig, SyntheticMovieLens, generate_dataset
from repro.server.api import MapRat


@pytest.fixture(scope="session")
def tiny_dataset():
    """A deterministic tiny MovieLens-shaped dataset (150 reviewers, 60 movies)."""
    return generate_dataset("tiny")


@pytest.fixture(scope="session")
def small_dataset():
    """A small dataset with enough ratings to recover the planted structure."""
    return generate_dataset("small")


@pytest.fixture(scope="session")
def mining_config():
    """Mining configuration adapted to the tiny dataset's size."""
    return MiningConfig(min_group_support=3, min_coverage=0.2, rhe_restarts=4)


@pytest.fixture(scope="session")
def tiny_store(tiny_dataset):
    """Indexed store over the tiny dataset with all grouping attributes."""
    return RatingStore(tiny_dataset)


@pytest.fixture(scope="session")
def tiny_miner(tiny_dataset, mining_config):
    return RatingMiner.for_dataset(tiny_dataset, mining_config)


@pytest.fixture(scope="session")
def toy_story_slice(tiny_miner, tiny_dataset):
    """Rating slice of the "Toy Story" item in the tiny dataset."""
    items = tiny_dataset.items_by_title("Toy Story")
    return tiny_miner.slice_for_items([item.item_id for item in items])


@pytest.fixture(scope="session")
def toy_story_candidates(toy_story_slice, mining_config):
    """Candidate groups for the Toy Story slice."""
    return enumerate_candidates(toy_story_slice, mining_config)


@pytest.fixture(scope="session")
def tiny_system(tiny_dataset, mining_config):
    """A full MapRat system over the tiny dataset."""
    return MapRat.for_dataset(tiny_dataset, PipelineConfig(mining=mining_config))


@pytest.fixture()
def fresh_system(tiny_dataset, mining_config):
    """A MapRat system with an empty cache (for cache-behaviour tests)."""
    return MapRat.for_dataset(tiny_dataset, PipelineConfig(mining=mining_config))
