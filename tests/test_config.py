"""Tests for the configuration objects and the error hierarchy."""

import pytest

from repro.config import (
    DEFAULT_GROUPING_ATTRIBUTES,
    GEO_ATTRIBUTE,
    MiningConfig,
    PipelineConfig,
    ServerConfig,
    VizConfig,
)
from repro.errors import (
    ConstraintError,
    DataError,
    GeoError,
    MapRatError,
    MiningError,
    QueryError,
    QuerySyntaxError,
    SchemaError,
    ServerError,
)


class TestMiningConfig:
    def test_defaults_match_the_paper_setup(self):
        config = MiningConfig()
        assert config.max_groups == 3
        assert config.require_geo_anchor is True
        assert GEO_ATTRIBUTE in config.grouping_attributes
        assert config.grouping_attributes == DEFAULT_GROUPING_ATTRIBUTES

    def test_grouping_attributes_normalised_to_tuple(self):
        config = MiningConfig(grouping_attributes=["gender", "state"])
        assert isinstance(config.grouping_attributes, tuple)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_groups": 0},
            {"min_coverage": -0.1},
            {"min_coverage": 1.5},
            {"max_description_length": 0},
            {"min_group_support": 0},
            {"diversity_penalty": -1},
            {"rhe_restarts": 0},
            {"rhe_max_iterations": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConstraintError):
            MiningConfig(**kwargs)

    def test_geo_anchor_requires_state_among_grouping_attributes(self):
        with pytest.raises(ConstraintError):
            MiningConfig(grouping_attributes=("gender",), require_geo_anchor=True)
        config = MiningConfig(grouping_attributes=("gender",), require_geo_anchor=False)
        assert config.grouping_attributes == ("gender",)

    def test_with_overrides_returns_modified_copy(self):
        config = MiningConfig()
        modified = config.with_overrides(max_groups=5, min_coverage=0.5)
        assert modified.max_groups == 5
        assert modified.min_coverage == 0.5
        assert config.max_groups == 3

    def test_cache_key_is_hashable_and_distinguishes_configs(self):
        first = MiningConfig()
        second = MiningConfig(max_groups=4)
        assert hash(first.cache_key())
        assert first.cache_key() != second.cache_key()
        assert first.cache_key() == MiningConfig().cache_key()


class TestOtherConfigs:
    def test_viz_config_defaults(self):
        viz = VizConfig()
        assert viz.low_color.startswith("#")
        assert viz.high_color.startswith("#")
        assert viz.tile_size > 0

    def test_server_config_defaults(self):
        server = ServerConfig()
        assert server.cache_capacity > 0
        assert server.precompute_top_items > 0

    def test_pipeline_config_bundles_defaults(self):
        pipeline = PipelineConfig()
        assert isinstance(pipeline.mining, MiningConfig)
        assert isinstance(pipeline.viz, VizConfig)
        assert isinstance(pipeline.server, ServerConfig)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_class",
        [DataError, SchemaError, GeoError, QueryError, MiningError, ServerError],
    )
    def test_all_errors_derive_from_the_base_class(self, error_class):
        assert issubclass(error_class, MapRatError)

    def test_query_syntax_error_carries_the_position(self):
        error = QuerySyntaxError("bad token", position=7)
        assert error.position == 7

    def test_server_error_carries_the_http_status(self):
        assert ServerError("missing", status=404).status == 404
        assert ServerError("bad").status == 400
