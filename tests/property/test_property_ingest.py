"""Differential battery: incremental compaction ≡ from-scratch rebuild.

For randomized append/compact schedules, two :class:`~repro.data.ingest.LiveStore`
instances consume the **identical** stream of appends — one compacting
incrementally (vocabulary remap, index appends, delta bincounts), one
rebuilding every snapshot from scratch (``use_incremental=False``, the
reference path).  After the final compaction the two stores must be
bit-identical at every level the serving stack reads:

* raw columns, vocabularies, code columns, the per-item inverted index,
* the maintained per-state :class:`~repro.data.storage.AttributeIndex`,
* whole-store geo aggregates and state drill-downs (payload equality),
* SM + DM mining results of a touched item (payload equality).

Schedules include vocabulary growth (new reviewers with unseen zip codes),
duplicate ingests (absorbed, never stored), empty-buffer compactions
(no-ops that must not bump the epoch), and index builds at random points so
delta updates of already-built indexes are exercised against lazy rebuilds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import MiningConfig
from repro.core.miner import RatingMiner
from repro.data.ingest import LiveStore
from repro.data.model import Rating, Reviewer
from repro.data.storage import RatingStore
from repro.geo.explorer import GeoExplorer

#: Randomized schedules the battery replays (acceptance: at least 50).
NUM_SCHEDULES = 50

#: Zip codes spread over several states, all resolvable, none in the tiny
#: dataset — ingesting reviewers with them grows the zipcode (and sometimes
#: city) vocabularies.
FRESH_ZIPCODES = [
    "99501", "96801", "82001", "59001", "03031", "05001", "58001", "57001",
    "83201", "97035", "33101", "60601", "75201", "10118", "02108", "94105",
]

MINING = MiningConfig(
    min_group_support=3,
    min_coverage=0.2,
    rhe_restarts=2,
    rhe_max_iterations=60,
)


@pytest.fixture(scope="module")
def base_store(tiny_dataset):
    """One frozen epoch-0 store shared (read-only) by every schedule."""
    return RatingStore(tiny_dataset)


def random_rating(rng, item_ids, reviewer_ids) -> Rating:
    return Rating(
        item_id=int(rng.choice(item_ids)),
        reviewer_id=int(rng.choice(reviewer_ids)),
        score=float(rng.integers(1, 6)),
        timestamp=int(rng.integers(0, 2_000_000_000)),
    )


def build_schedule(rng, dataset):
    """One randomized append/compact schedule as a list of operations.

    Operations: ``("append", rating, reviewer_or_None)``, ``("compact",)``,
    ``("build_index",)`` (forces the per-state index so the incremental side
    must delta-update it), ``("noop_compact",)`` (compact with an empty
    buffer).  Both stores replay the identical list.
    """
    item_ids = [item.item_id for item in dataset.items()]
    reviewer_ids = [reviewer.reviewer_id for reviewer in dataset.reviewers()]
    known_new = []
    operations = []
    next_reviewer_id = 900_000
    for round_index in range(int(rng.integers(1, 4))):
        if rng.random() < 0.3:
            operations.append(("build_index",))
        if rng.random() < 0.15:
            operations.append(("noop_compact",))
        appended = []
        for _ in range(int(rng.integers(5, 25))):
            roll = rng.random()
            if roll < 0.15:
                # A brand-new reviewer with an unseen zip code.
                zipcode = FRESH_ZIPCODES[int(rng.integers(0, len(FRESH_ZIPCODES)))]
                reviewer = Reviewer(
                    reviewer_id=next_reviewer_id,
                    gender="F" if rng.random() < 0.5 else "M",
                    age=int(rng.choice([1, 18, 25, 35, 45, 50, 56])),
                    occupation="programmer",
                    zipcode=zipcode,
                )
                next_reviewer_id += 1
                known_new.append(reviewer.reviewer_id)
                rating = Rating(
                    item_id=int(rng.choice(item_ids)),
                    reviewer_id=reviewer.reviewer_id,
                    score=float(rng.integers(1, 6)),
                    timestamp=int(rng.integers(0, 2_000_000_000)),
                )
                operations.append(("append", rating, reviewer))
                appended.append(rating)
            elif roll < 0.3 and appended:
                # Exact duplicate of an earlier append: absorbed, not stored.
                operations.append(("append", appended[int(rng.integers(0, len(appended)))], None))
            else:
                pool = reviewer_ids + known_new
                rating = random_rating(rng, item_ids, pool)
                operations.append(("append", rating, None))
                appended.append(rating)
        operations.append(("compact",))
    return operations


def replay(live: LiveStore, operations) -> None:
    for operation in operations:
        if operation[0] == "append":
            live.ingest(operation[1], operation[2])
        elif operation[0] == "build_index":
            live.snapshot.attribute_index("state")
        else:  # compact / noop_compact
            live.compact()


def assert_stores_identical(incremental: RatingStore, reference: RatingStore):
    assert incremental.epoch == reference.epoch
    assert len(incremental) == len(reference)
    assert np.array_equal(incremental._item_ids, reference._item_ids)
    assert np.array_equal(incremental._reviewer_ids, reference._reviewer_ids)
    assert np.array_equal(incremental._scores, reference._scores)
    assert np.array_equal(incremental._timestamps, reference._timestamps)
    for name in incremental.grouping_attributes:
        assert np.array_equal(
            incremental.vocabulary_for(name), reference.vocabulary_for(name)
        ), f"vocabulary drift for {name!r}"
        assert np.array_equal(
            incremental.codes_for(name), reference.codes_for(name)
        ), f"code-column drift for {name!r}"
    assert set(incremental._positions_by_item) == set(reference._positions_by_item)
    for item_id, positions in incremental._positions_by_item.items():
        assert np.array_equal(positions, reference._positions_by_item[item_id]), item_id


def assert_state_indexes_identical(incremental: RatingStore, reference: RatingStore):
    """Delta-updated index == freshly built index, field by field."""
    left = incremental.attribute_index("state")
    right = reference.attribute_index("state")
    for field in ("counts", "sums", "positives", "negatives", "joint", "bits"):
        assert np.array_equal(getattr(left, field), getattr(right, field)), field
    assert left.num_rows == right.num_rows


def strip_volatile(payload):
    """Drop wall-clock fields recursively; everything else compares exactly."""
    if isinstance(payload, dict):
        return {
            key: strip_volatile(value)
            for key, value in payload.items()
            if key != "elapsed_seconds"
        }
    if isinstance(payload, list):
        return [strip_volatile(value) for value in payload]
    return payload


def mining_payload(store: RatingStore, item_id: int) -> dict:
    result = RatingMiner(store, MINING).explain_items([item_id])
    return strip_volatile(result.to_dict())


def geo_payloads(store: RatingStore) -> tuple:
    explorer = GeoExplorer(RatingMiner(store, MINING))
    summary = [aggregate.to_dict() for aggregate in explorer.summary()]
    top_state = summary[0]["region"]
    drill = [
        aggregate.to_dict()
        for aggregate in explorer.drilldown(region=top_state, by="city")
    ]
    return summary, drill


class TestDifferentialCompaction:
    @pytest.mark.parametrize("seed", range(NUM_SCHEDULES))
    def test_incremental_equals_rebuild(self, base_store, tiny_dataset, seed):
        rng = np.random.default_rng(seed)
        operations = build_schedule(rng, tiny_dataset)
        incremental = LiveStore(base_store, use_incremental=True)
        reference = LiveStore(base_store, use_incremental=False)
        replay(incremental, operations)
        replay(reference, operations)

        left, right = incremental.snapshot, reference.snapshot
        assert left.epoch > 0, "every schedule must compact at least once"
        assert_stores_identical(left, right)
        assert_state_indexes_identical(left, right)

        # Geo results: whole-store summary (index fast path on both sides)
        # and a city drill-down of the most-rated state.
        assert geo_payloads(left) == geo_payloads(right)

        # Mining results: SM + DM of an item touched by the schedule.
        touched = sorted(
            {
                operation[1].item_id
                for operation in operations
                if operation[0] == "append"
            }
        )
        probe = touched[int(rng.integers(0, len(touched)))]
        assert mining_payload(left, probe) == mining_payload(right, probe)

    def test_duplicates_never_reach_the_store(self, base_store, tiny_dataset):
        """Ingesting the same rating twice stores it once — in both modes."""
        reviewer = next(tiny_dataset.reviewers())
        item = next(tiny_dataset.items())
        rating = Rating(item.item_id, reviewer.reviewer_id, 5.0, 42)
        for use_incremental in (True, False):
            live = LiveStore(base_store, use_incremental=use_incremental)
            assert live.ingest(rating) == "accepted"
            assert live.ingest(rating) == "duplicate"
            live.compact()
            assert live.ingest(rating) == "duplicate"  # still seen post-compact
            assert len(live.snapshot) == len(base_store) + 1

    def test_empty_buffer_compaction_is_a_noop(self, base_store):
        live = LiveStore(base_store)
        result = live.compact()
        assert result.mode == "noop"
        assert result.epoch == base_store.epoch
        assert result.store is base_store
