"""Property-based tests for the data-cube candidate enumeration.

The enumerator uses DFS with support pruning; these tests check it against a
straightforward brute-force reference on small random slices: every group it
returns must be correct (descriptor selects exactly those tuples) and it must
return *every* describable group above the support threshold within the
description-length limit (pruning must be lossless).
"""

from itertools import combinations
from typing import Dict, List

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cube import CandidateEnumerator
from repro.core.groups import GroupDescriptor
from repro.data.model import Item, Rating, RatingDataset, Reviewer
from repro.data.storage import RatingStore

ATTRIBUTES = ("gender", "age_group", "state")
VALUES: Dict[str, List[str]] = {
    "gender": ["M", "F"],
    "age_group": ["Under 18", "25-34"],
    "state": ["CA", "NY", "TX"],
}


@st.composite
def rating_slices(draw):
    size = draw(st.integers(min_value=3, max_value=30))
    reviewers, ratings = [], []
    for index in range(size):
        values = {name: draw(st.sampled_from(VALUES[name])) for name in ATTRIBUTES}
        reviewers.append(
            Reviewer(
                reviewer_id=index + 1,
                gender=values["gender"],
                age=1 if values["age_group"] == "Under 18" else 25,
                occupation="other",
                zipcode="00000",
                state=values["state"],
                city=values["state"],
            )
        )
        ratings.append(Rating(1, index + 1, float(draw(st.integers(1, 5)))))
    dataset = RatingDataset(reviewers, [Item(1, "Movie")], ratings, validate=False)
    return RatingStore(dataset, grouping_attributes=ATTRIBUTES).slice_for_items([1])


def _brute_force_descriptors(rating_slice, max_length, min_support):
    """Reference enumeration: try every attribute/value combination."""
    found = set()
    for length in range(1, max_length + 1):
        for attributes in combinations(ATTRIBUTES, length):
            value_lists = [VALUES[a] for a in attributes]
            stack = [[]]
            for values in value_lists:
                stack = [prefix + [v] for prefix in stack for v in values]
            for values in stack:
                pairs = dict(zip(attributes, values))
                mask = np.ones(len(rating_slice), dtype=bool)
                for attribute, value in pairs.items():
                    mask &= rating_slice.mask_for(attribute, value)
                if int(mask.sum()) >= min_support:
                    found.add(GroupDescriptor.from_dict(pairs))
    return found


class TestEnumerationCompleteness:
    @given(rating_slices(), st.integers(min_value=1, max_value=3), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_enumerator_matches_brute_force(self, rating_slice, max_length, min_support):
        enumerator = CandidateEnumerator(
            rating_slice,
            grouping_attributes=ATTRIBUTES,
            max_description_length=max_length,
            min_support=min_support,
        )
        groups = enumerator.enumerate()
        enumerated = {g.descriptor for g in groups}
        expected = _brute_force_descriptors(rating_slice, max_length, min_support)
        assert enumerated == expected

    @given(rating_slices(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_group_membership_is_exactly_the_descriptor_selection(self, rating_slice, min_support):
        enumerator = CandidateEnumerator(
            rating_slice,
            grouping_attributes=ATTRIBUTES,
            max_description_length=2,
            min_support=min_support,
        )
        for group in enumerator.enumerate():
            mask = np.ones(len(rating_slice), dtype=bool)
            for attribute, value in group.descriptor.pairs:
                mask &= rating_slice.mask_for(attribute, value)
            assert np.array_equal(np.flatnonzero(mask), group.positions)
            assert group.size == int(mask.sum())

    @given(rating_slices())
    @settings(max_examples=30, deadline=None)
    def test_geo_anchored_enumeration_is_the_filtered_subset(self, rating_slice):
        plain = CandidateEnumerator(
            rating_slice, grouping_attributes=ATTRIBUTES, max_description_length=2, min_support=2
        ).enumerate()
        anchored = CandidateEnumerator(
            rating_slice,
            grouping_attributes=ATTRIBUTES,
            max_description_length=2,
            min_support=2,
            require_geo_anchor=True,
        ).enumerate()
        plain_with_state = {g.descriptor for g in plain if g.descriptor.has_attribute("state")}
        assert {g.descriptor for g in anchored} == plain_with_state
