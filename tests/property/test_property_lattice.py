"""Differential battery: materialised-lattice enumeration ≡ the DFS reference.

For 50 randomized ingest/compact schedules, a lattice-carrying
:class:`~repro.data.ingest.LiveStore` replays appends and compactions (so the
lattice under test is the *delta-merged* one, not a fresh build), and at every
compaction point the three lattice fast-path modes are compared bit-for-bit
against ``use_lattice=False`` (the integer-coded DFS kernel, itself proven
equal to the naive reference in ``test_property_kernel.py``):

* **direct** — the whole-store slice (``slice_all``): candidates are read
  straight out of cuboid cells;
* **restrict** — a region slice cut through the attribute-index bitset path:
  cells come from the region-extended cuboid masked on the anchor code;
* **scan** — the fallback for a hinted slice that cannot use the cuboids
  (production item slices carry no hint — the DFS kernel wins on arbitrary
  subsets — so the battery manufactures the fallback explicitly).

Each comparison draws the enumerator parameters (description length, support
threshold, geo anchoring) from the schedule's RNG, so the battery sweeps the
parameter space across seeds.  Identity is exact: same descriptors in the
same (DFS pre-)order, same member positions, same sizes and averages.
``EnumerationStats.explored``/``pruned_by_support`` are intentionally *not*
compared — the lattice path counts cells, the DFS counts tree nodes.

A second class proves the equivalence end to end through every mining
backend: ``thread``, ``process`` and ``sharded`` systems answer ``explain``
and ``geo_explain`` with identical (volatile-stripped) payloads whether the
lattice is on or off.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.config import MiningConfig, PipelineConfig, ServerConfig
from repro.core.cube import CandidateEnumerator
from repro.core.miner import RatingMiner
from repro.data.ingest import LiveStore
from repro.data.lattice import CuboidLattice, LatticeHint
from repro.data.model import Rating, Reviewer
from repro.data.storage import RatingStore
from repro.geo.explorer import GeoExplorer
from repro.server.api import MapRat

#: Randomized schedules the battery replays (acceptance: at least 50).
NUM_SCHEDULES = 50

#: Unseen zip codes that grow the state/city vocabularies mid-schedule, so
#: the delta-merged lattice exercises the monotone key remaps.
FRESH_ZIPCODES = [
    "99501", "96801", "82001", "59001", "03031", "05001", "58001", "57001",
]

ATTRIBUTES = ("gender", "age_group", "occupation", "state")

MINING = MiningConfig(
    min_group_support=3,
    min_coverage=0.2,
    rhe_restarts=2,
    rhe_max_iterations=60,
)


@pytest.fixture(scope="module")
def lattice_base(tiny_dataset):
    """One frozen epoch-0 store with a built lattice, shared read-only."""
    store = RatingStore(tiny_dataset)
    store.attach_lattice(CuboidLattice.build(store))
    return store


def build_schedule(rng, dataset):
    """Randomized append/compact rounds; every round ends in a compaction."""
    item_ids = [item.item_id for item in dataset.items()]
    reviewer_ids = [reviewer.reviewer_id for reviewer in dataset.reviewers()]
    operations = []
    next_reviewer_id = 910_000
    for _ in range(int(rng.integers(1, 4))):
        for _ in range(int(rng.integers(5, 20))):
            if rng.random() < 0.2:
                reviewer = Reviewer(
                    reviewer_id=next_reviewer_id,
                    gender="F" if rng.random() < 0.5 else "M",
                    age=int(rng.choice([1, 18, 25, 35, 45, 50, 56])),
                    occupation="programmer",
                    zipcode=FRESH_ZIPCODES[int(rng.integers(0, len(FRESH_ZIPCODES)))],
                )
                next_reviewer_id += 1
                rating = Rating(
                    item_id=int(rng.choice(item_ids)),
                    reviewer_id=reviewer.reviewer_id,
                    score=float(rng.integers(1, 6)),
                    timestamp=int(rng.integers(0, 2_000_000_000)),
                )
                operations.append(("append", rating, reviewer))
            else:
                rating = Rating(
                    item_id=int(rng.choice(item_ids)),
                    reviewer_id=int(rng.choice(reviewer_ids)),
                    score=float(rng.integers(1, 6)),
                    timestamp=int(rng.integers(0, 2_000_000_000)),
                )
                operations.append(("append", rating, None))
        operations.append(("compact",))
    return operations


def assert_lattice_equals_dfs(rating_slice, rng, expected_mode):
    """One drawn-parameter comparison of the two enumeration paths."""
    params = dict(
        grouping_attributes=ATTRIBUTES,
        max_description_length=int(rng.integers(1, 4)),
        min_support=int(rng.integers(2, 6)),
        require_geo_anchor=bool(rng.random() < 0.4),
    )
    fast = CandidateEnumerator(rating_slice, use_lattice=True, **params)
    slow = CandidateEnumerator(rating_slice, use_lattice=False, **params)

    # The fast path must actually be the mode under test, not a silent
    # fallback to the DFS (which would make the comparison vacuous).
    hint = rating_slice.lattice_hint
    assert hint is not None
    assert fast._lattice_mode(hint, fast._lattice_subsets()) == expected_mode

    fast_groups, fast_stats = fast.enumerate_with_stats()
    slow_groups, slow_stats = slow.enumerate_with_stats()
    assert fast_stats.candidates == slow_stats.candidates
    assert [g.descriptor for g in fast_groups] == [g.descriptor for g in slow_groups]
    for left, right in zip(fast_groups, slow_groups):
        assert np.array_equal(left.positions, right.positions)
        assert left.size == right.size
        assert left.mean == right.mean  # == on floats: bit-identical
        assert left.error == right.error


def compare_all_modes(store, rng, mining_config):
    """Run the three-mode comparison against one compacted snapshot."""
    # direct: the whole-store slice reads cells straight out of the cuboids.
    assert_lattice_equals_dfs(store.slice_all(), rng, "direct")

    # restrict: a region slice through the attribute-index bitset path.
    explorer = GeoExplorer(RatingMiner(store, mining_config))
    region = explorer.top_regions(limit=1)[0]
    region_slice = explorer._region_slice(region, None, None)
    assert_lattice_equals_dfs(region_slice, rng, "restrict")

    # scan: the fallback when a hinted slice cannot use the cuboids.  Item
    # slices carry no hint in production (the kernel wins there), so the
    # fallback is manufactured explicitly to keep it proven bit-identical.
    item_id, _ = store.most_rated_items(limit=1)[0]
    item_slice = store.slice_for_items([item_id])
    assert item_slice.lattice_hint is None
    item_slice.lattice_hint = LatticeHint(store.lattice())
    assert_lattice_equals_dfs(item_slice, rng, "scan")


class TestLatticeDifferential:
    @pytest.mark.parametrize("seed", range(NUM_SCHEDULES))
    def test_lattice_equals_dfs_across_compactions(
        self, lattice_base, tiny_dataset, seed
    ):
        rng = np.random.default_rng(seed)
        live = LiveStore(lattice_base, use_incremental=True)
        for operation in build_schedule(rng, tiny_dataset):
            if operation[0] == "append":
                live.ingest(operation[1], operation[2])
                continue
            live.compact()
            snapshot = live.snapshot
            lattice = snapshot.lattice()
            assert lattice is not None, "compaction must carry the lattice"
            assert lattice.epoch == snapshot.epoch
            assert lattice.num_rows == len(snapshot)
            compare_all_modes(snapshot, rng, MINING)

    def test_epoch_zero_store_before_any_compaction(self, lattice_base):
        """The fresh build (no deltas) passes the same three-mode check."""
        compare_all_modes(lattice_base, np.random.default_rng(1234), MINING)

    def test_memoised_lookup_is_identical(self, tiny_dataset):
        """A repeat direct/restrict enumeration answers from the memo, identically."""
        store = RatingStore(tiny_dataset)
        store.attach_lattice(CuboidLattice.build(store))
        params = dict(
            grouping_attributes=ATTRIBUTES,
            max_description_length=3,
            min_support=3,
            require_geo_anchor=False,
        )
        first, first_stats = CandidateEnumerator(
            store.slice_all(), use_lattice=True, **params
        ).enumerate_with_stats()
        assert store.lattice().candidate_memo, "direct mode must memoise"
        again, again_stats = CandidateEnumerator(
            store.slice_all(), use_lattice=True, **params
        ).enumerate_with_stats()
        assert first_stats == again_stats
        assert [g.descriptor for g in first] == [g.descriptor for g in again]
        for left, right in zip(first, again):
            assert np.array_equal(left.positions, right.positions)
            assert left.mean == right.mean and left.error == right.error

    def test_stale_hint_falls_back_to_scan(self, lattice_base, tiny_dataset):
        """A hint whose lattice no longer matches the slice scans, identically."""
        live = LiveStore(lattice_base, use_incremental=True)
        reviewer = next(tiny_dataset.reviewers())
        item = next(tiny_dataset.items())
        live.ingest(Rating(item.item_id, reviewer.reviewer_id, 5.0, 77))
        live.compact()
        grown = live.snapshot.slice_all()
        # Re-point the hint at the *old* epoch's lattice: num_rows mismatch.
        grown.lattice_hint = LatticeHint(lattice_base.lattice(), whole_store=True)
        assert_lattice_equals_dfs(grown, np.random.default_rng(99), "scan")

    def test_lattice_matches_naive_reference(self, lattice_base):
        """Close the triangle: lattice == naive DFS (not just the kernel)."""
        rating_slice = lattice_base.slice_all()
        params = dict(
            grouping_attributes=ATTRIBUTES,
            max_description_length=2,
            min_support=3,
            require_geo_anchor=True,
        )
        fast = CandidateEnumerator(rating_slice, use_lattice=True, **params)
        naive = CandidateEnumerator(
            rating_slice, use_lattice=False, use_kernel=False, **params
        )
        fast_groups = fast.enumerate()
        naive_groups = naive.enumerate()
        assert [g.descriptor for g in fast_groups] == [
            g.descriptor for g in naive_groups
        ]
        for left, right in zip(fast_groups, naive_groups):
            assert np.array_equal(left.positions, right.positions)


def normalized(payload) -> dict:
    """JSON round-trip with every (volatile) elapsed_seconds removed."""
    payload = json.loads(json.dumps(payload))

    def strip(node):
        if isinstance(node, dict):
            return {k: strip(v) for k, v in node.items() if k != "elapsed_seconds"}
        if isinstance(node, list):
            return [strip(v) for v in node]
        return node

    return strip(payload)


def payload_bundle(system: MapRat) -> dict:
    """The served surfaces a lattice can influence, cache-bypassed (cold)."""
    region = GeoExplorer(system.miner).top_regions(limit=1)[0]
    return {
        "explain": normalized(
            system.explain('title:"Toy Story"', use_cache=False).to_dict()
        ),
        "geo_item": normalized(
            system.geo_explain('title:"Toy Story"', region, use_cache=False).to_dict()
        ),
        "geo_store": normalized(
            system.geo_explain_items(None, region, use_cache=False).to_dict()
        ),
    }


class TestBackendDifferential:
    """Every mining backend serves identical payloads with the lattice on."""

    @pytest.mark.parametrize("backend,workers", [
        ("thread", 2),
        ("process", 2),
        ("sharded", 2),
    ])
    def test_backend_payloads_identical(
        self, tiny_dataset, mining_config, backend, workers
    ):
        bundles = {}
        for use_lattice in (False, True):
            config = PipelineConfig(
                mining=mining_config,
                server=ServerConfig(
                    mining_backend=backend,
                    mining_workers=workers,
                    use_cuboid_lattice=use_lattice,
                ),
            )
            system = MapRat.for_dataset(tiny_dataset, config)
            try:
                assert (system.miner.store.lattice() is not None) == use_lattice
                bundles[use_lattice] = payload_bundle(system)
            finally:
                system.close()
        assert bundles[True] == bundles[False]
