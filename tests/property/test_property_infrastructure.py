"""Property-based tests on the supporting substrates: cache, colours, geo, parser."""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo.states import ALL_STATE_CODES, state_by_code
from repro.geo.zipcodes import city_for_zipcode, state_for_zipcode, zipcode_for
from repro.query.parser import parse_query
from repro.server.cache import ResultCache
from repro.viz.color import LikertScale, hex_to_rgb


class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=30), st.integers()),
            min_size=1,
            max_size=200,
        ),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_capacity_never_exceeded_and_last_write_wins(self, operations, capacity):
        cache = ResultCache(capacity=capacity)
        last_value = {}
        for key, value in operations:
            cache.put(key, value)
            last_value[key] = value
            assert len(cache) <= capacity
        for key in cache.keys():
            assert cache.get(key) == last_value[key]

    @given(st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_requests(self, keys):
        cache = ResultCache(capacity=4)
        for key in keys:
            if cache.get(key) is None:
                cache.put(key, key)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.requests == len(keys)


class TestColorProperties:
    @given(st.floats(min_value=-5, max_value=15, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_every_rating_maps_to_a_valid_colour(self, rating):
        color = LikertScale().color_for(rating)
        channels = hex_to_rgb(color)
        assert all(0 <= channel <= 255 for channel in channels)

    @given(
        st.floats(min_value=1, max_value=5, allow_nan=False),
        st.floats(min_value=1, max_value=5, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_green_channel_is_monotone_in_the_rating(self, first, second):
        scale = LikertScale()
        low, high = sorted((first, second))
        assert hex_to_rgb(scale.color_for(low))[1] <= hex_to_rgb(scale.color_for(high))[1]

    @given(st.floats(min_value=1, max_value=5, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_fraction_stays_in_unit_interval(self, rating):
        assert 0.0 <= LikertScale().fraction(rating) <= 1.0


class TestGeoProperties:
    @given(
        st.sampled_from(ALL_STATE_CODES),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=120, deadline=None)
    def test_synthesised_zipcodes_resolve_to_their_state_and_a_known_city(
        self, state_code, city_index, offset
    ):
        zipcode = zipcode_for(state_code, city_index=city_index, offset=offset)
        assert len(zipcode) == 5
        assert state_for_zipcode(zipcode) == state_code
        assert city_for_zipcode(zipcode) in state_by_code(state_code).cities

    @given(st.integers(min_value=0, max_value=99999))
    @settings(max_examples=150, deadline=None)
    def test_every_numeric_zip_resolves_to_at_most_one_state(self, zip5):
        zipcode = f"{zip5:05d}"
        state = state_for_zipcode(zipcode)
        if state is not None:
            assert state in ALL_STATE_CODES
            assert city_for_zipcode(zipcode) in state_by_code(state).cities
        else:
            assert city_for_zipcode(zipcode) is None


_word = st.text(alphabet=string.ascii_letters, min_size=1, max_size=8)
_value = st.text(
    alphabet=string.ascii_letters + string.digits + " ", min_size=1, max_size=12
).filter(lambda s: s.strip())


@st.composite
def query_strings(draw):
    """Random syntactically valid query strings built from the grammar."""
    attribute = draw(st.sampled_from(["title", "genre", "actor", "director"]))
    leaf = f'{attribute}:"{draw(_value)}"'
    if draw(st.booleans()):
        other_attribute = draw(st.sampled_from(["title", "genre", "actor", "director"]))
        operator = draw(st.sampled_from([" AND ", " OR "]))
        leaf = f'{leaf}{operator}{other_attribute}:"{draw(_value)}"'
    if draw(st.booleans()):
        leaf = f"NOT {leaf}"
    return leaf


class TestParserProperties:
    @given(query_strings())
    @settings(max_examples=80, deadline=None)
    def test_generated_queries_always_parse(self, query):
        predicate = parse_query(query)
        assert predicate.describe()

    @given(query_strings())
    @settings(max_examples=80, deadline=None)
    def test_describe_is_a_fixed_point_of_parsing(self, query):
        first = parse_query(query)
        second = parse_query(first.describe())
        assert first.describe() == second.describe()
