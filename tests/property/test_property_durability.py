"""Crash battery: kill-and-recover ≡ the run that was never killed.

For randomized ingest/compact schedules, a durable
:class:`~repro.data.ingest.LiveStore` is killed mid-operation by a fault
injected at one of the four crash-critical points — during a WAL append
(optionally tearing the record), during the WAL rotation of a compaction,
during the snapshot write (optionally truncating the temp file), or right
before the atomic snapshot rename.  A fresh
:class:`~repro.server.recovery.DurabilityController` then crash-recovers the
data directory and the schedule is resumed from the killed operation
(inclusive — a killed op is, by construction, never durable *except* for a
completed compaction whose re-application is a no-op).

The recovered store must be bit-identical to a plain in-memory reference
that replayed the whole schedule without ever crashing: identical columns,
vocabularies, code columns and inverted index, identical pending buffer,
and — spot-checked across the battery — identical SM/DM mining and geo
payloads.  A final compaction on both sides verifies the buffered tail too.
"""

from __future__ import annotations

import numpy as np
import pytest
from test_property_ingest import (
    FRESH_ZIPCODES,
    assert_stores_identical,
    geo_payloads,
    mining_payload,
)

from repro.data.ingest import LiveStore
from repro.data.model import Rating, Reviewer
from repro.data.storage import RatingStore
from repro.server.recovery import DurabilityController

#: Randomized kill-and-recover schedules (acceptance: at least 50).
NUM_SCHEDULES = 50


@pytest.fixture(scope="module")
def base_store(tiny_dataset):
    """One frozen epoch-0 store shared (read-only) by every schedule."""
    return RatingStore(tiny_dataset)

#: The four crash points, cycled across seeds so each gets equal coverage.
KILL_KINDS = ("wal.append", "wal.rotate", "snapshot.write", "snapshot.rename")


class SimulatedCrash(RuntimeError):
    """Raised by the injector in place of the process dying."""


class CrashInjector:
    """Fault hook that kills the process once, at an armed crash point.

    When armed with a ``partial`` fraction, the injector first writes that
    prefix of the pending bytes (a torn WAL record, a truncated snapshot
    temp file) through the handle the caller was about to use — simulating
    a crash landing mid-``write``.
    """

    def __init__(self) -> None:
        self.armed = None  # (point, partial_fraction_or_None)
        self.fired = False

    def arm(self, point: str, partial=None) -> None:
        self.armed = (point, partial)

    def __call__(self, point: str, **context) -> None:
        if self.armed is None or point != self.armed[0]:
            return
        _, partial = self.armed
        self.armed = None
        self.fired = True
        if partial is not None:
            data = context["data"]
            context["file"].write(data[: int(len(data) * partial)])
        raise SimulatedCrash(f"killed at {point}")


def build_crash_schedule(rng, dataset):
    """One randomized schedule plus the op indexes each kill kind may target.

    Returns ``(operations, ingest_indexes, compact_indexes)`` where
    ``operations`` mixes ``("ingest", rating, reviewer_or_None)`` and
    ``("compact",)``; ``ingest_indexes`` are guaranteed-accepted (fresh,
    non-duplicate) ingests — only those reach the ``wal.append`` fault point
    — and ``compact_indexes`` are compactions with a non-empty buffer, so a
    kill there always lands inside real drain/snapshot work.
    """
    item_ids = [item.item_id for item in dataset.items()]
    reviewer_ids = [reviewer.reviewer_id for reviewer in dataset.reviewers()]
    known_new = []
    operations, ingest_indexes, compact_indexes = [], [], []
    next_reviewer_id = 900_000
    appended = []
    for _ in range(int(rng.integers(2, 4))):
        for _ in range(int(rng.integers(4, 12))):
            roll = rng.random()
            reviewer = None
            if roll < 0.25:
                zipcode = FRESH_ZIPCODES[int(rng.integers(0, len(FRESH_ZIPCODES)))]
                reviewer = Reviewer(
                    reviewer_id=next_reviewer_id,
                    gender="F" if rng.random() < 0.5 else "M",
                    age=int(rng.choice([1, 18, 25, 35, 45, 50, 56])),
                    occupation="programmer",
                    zipcode=zipcode,
                )
                next_reviewer_id += 1
                known_new.append(reviewer.reviewer_id)
                reviewer_pool = [reviewer.reviewer_id]
            elif roll < 0.4 and appended:
                # Exact duplicate: absorbed, never write-ahead logged, so it
                # must not be a wal.append kill target.
                operations.append(
                    ("ingest", appended[int(rng.integers(0, len(appended)))], None)
                )
                continue
            else:
                reviewer_pool = reviewer_ids + known_new
            rating = Rating(
                item_id=int(rng.choice(item_ids)),
                reviewer_id=int(rng.choice(reviewer_pool)),
                score=float(rng.integers(1, 6)),
                timestamp=int(rng.integers(0, 2_000_000_000)),
            )
            ingest_indexes.append(len(operations))
            operations.append(("ingest", rating, reviewer))
            appended.append(rating)
        compact_indexes.append(len(operations))
        operations.append(("compact",))
    # A buffered tail after the last compaction, so recovery also has
    # pending rows to reconstruct from the active log.
    for _ in range(int(rng.integers(1, 6))):
        rating = Rating(
            item_id=int(rng.choice(item_ids)),
            reviewer_id=int(rng.choice(reviewer_ids + known_new)),
            score=float(rng.integers(1, 6)),
            timestamp=int(rng.integers(0, 2_000_000_000)),
        )
        ingest_indexes.append(len(operations))
        operations.append(("ingest", rating, None))
    return operations, ingest_indexes, compact_indexes


def choose_kill(rng, seed, ingest_indexes, compact_indexes):
    """Pick the crash point, the op it lands in, and an optional tear."""
    kind = KILL_KINDS[seed % len(KILL_KINDS)]
    if kind == "wal.append":
        kill_index = int(rng.choice(ingest_indexes))
    else:
        kill_index = int(rng.choice(compact_indexes))
    partial = None
    if kind in ("wal.append", "snapshot.write") and rng.random() < 0.5:
        partial = float(rng.uniform(0.1, 0.9))
    return kind, kill_index, partial


def apply_op(live: LiveStore, operation) -> None:
    if operation[0] == "ingest":
        live.ingest(operation[1], operation[2])
    else:
        live.compact()


class TestCrashRecoveryDifferential:
    @pytest.mark.parametrize("seed", range(NUM_SCHEDULES))
    def test_recovered_equals_never_killed(
        self, base_store, tiny_dataset, tmp_path, seed
    ):
        rng = np.random.default_rng(10_000 + seed)
        operations, ingest_indexes, compact_indexes = build_crash_schedule(
            rng, tiny_dataset
        )
        kind, kill_index, partial = choose_kill(
            rng, seed, ingest_indexes, compact_indexes
        )

        # -- the run that gets killed ------------------------------------
        injector = CrashInjector()
        crashed = DurabilityController(tmp_path, fault=injector)
        live, _ = crashed.recover(tiny_dataset, lambda dataset: base_store)
        with pytest.raises(SimulatedCrash):
            for index, operation in enumerate(operations):
                if index == kill_index:
                    injector.arm(kind, partial)
                apply_op(live, operation)
        assert injector.fired
        del crashed, live  # abandoned without close(), like a dead process

        # -- crash recovery + resume from the killed op ------------------
        controller = DurabilityController(tmp_path)
        recovered, report = controller.recover(
            tiny_dataset, lambda dataset: base_store
        )
        for operation in operations[kill_index:]:
            apply_op(recovered, operation)

        # -- the reference that never crashed ----------------------------
        reference = LiveStore(base_store)
        for operation in operations:
            apply_op(reference, operation)

        assert recovered.epoch == reference.epoch
        assert recovered.pending == reference.pending
        assert_stores_identical(recovered.snapshot, reference.snapshot)

        # Compact the buffered tail on both sides: the recovered WAL replay
        # and the in-memory buffer must drain to the same store.
        recovered.compact()
        reference.compact()
        assert_stores_identical(recovered.snapshot, reference.snapshot)

        # Spot-check the serving payloads across the battery.
        if seed % 10 == 0:
            touched = sorted(
                {op[1].item_id for op in operations if op[0] == "ingest"}
            )
            probe = touched[int(rng.integers(0, len(touched)))]
            assert mining_payload(recovered.snapshot, probe) == mining_payload(
                reference.snapshot, probe
            )
            assert geo_payloads(recovered.snapshot) == geo_payloads(
                reference.snapshot
            )
        assert report.torn_bytes_dropped == 0 or kind in (
            "wal.append",
            "snapshot.write",
        )
        controller.close()
