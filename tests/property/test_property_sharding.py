"""Differential battery: sharded scatter-gather ≡ unsharded mining.

For randomized ingest/compact schedules, the same snapshots are mined twice —
once serially (the reference kernel of §3) and once through an inline
:class:`~repro.server.shardpool.ShardedMiningPool` that partitions the store,
enumerates per-shard partial cubes and merges them
(:mod:`repro.core.shardmerge`).  Every payload the serving stack emits must be
**bit-identical**: SM + DM explanations and within-region geo mining, at every
published epoch of the schedule.

Schedules vary the shard count (1, 2, 3, 7 — including the degenerate single
shard), the partitioning scheme (reviewer hash and region hash), skew the
reviewer distribution (a hot handful of reviewers takes most appends, so
shards are unbalanced), grow vocabularies mid-schedule (fresh reviewers with
unseen zip codes — the region scheme must not move existing states), and
interleave ingest + compaction so the publish/retire epoch protocol runs
under sharding.  Selections small enough to miss some shards entirely
exercise the empty-shard path of the scatter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import MiningConfig
from repro.core.cube import enumerate_candidates
from repro.core.miner import RatingMiner
from repro.data.ingest import LiveStore
from repro.data.model import Rating, Reviewer
from repro.data.sharding import slice_shards
from repro.data.storage import RatingStore
from repro.geo.explorer import GeoExplorer
from repro.server.shardpool import ShardedMiningPool

#: Randomized schedules the battery replays (acceptance: at least 50).
NUM_SCHEDULES = 50

#: Shard counts cycled across seeds (1 = degenerate single-shard mode).
SHARD_COUNTS = [1, 2, 3, 7]

#: Zip codes spread over several states, all resolvable, none in the tiny
#: dataset — fresh reviewers grow the zipcode/city vocabularies mid-schedule.
FRESH_ZIPCODES = [
    "99501", "96801", "82001", "59001", "03031", "05001", "58001", "57001",
    "83201", "97035", "33101", "60601", "75201", "10118", "02108", "94105",
]

MINING = MiningConfig(
    min_group_support=3,
    min_coverage=0.2,
    rhe_restarts=2,
    rhe_max_iterations=60,
)


@pytest.fixture(scope="module")
def base_store(tiny_dataset):
    """One frozen epoch-0 store shared (read-only) by every schedule."""
    return RatingStore(tiny_dataset)


def build_schedule(rng, dataset):
    """One randomized skewed append/compact schedule.

    Returns ``(operations, probe_item_ids)``: operations are
    ``("append", rating, reviewer_or_None)`` / ``("compact",)``; the probes
    are items touched by the schedule (mined after each compaction).  The
    reviewer distribution is deliberately skewed: a hot handful of reviewers
    takes most of the appends, so reviewer-hash shards end up unbalanced.
    """
    item_ids = [item.item_id for item in dataset.items()]
    reviewer_ids = [reviewer.reviewer_id for reviewer in dataset.reviewers()]
    hot = [int(r) for r in rng.choice(reviewer_ids, size=3, replace=False)]
    operations = []
    touched = set()
    next_reviewer_id = 900_000
    for _ in range(int(rng.integers(1, 3))):
        for _ in range(int(rng.integers(6, 20))):
            roll = rng.random()
            if roll < 0.12:
                # A brand-new reviewer with an unseen zip code: vocabulary
                # growth that the region scheme must shrug off.
                zipcode = FRESH_ZIPCODES[int(rng.integers(0, len(FRESH_ZIPCODES)))]
                reviewer = Reviewer(
                    reviewer_id=next_reviewer_id,
                    gender="F" if rng.random() < 0.5 else "M",
                    age=int(rng.choice([1, 18, 25, 35, 45, 50, 56])),
                    occupation="programmer",
                    zipcode=zipcode,
                )
                next_reviewer_id += 1
                reviewer_id = reviewer.reviewer_id
            else:
                reviewer = None
                # Skew: the hot reviewers absorb ~2/3 of the stream.
                pool = hot if roll < 0.7 else reviewer_ids
                reviewer_id = int(rng.choice(pool))
            rating = Rating(
                item_id=int(rng.choice(item_ids)),
                reviewer_id=reviewer_id,
                score=float(rng.integers(1, 6)),
                timestamp=int(rng.integers(0, 2_000_000_000)),
            )
            operations.append(("append", rating, reviewer))
            touched.add(rating.item_id)
        operations.append(("compact",))
    return operations, sorted(touched)


def strip_volatile(payload):
    """Drop wall-clock fields recursively; everything else compares exactly."""
    if isinstance(payload, dict):
        return {
            key: strip_volatile(value)
            for key, value in payload.items()
            if key != "elapsed_seconds"
        }
    if isinstance(payload, list):
        return [strip_volatile(value) for value in payload]
    return payload


def explain_payload(store: RatingStore, item_ids, pool=None) -> dict:
    result = RatingMiner(store, MINING).explain_items(item_ids, pool=pool)
    return strip_volatile(result.to_dict())


def geo_payload(store: RatingStore, item_ids, region, pool=None) -> dict:
    explorer = GeoExplorer(RatingMiner(store, MINING))
    result = explorer.explain_region(item_ids, region, pool=pool)
    return strip_volatile(result.to_dict())


class TestShardedEqualsUnsharded:
    @pytest.mark.parametrize("seed", range(NUM_SCHEDULES))
    def test_sharded_mining_matches_serial(self, base_store, tiny_dataset, seed):
        rng = np.random.default_rng(seed)
        num_shards = SHARD_COUNTS[seed % len(SHARD_COUNTS)]
        scheme = "region" if seed % 2 else "reviewer"
        operations, probes = build_schedule(rng, tiny_dataset)
        live = LiveStore(base_store)
        pool = ShardedMiningPool(workers=0, shards=num_shards, scheme=scheme)
        try:
            for operation in operations:
                if operation[0] == "append":
                    live.ingest(operation[1], operation[2])
                    continue
                live.compact()
                snapshot = live.snapshot
                # Interleaved publish: each compaction's epoch goes live on
                # the pool (retiring the previous one) and is mined at once.
                pool.publish(snapshot)
                assert pool.current_epoch == snapshot.epoch
                probe = probes[int(rng.integers(0, len(probes)))]
                assert explain_payload(snapshot, [probe], pool=pool) == (
                    explain_payload(snapshot, [probe])
                ), f"SM/DM drift at epoch {snapshot.epoch}"
            snapshot = live.snapshot
            assert snapshot.epoch > 0, "every schedule must compact at least once"
            # Geo: within-region mining of the reviewers' top state.
            explorer = GeoExplorer(RatingMiner(snapshot, MINING))
            region = explorer.summary()[0].region
            assert geo_payload(snapshot, None, region, pool=pool) == (
                geo_payload(snapshot, None, region)
            ), f"geo drift for {region!r} at epoch {snapshot.epoch}"
        finally:
            pool.shutdown()

    @pytest.mark.parametrize("seed", range(0, NUM_SCHEDULES, 10))
    def test_merged_candidates_match_the_serial_enumerator(
        self, base_store, tiny_dataset, seed
    ):
        """The merge is exact *before* RHE: same groups, same floats."""
        rng = np.random.default_rng(seed)
        num_shards = SHARD_COUNTS[seed % len(SHARD_COUNTS)]
        item_ids = [item.item_id for item in tiny_dataset.items()]
        probe = int(rng.choice(item_ids))
        gslice = base_store.slice_for_items([probe])
        serial = enumerate_candidates(gslice, MINING)
        pool = ShardedMiningPool(workers=0, shards=num_shards)
        try:
            pool.publish(base_store)
            merged = pool._scatter_candidates(
                gslice, base_store.epoch, (probe,), None, None, MINING
            )
        finally:
            pool.shutdown()
        assert len(merged) == len(serial)
        for ours, theirs in zip(merged, serial):
            assert ours.descriptor == theirs.descriptor
            assert np.array_equal(ours.positions, theirs.positions)
            assert ours.size == theirs.size
            assert ours.mean == theirs.mean  # bit-identical, not approx
            assert ours.error == theirs.error

    def test_selection_missing_some_shards_entirely(self, base_store, tiny_dataset):
        """Empty shards are skipped by the scatter, not sent empty work."""
        # More shards than the slice has rows guarantees empty shards; the
        # probe is the smallest selection that still yields candidates.
        item_id = min(
            (
                item.item_id
                for item in tiny_dataset.items()
                if enumerate_candidates(
                    base_store.slice_for_items([item.item_id]), MINING
                )
            ),
            key=lambda item_id: len(base_store.slice_for_items([item_id])),
        )
        gslice = base_store.slice_for_items([item_id])
        shards = 2 * len(gslice) + 1
        assignment = slice_shards(gslice, shards, "reviewer")
        populated = {int(shard) for shard in assignment}
        assert len(populated) < shards  # the premise: some shards hold no row
        pool = ShardedMiningPool(workers=0, shards=shards)
        try:
            pool.publish(base_store)
            before = pool.tasks_submitted
            sharded = explain_payload(base_store, [item_id], pool=pool)
            assert pool.tasks_submitted - before == len(populated)
        finally:
            pool.shutdown()
        assert sharded == explain_payload(base_store, [item_id])

    def test_region_scheme_pins_a_region_to_one_shard(self, base_store):
        """Under the region scheme a geo task touches exactly one shard."""
        explorer = GeoExplorer(RatingMiner(base_store, MINING))
        region = explorer.summary()[0].region
        pool = ShardedMiningPool(workers=0, shards=5, scheme="region")
        try:
            pool.publish(base_store)
            before = pool.tasks_submitted
            sharded = geo_payload(base_store, None, region, pool=pool)
            assert pool.tasks_submitted - before == 1
        finally:
            pool.shutdown()
        assert sharded == geo_payload(base_store, None, region)

    def test_time_interval_selections_match(self, base_store, tiny_dataset):
        """The interval plumbing reaches the shard slices unchanged."""
        item = next(tiny_dataset.items())
        gslice = base_store.slice_for_items([item.item_id])
        interval = (
            int(gslice.timestamps.min()),
            int(gslice.timestamps.max()),
        )
        pool = ShardedMiningPool(workers=0, shards=3)
        try:
            pool.publish(base_store)
            miner = RatingMiner(base_store, MINING)
            sharded = strip_volatile(
                miner.explain_items(
                    [item.item_id], time_interval=interval, pool=pool
                ).to_dict()
            )
            serial = strip_volatile(
                miner.explain_items([item.item_id], time_interval=interval).to_dict()
            )
        finally:
            pool.shutdown()
        assert sharded == serial
