"""Property-based tests on the mining core (descriptors, measures, selections)."""

from typing import Dict, List

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.groups import Group, GroupDescriptor
from repro.core.measures import (
    coverage,
    covered_positions,
    diversity_objective,
    normalized_within_group_error,
    pairwise_disagreement,
    similarity_objective,
    within_group_error,
)
from repro.data.model import Item, Rating, RatingDataset, Reviewer
from repro.data.storage import RatingSlice, RatingStore

# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------

ATTRIBUTES = ("gender", "age_group", "occupation", "state")
VALUES: Dict[str, List[str]] = {
    "gender": ["M", "F"],
    "age_group": ["Under 18", "18-24", "25-34"],
    "occupation": ["programmer", "artist", "lawyer"],
    "state": ["CA", "NY", "TX"],
}

pair_strategy = st.sampled_from(ATTRIBUTES).flatmap(
    lambda attribute: st.tuples(st.just(attribute), st.sampled_from(VALUES[attribute]))
)

descriptor_strategy = st.lists(pair_strategy, min_size=0, max_size=4).map(
    lambda pairs: GroupDescriptor(tuple({a: (a, v) for a, v in pairs}.values()))
)


@st.composite
def rating_slices(draw):
    """A random small rating slice with categorical reviewer attributes."""
    size = draw(st.integers(min_value=1, max_value=40))
    reviewers = []
    ratings = []
    for index in range(size):
        attributes = {name: draw(st.sampled_from(VALUES[name])) for name in ATTRIBUTES}
        reviewers.append(
            Reviewer(
                reviewer_id=index + 1,
                gender=attributes["gender"],
                age={"Under 18": 1, "18-24": 18, "25-34": 25}[attributes["age_group"]],
                occupation=attributes["occupation"],
                zipcode="00000",
                state=attributes["state"],
                city=attributes["state"],
            )
        )
        score = draw(st.integers(min_value=1, max_value=5))
        ratings.append(Rating(1, index + 1, float(score), timestamp=index))
    dataset = RatingDataset(reviewers, [Item(1, "Movie")], ratings, validate=False)
    return RatingStore(dataset).slice_for_items([1])


def _groups_from_slice(rating_slice: RatingSlice, max_groups: int = 3) -> List[Group]:
    """Single-attribute groups materialised from a slice (one per value)."""
    groups = []
    for attribute in ATTRIBUTES:
        for value in rating_slice.distinct_values(attribute):
            descriptor = GroupDescriptor.from_dict({attribute: value})
            groups.append(
                Group.from_mask(descriptor, rating_slice, rating_slice.mask_for(attribute, value))
            )
    return groups[: max(1, min(len(groups), max_groups * 3))]


# --------------------------------------------------------------------------
# Descriptor properties
# --------------------------------------------------------------------------


class TestDescriptorProperties:
    @given(descriptor_strategy)
    @settings(max_examples=60, deadline=None)
    def test_pairs_always_sorted_and_unique(self, descriptor):
        attributes = descriptor.attributes()
        assert list(attributes) == sorted(attributes)
        assert len(set(attributes)) == len(attributes)

    @given(descriptor_strategy)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_through_dict(self, descriptor):
        assert GroupDescriptor.from_dict(descriptor.as_dict()) == descriptor

    @given(descriptor_strategy)
    @settings(max_examples=60, deadline=None)
    def test_descriptor_generalizes_itself_and_its_specialisations(self, descriptor):
        assert descriptor.generalizes(descriptor)
        free_attributes = [a for a in ATTRIBUTES if not descriptor.has_attribute(a)]
        if free_attributes:
            extended = descriptor.with_pair(free_attributes[0], VALUES[free_attributes[0]][0])
            assert descriptor.generalizes(extended)
            assert extended.specializes(descriptor)
            assert not descriptor.specializes(extended)

    @given(descriptor_strategy)
    @settings(max_examples=60, deadline=None)
    def test_dropping_an_attribute_shortens_the_descriptor(self, descriptor):
        for attribute in descriptor.attributes():
            reduced = descriptor.without_attribute(attribute)
            assert len(reduced) == len(descriptor) - 1
            assert not reduced.has_attribute(attribute)

    @given(descriptor_strategy)
    @settings(max_examples=60, deadline=None)
    def test_matching_is_consistent_with_the_pairs(self, descriptor):
        exact = descriptor.as_dict()
        complete = {name: VALUES[name][0] for name in ATTRIBUTES}
        complete.update(exact)
        assert descriptor.matches(complete)
        if exact:
            broken = dict(complete)
            attribute = next(iter(exact))
            candidates = [v for v in VALUES[attribute] if v != exact[attribute]]
            broken[attribute] = candidates[0]
            assert not descriptor.matches(broken)


# --------------------------------------------------------------------------
# Measure properties
# --------------------------------------------------------------------------


class TestMeasureProperties:
    @given(rating_slices(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_coverage_is_a_fraction_and_monotone(self, rating_slice, how_many):
        groups = _groups_from_slice(rating_slice)[:how_many]
        total = len(rating_slice)
        value = coverage(groups, total)
        assert 0.0 <= value <= 1.0
        if len(groups) > 1:
            assert coverage(groups[:-1], total) <= value + 1e-12

    @given(rating_slices())
    @settings(max_examples=40, deadline=None)
    def test_covered_positions_is_a_set_of_valid_indices(self, rating_slice):
        groups = _groups_from_slice(rating_slice)
        positions = covered_positions(groups)
        assert len(np.unique(positions)) == len(positions)
        if len(positions):
            assert positions.min() >= 0
            assert positions.max() < len(rating_slice)

    @given(rating_slices())
    @settings(max_examples=40, deadline=None)
    def test_gender_partition_covers_everything(self, rating_slice):
        groups = [
            Group.from_mask(
                GroupDescriptor.from_dict({"gender": value}),
                rating_slice,
                rating_slice.mask_for("gender", value),
            )
            for value in rating_slice.distinct_values("gender")
        ]
        assert coverage(groups, len(rating_slice)) == pytest.approx(1.0)

    @given(rating_slices())
    @settings(max_examples=40, deadline=None)
    def test_errors_and_disagreement_are_non_negative(self, rating_slice):
        groups = _groups_from_slice(rating_slice)
        assert within_group_error(groups) >= 0.0
        assert normalized_within_group_error(groups) >= 0.0
        assert pairwise_disagreement(groups) >= 0.0

    @given(rating_slices())
    @settings(max_examples=40, deadline=None)
    def test_similarity_objective_is_bounded_by_the_rating_scale(self, rating_slice):
        groups = _groups_from_slice(rating_slice)
        value = similarity_objective(groups)
        assert value <= 0.0
        assert value >= -16.0  # (5-1)^2 is the largest per-tuple squared error

    @given(rating_slices(), st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=40, deadline=None)
    def test_diversity_penalty_is_monotone(self, rating_slice, penalty):
        groups = _groups_from_slice(rating_slice)
        assert diversity_objective(groups, penalty=penalty) <= (
            diversity_objective(groups, penalty=0.0) + 1e-12
        )

    @given(rating_slices())
    @settings(max_examples=40, deadline=None)
    def test_group_statistics_match_numpy(self, rating_slice):
        for group in _groups_from_slice(rating_slice):
            scores = rating_slice.scores[group.positions]
            if group.size:
                assert group.mean == pytest.approx(float(scores.mean()))
                assert group.error == pytest.approx(float(((scores - scores.mean()) ** 2).sum()))
