"""Property-based tests on the solver layer.

Whatever the rating data looks like, every solver must return selections that
are drawn from the candidate set, contain no duplicates, respect the group
budget, and report a ``feasible`` flag that agrees with the constraint set.
These invariants are checked on randomly generated rating slices.
"""

from typing import Dict, List

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MiningConfig
from repro.core.annealing import SimulatedAnnealingSolver
from repro.core.baselines import GreedyCoverageSolver, RandomSolver, TopKBySizeSolver
from repro.core.cube import enumerate_candidates
from repro.core.problems import DiversityProblem, SimilarityProblem
from repro.core.rhe import RandomizedHillExploration
from repro.data.model import Item, Rating, RatingDataset, Reviewer
from repro.data.storage import RatingStore

ATTRIBUTES = ("gender", "age_group", "state")
VALUES: Dict[str, List[str]] = {
    "gender": ["M", "F"],
    "age_group": ["Under 18", "25-34", "45-49"],
    "state": ["CA", "NY", "TX", "IL"],
}

CONFIG = MiningConfig(
    max_groups=3,
    min_coverage=0.3,
    min_group_support=2,
    max_description_length=2,
    require_geo_anchor=False,
    grouping_attributes=ATTRIBUTES,
    rhe_restarts=2,
    rhe_max_iterations=60,
)

SOLVERS = [
    RandomizedHillExploration(restarts=2, max_iterations=60, seed=13),
    SimulatedAnnealingSolver(steps=80, restarts=1, seed=13),
    GreedyCoverageSolver(),
    TopKBySizeSolver(),
    RandomSolver(seed=13, attempts=4),
]


@st.composite
def rating_slices(draw):
    size = draw(st.integers(min_value=8, max_value=40))
    reviewers, ratings = [], []
    for index in range(size):
        values = {name: draw(st.sampled_from(VALUES[name])) for name in ATTRIBUTES}
        age = {"Under 18": 1, "25-34": 25, "45-49": 45}[values["age_group"]]
        reviewers.append(
            Reviewer(
                reviewer_id=index + 1,
                gender=values["gender"],
                age=age,
                occupation="other",
                zipcode="00000",
                state=values["state"],
                city=values["state"],
            )
        )
        ratings.append(Rating(1, index + 1, float(draw(st.integers(1, 5)))))
    dataset = RatingDataset(reviewers, [Item(1, "Movie")], ratings, validate=False)
    return RatingStore(dataset, grouping_attributes=ATTRIBUTES).slice_for_items([1])


class TestSolverInvariants:
    @given(rating_slices(), st.sampled_from(["similarity", "diversity"]))
    @settings(max_examples=20, deadline=None)
    def test_every_solver_returns_a_valid_selection(self, rating_slice, task):
        candidates = enumerate_candidates(rating_slice, CONFIG)
        if not candidates:
            return
        problem_class = SimilarityProblem if task == "similarity" else DiversityProblem
        problem = problem_class(rating_slice, candidates, CONFIG)
        candidate_descriptors = {c.descriptor for c in candidates}
        for solver in SOLVERS:
            result = solver.solve(problem)
            descriptors = [g.descriptor for g in result.groups]
            assert 1 <= len(descriptors) <= CONFIG.max_groups
            assert len(descriptors) == len(set(descriptors))
            assert all(d in candidate_descriptors for d in descriptors)
            assert result.feasible == problem.is_feasible(result.groups)
            assert result.objective == pytest.approx(problem.objective(result.groups))

    @given(rating_slices())
    @settings(max_examples=15, deadline=None)
    def test_rhe_never_loses_to_its_own_first_start(self, rating_slice):
        """RHE's result is at least as good as its own first random start.

        This holds by construction whenever the first start needs no coverage
        repair: the hill climb is first-improvement (monotone in the
        penalised objective) and the solver keeps the best restart.  The
        start is reconstructed from the same seed — RHE's first ``rng.choice``
        call precedes any other stream consumption.  (Comparing against
        ``RandomSolver`` with the same seed, as an earlier version did, is
        unsound: RHE consumes extra randomness for neighbourhood sampling, so
        later draws diverge and the baseline sees selections RHE never saw.)
        """
        import numpy as np

        from repro.core.measures import coverage

        candidates = enumerate_candidates(rating_slice, CONFIG)
        if not candidates:
            return
        problem = SimilarityProblem(rating_slice, candidates, CONFIG)
        rng = np.random.default_rng(29)
        k = min(CONFIG.max_groups, len(candidates))
        first_start = [
            candidates[int(i)]
            for i in rng.choice(len(candidates), size=k, replace=False)
        ]
        if coverage(first_start, problem.total_ratings) < CONFIG.min_coverage:
            return  # repair may legitimately reshape (and worsen) the start
        rhe = RandomizedHillExploration(restarts=2, max_iterations=60, seed=29).solve(
            problem
        )
        assert problem.penalized_objective(rhe.groups) >= (
            problem.penalized_objective(first_start) - 1e-9
        )
