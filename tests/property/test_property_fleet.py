"""Differential battery: fleet scatter-gather over TCP ≡ serial mining.

The same randomized ingest/compact schedules as the sharding battery, mined
once serially and once through a :class:`~repro.server.fleet.FleetMiningPool`
— the multi-host backend that ships packed shard segments to TCP workers,
routes by consistent hashing and merges partial cubes at the coordinator.
Every payload must be **bit-identical** (descriptors, positions, float-==
means) at every published epoch.

Three fleet shapes are cycled across the 50 seeds:

* the ``workers=1`` inline degenerate (no sockets, the partitioned stores
  mined on the calling thread) — most seeds, keeping the battery fast;
* spawned localhost workers with ``R=1`` (every shard lives on exactly one
  worker; any routing error is a wrong answer, not a masked retry);
* spawned localhost workers with ``R=2`` plus **membership churn**: workers
  join mid-epoch, get recycled (killed + respawned, reconnect and re-sync
  segments lazily) and leave again between probes — equivalence must hold
  across every ring change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import MiningConfig
from repro.core.miner import RatingMiner
from repro.data.ingest import LiveStore
from repro.data.model import Rating, Reviewer
from repro.data.storage import RatingStore
from repro.geo.explorer import GeoExplorer
from repro.server.fleet import FleetMiningPool

#: Randomized schedules the battery replays (acceptance: at least 50).
NUM_SCHEDULES = 50

#: Shard counts cycled across seeds (1 = degenerate single-shard mode).
SHARD_COUNTS = [1, 2, 3, 7]

#: Every 5th seed drives real spawned workers; the rest run inline.  The
#: spawned seeds alternate the replica factor between 1 and 2.
SPAWN_EVERY = 5

#: Zip codes spread over several states, all resolvable, none in the tiny
#: dataset — fresh reviewers grow the zipcode/city vocabularies mid-schedule.
FRESH_ZIPCODES = [
    "99501", "96801", "82001", "59001", "03031", "05001", "58001", "57001",
    "83201", "97035", "33101", "60601", "75201", "10118", "02108", "94105",
]

MINING = MiningConfig(
    min_group_support=3,
    min_coverage=0.2,
    rhe_restarts=2,
    rhe_max_iterations=60,
)


@pytest.fixture(scope="module")
def base_store(tiny_dataset):
    """One frozen epoch-0 store shared (read-only) by every schedule."""
    return RatingStore(tiny_dataset)


def build_schedule(rng, dataset):
    """One randomized skewed append/compact schedule (see the sharding battery)."""
    item_ids = [item.item_id for item in dataset.items()]
    reviewer_ids = [reviewer.reviewer_id for reviewer in dataset.reviewers()]
    hot = [int(r) for r in rng.choice(reviewer_ids, size=3, replace=False)]
    operations = []
    touched = set()
    next_reviewer_id = 910_000
    for _ in range(int(rng.integers(1, 3))):
        for _ in range(int(rng.integers(6, 20))):
            roll = rng.random()
            if roll < 0.12:
                zipcode = FRESH_ZIPCODES[int(rng.integers(0, len(FRESH_ZIPCODES)))]
                reviewer = Reviewer(
                    reviewer_id=next_reviewer_id,
                    gender="F" if rng.random() < 0.5 else "M",
                    age=int(rng.choice([1, 18, 25, 35, 45, 50, 56])),
                    occupation="programmer",
                    zipcode=zipcode,
                )
                next_reviewer_id += 1
                reviewer_id = reviewer.reviewer_id
            else:
                reviewer = None
                pool = hot if roll < 0.7 else reviewer_ids
                reviewer_id = int(rng.choice(pool))
            rating = Rating(
                item_id=int(rng.choice(item_ids)),
                reviewer_id=reviewer_id,
                score=float(rng.integers(1, 6)),
                timestamp=int(rng.integers(0, 2_000_000_000)),
            )
            operations.append(("append", rating, reviewer))
            touched.add(rating.item_id)
        operations.append(("compact",))
    return operations, sorted(touched)


def strip_volatile(payload):
    """Drop wall-clock fields recursively; everything else compares exactly."""
    if isinstance(payload, dict):
        return {
            key: strip_volatile(value)
            for key, value in payload.items()
            if key != "elapsed_seconds"
        }
    if isinstance(payload, list):
        return [strip_volatile(value) for value in payload]
    return payload


def explain_payload(store: RatingStore, item_ids, pool=None) -> dict:
    result = RatingMiner(store, MINING).explain_items(item_ids, pool=pool)
    return strip_volatile(result.to_dict())


def geo_payload(store: RatingStore, item_ids, region, pool=None) -> dict:
    explorer = GeoExplorer(RatingMiner(store, MINING))
    result = explorer.explain_region(item_ids, region, pool=pool)
    return strip_volatile(result.to_dict())


def churn_membership(pool: FleetMiningPool, rng, joined: list) -> None:
    """One random membership move: join, recycle or retire a worker."""
    roll = rng.random()
    if roll < 0.4:
        joined.append(pool.add_worker())
        return
    if roll < 0.7 and joined:
        pool.remove_worker(joined.pop(int(rng.integers(0, len(joined)))))
        return
    live = [name for name in pool.live_workers() if name not in joined]
    if live:
        pool.recycle_worker(live[int(rng.integers(0, len(live)))])


class TestFleetEqualsSerial:
    @pytest.mark.parametrize("seed", range(NUM_SCHEDULES))
    def test_fleet_mining_matches_serial(self, base_store, tiny_dataset, seed):
        rng = np.random.default_rng(seed)
        num_shards = SHARD_COUNTS[seed % len(SHARD_COUNTS)]
        scheme = "region" if seed % 2 else "reviewer"
        spawned = seed % SPAWN_EVERY == 0
        replicas = 2 if (seed // SPAWN_EVERY) % 2 else 1
        operations, probes = build_schedule(rng, tiny_dataset)
        live = LiveStore(base_store)
        pool = FleetMiningPool(
            workers=2 if spawned else 1,
            shards=num_shards,
            scheme=scheme,
            replicas=replicas,
            heartbeat_s=60.0,  # membership is driven explicitly below
        )
        joined: list = []
        try:
            for operation in operations:
                if operation[0] == "append":
                    live.ingest(operation[1], operation[2])
                    continue
                live.compact()
                snapshot = live.snapshot
                pool.publish(snapshot)
                assert pool.current_epoch == snapshot.epoch
                if spawned and rng.random() < 0.6:
                    # The ring changes *between* publish and probe: the next
                    # task may route to a worker that has never seen this
                    # epoch, forcing the lazy segment re-sync.
                    churn_membership(pool, rng, joined)
                probe = probes[int(rng.integers(0, len(probes)))]
                assert explain_payload(snapshot, [probe], pool=pool) == (
                    explain_payload(snapshot, [probe])
                ), f"SM/DM drift at epoch {snapshot.epoch}"
            snapshot = live.snapshot
            assert snapshot.epoch > 0, "every schedule must compact at least once"
            explorer = GeoExplorer(RatingMiner(snapshot, MINING))
            region = explorer.summary()[0].region
            assert geo_payload(snapshot, None, region, pool=pool) == (
                geo_payload(snapshot, None, region)
            ), f"geo drift for {region!r} at epoch {snapshot.epoch}"
            assert pool.segment_names() == []  # the fleet never touches shm
        finally:
            pool.shutdown()

    def test_replica_sets_are_distinct_workers(self, base_store):
        """With R=2 each shard's replica list names two different workers."""
        pool = FleetMiningPool(workers=2, shards=3, replicas=2, heartbeat_s=60.0)
        try:
            pool.publish(base_store)
            with pool._lock:
                for shard_id in range(pool.shards):
                    order = pool._ring.lookup(f"shard-{shard_id}", 2)
                    assert len(order) == 2
                    assert len(set(order)) == 2
        finally:
            pool.shutdown()
