"""Equivalence properties of the integer-coded mining kernel.

The optimized pipeline has three layers of machinery that must be *exactly*
(bit-for-bit) equivalent to the naive reference implementations kept in-tree:

* cube enumeration over integer codes + bincount segments
  (``CandidateEnumerator(use_kernel=True)``) vs the boolean-mask DFS
  (``use_kernel=False``),
* packed-bitset coverage (OR + popcount) vs ``np.unique`` over position
  arrays,
* the delta-evaluated ``SelectionState`` (compiled and generic stats paths)
  vs ``MiningProblem.penalized_objective`` on rebuilt group lists, and
* whole RHE solves with ``use_fast_eval=True`` vs ``use_fast_eval=False``
  for a fixed seed.

Every comparison below uses ``==`` on floats deliberately: the fast paths are
specified to replay the naive arithmetic exactly, not approximately.
"""

from typing import Dict, List

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MiningConfig, PipelineConfig, ServerConfig
from repro.core.bitset import pack_positions, popcount, to_int_mask, union_rows
from repro.core.cube import CandidateEnumerator
from repro.core.measures import covered_positions
from repro.core.miner import RatingMiner
from repro.core.problems import DiversityProblem, SimilarityProblem
from repro.core.rhe import RandomizedHillExploration, SelectionState
from repro.data.model import Item, Rating, RatingDataset, Reviewer
from repro.data.storage import RatingStore
from repro.server.pool import MiningWorkerPool

ATTRIBUTES = ("gender", "age_group", "state")
VALUES: Dict[str, List[str]] = {
    "gender": ["M", "F"],
    "age_group": ["Under 18", "25-34"],
    "state": ["CA", "NY", "TX"],
}


@st.composite
def rating_slices(draw, min_size=3, max_size=40):
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    reviewers, ratings = [], []
    for index in range(size):
        values = {name: draw(st.sampled_from(VALUES[name])) for name in ATTRIBUTES}
        reviewers.append(
            Reviewer(
                reviewer_id=index + 1,
                gender=values["gender"],
                age=1 if values["age_group"] == "Under 18" else 25,
                occupation="other",
                zipcode="00000",
                state=values["state"],
                city=values["state"],
            )
        )
        score = float(draw(st.integers(1, 5)))
        ratings.append(Rating(1, index + 1, score, timestamp=1_000 + index))
    dataset = RatingDataset(reviewers, [Item(1, "Movie")], ratings, validate=False)
    return RatingStore(dataset, grouping_attributes=ATTRIBUTES).slice_for_items([1])


@st.composite
def mining_configs(draw):
    return MiningConfig(
        max_groups=draw(st.integers(2, 4)),
        min_coverage=draw(st.sampled_from([0.0, 0.2, 0.5])),
        max_description_length=draw(st.integers(1, 3)),
        min_group_support=draw(st.integers(1, 4)),
        require_geo_anchor=draw(st.booleans()),
        grouping_attributes=ATTRIBUTES,
        rhe_restarts=2,
        rhe_max_iterations=40,
    )


def _enumerate(rating_slice, config, use_kernel):
    enumerator = CandidateEnumerator.from_config(rating_slice, config)
    enumerator.use_kernel = use_kernel
    groups, stats = enumerator.enumerate_with_stats()
    return stats, groups


class TestEnumerationParity:
    @given(rating_slices(), mining_configs())
    @settings(max_examples=40, deadline=None)
    def test_kernel_matches_naive_bit_for_bit(self, rating_slice, config):
        kernel_stats, kernel_groups = _enumerate(rating_slice, config, True)
        naive_stats, naive_groups = _enumerate(rating_slice, config, False)
        assert [g.descriptor for g in kernel_groups] == [
            g.descriptor for g in naive_groups
        ]
        for fast, slow in zip(kernel_groups, naive_groups):
            assert np.array_equal(fast.positions, slow.positions)
            assert fast.size == slow.size
            assert fast.mean == slow.mean
            assert fast.error == slow.error
        assert kernel_stats == naive_stats

    @given(rating_slices(), mining_configs())
    @settings(max_examples=25, deadline=None)
    def test_stats_candidates_is_the_emitted_count(self, rating_slice, config):
        for use_kernel in (True, False):
            stats, groups = _enumerate(rating_slice, config, use_kernel)
            assert stats.candidates == len(groups)
            assert stats.explored >= stats.pruned_by_support

    def test_stats_are_per_run_not_shared_state(self, tiny_store):
        # Two runs on one shared enumerator must produce independent stats
        # objects (ISSUE 9): nothing accumulates on the instance between runs.
        enumerator = CandidateEnumerator(tiny_store.slice_all(), min_support=3)
        _, first = enumerator.enumerate_with_stats()
        _, second = enumerator.enumerate_with_stats()
        assert first == second
        assert first.explored > 0
        assert not hasattr(enumerator, "_explored")

    def test_concurrent_runs_never_interleave_counters(self, tiny_store):
        import threading

        enumerator = CandidateEnumerator(tiny_store.slice_all(), min_support=3)
        _, expected = enumerator.enumerate_with_stats()
        results = []

        def run():
            results.append(enumerator.enumerate_with_stats()[1])

        threads = [threading.Thread(target=run) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(stats == expected for stats in results)


class TestCoverageParity:
    @given(rating_slices(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_bitset_union_counts_match_position_union(self, rating_slice, data):
        config = MiningConfig(
            min_coverage=0.0,
            min_group_support=1,
            require_geo_anchor=False,
            grouping_attributes=ATTRIBUTES,
        )
        _, groups = _enumerate(rating_slice, config, True)
        if not groups:
            return
        total = len(rating_slice)
        indices = data.draw(
            st.lists(
                st.integers(0, len(groups) - 1), min_size=1, max_size=5, unique=True
            )
        )
        selection = [groups[i] for i in indices]
        expected = covered_positions(selection).shape[0]
        matrix = np.stack([g.packed_bits(total) for g in selection])
        assert popcount(union_rows(matrix, range(len(selection)))) == expected
        union_int = 0
        for group in selection:
            union_int |= to_int_mask(group.packed_bits(total))
        assert union_int.bit_count() == expected
        assert popcount(pack_positions(selection[0].positions, total)) == selection[0].size


class TestObjectiveParity:
    @given(rating_slices(), mining_configs(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_selection_state_equals_naive_penalized_objective(
        self, rating_slice, config, data
    ):
        _, candidates = _enumerate(rating_slice, config, True)
        if not candidates:
            return
        for problem_class in (SimilarityProblem, DiversityProblem):
            problem = problem_class(rating_slice, candidates, config)
            state = SelectionState.for_problem(problem)
            assert state is not None
            assert state._compiled is not None
            indices = data.draw(
                st.lists(
                    st.integers(0, len(candidates) - 1),
                    min_size=1,
                    max_size=min(4, len(candidates)),
                    unique=True,
                )
            )
            expected = problem.penalized_objective([candidates[i] for i in indices])
            assert state.evaluate(indices) == expected
            # The generic SelectionStats path must agree as well.
            state._compiled = None
            assert state.evaluate(indices) == expected
            # And the incremental trial must match a from-scratch rebuild.
            state = SelectionState.for_problem(problem)
            state.reset(indices)
            candidate = data.draw(st.integers(0, len(candidates) - 1))
            position = data.draw(st.integers(0, len(indices) - 1))
            swapped = list(indices)
            swapped[position] = candidate
            assert state.trial(position, candidate) == problem.penalized_objective(
                [candidates[i] for i in swapped]
            )


class TestSolverEquivalence:
    @given(rating_slices(min_size=6), mining_configs(), st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_fixed_seed_rhe_selections_identical_fast_vs_naive(
        self, rating_slice, config, seed
    ):
        _, candidates = _enumerate(rating_slice, config, True)
        if not candidates:
            return
        for problem_class in (SimilarityProblem, DiversityProblem):
            problem = problem_class(rating_slice, candidates, config)
            fast = RandomizedHillExploration(
                restarts=2, max_iterations=40, seed=seed, use_fast_eval=True
            ).solve(problem)
            naive = RandomizedHillExploration(
                restarts=2, max_iterations=40, seed=seed, use_fast_eval=False
            ).solve(problem)
            assert [g.descriptor for g in fast.groups] == [
                g.descriptor for g in naive.groups
            ]
            assert fast.objective == naive.objective
            assert fast.trace == naive.trace
            assert fast.iterations == naive.iterations
            assert fast.feasible == naive.feasible

    @given(rating_slices(min_size=6), st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_iteration_budget_is_exact(self, rating_slice, seed):
        config = MiningConfig(
            max_groups=3,
            min_coverage=0.3,
            min_group_support=1,
            require_geo_anchor=False,
            grouping_attributes=ATTRIBUTES,
        )
        _, candidates = _enumerate(rating_slice, config, True)
        if not candidates:
            return
        problem = SimilarityProblem(rating_slice, candidates, config)
        for budget in (1, 3, 10):
            solver = RandomizedHillExploration(
                restarts=2, max_iterations=budget, seed=seed
            )
            result = solver.solve(problem)
            assert 0 < result.iterations <= solver.restarts * budget


def _explanation_fingerprint(explanation):
    """Every mined field that must survive parallelisation bit-for-bit."""
    return (
        tuple(
            (g.label, tuple(sorted(g.pairs.items())), g.size, g.average_rating, g.coverage)
            for g in explanation.groups
        ),
        explanation.objective,
        explanation.coverage,
        explanation.feasible,
        explanation.solver_iterations,
        explanation.within_error,
        explanation.disagreement,
    )


class TestPoolParallelEquivalence:
    """Pool-parallel mining (workers>1) must be bit-identical to serial.

    Determinism under parallelism is a serving-layer invariant (ISSUE 2):
    every task seeds its own generator from the fixed config seed and results
    are gathered in submission order, so the thread schedule can never leak
    into selections or objectives.
    """

    @pytest.mark.parametrize("seed", [0, 7, 2012])
    def test_pool_parallel_explain_items_matches_serial(self, tiny_dataset, seed):
        config = MiningConfig(
            min_group_support=3, min_coverage=0.2, rhe_restarts=3, seed=seed
        )
        miner = RatingMiner.for_dataset(tiny_dataset, config)
        item_ids = [
            item.item_id for item in tiny_dataset.items_by_title("Toy Story")
        ]
        serial = miner.explain_items(item_ids)
        with MiningWorkerPool(4) as pool:
            parallel = miner.explain_items(item_ids, pool=pool)
        assert _explanation_fingerprint(parallel.similarity) == _explanation_fingerprint(
            serial.similarity
        )
        assert _explanation_fingerprint(parallel.diversity) == _explanation_fingerprint(
            serial.diversity
        )

    def test_maprat_with_worker_pool_matches_inline_system(self, tiny_dataset, mining_config):
        from repro.server.api import MapRat

        def system_with(workers):
            return MapRat.for_dataset(
                tiny_dataset,
                PipelineConfig(
                    mining=mining_config, server=ServerConfig(mining_workers=workers)
                ),
            )

        inline = system_with(0).explain('title:"Toy Story"').to_dict()
        pooled = system_with(4).explain('title:"Toy Story"').to_dict()
        for payload in (inline, pooled):  # wall-clock is the one legitimate delta
            payload.pop("elapsed_seconds", None)
            payload["similarity"].pop("elapsed_seconds", None)
            payload["diversity"].pop("elapsed_seconds", None)
        assert pooled == inline

    @given(rating_slices(min_size=6), mining_configs(), st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_concurrent_sm_dm_solves_match_serial_on_random_slices(
        self, rating_slice, config, seed
    ):
        _, candidates = _enumerate(rating_slice, config, True)
        if not candidates:
            return
        similarity = SimilarityProblem(rating_slice, candidates, config)
        diversity = DiversityProblem(rating_slice, candidates, config)
        solver = RandomizedHillExploration(restarts=2, max_iterations=40, seed=seed)
        serial = [solver.solve(similarity), solver.solve(diversity)]
        with MiningWorkerPool(4) as pool:
            futures = [pool.submit(solver.solve, p) for p in (similarity, diversity)]
            parallel = [future.result() for future in futures]
        for serial_result, parallel_result in zip(serial, parallel):
            assert [g.descriptor for g in serial_result.groups] == [
                g.descriptor for g in parallel_result.groups
            ]
            assert parallel_result.objective == serial_result.objective
            assert parallel_result.trace == serial_result.trace
            assert parallel_result.iterations == serial_result.iterations
            assert parallel_result.feasible == serial_result.feasible


class TestProcessBackendEquivalence:
    """The process-backend spec path must match serial mining bit-for-bit.

    Mirrors :class:`TestPoolParallelEquivalence` for ISSUE 5's backend: the
    same selections mined through :class:`ProcessMiningPool` spec tuples
    (inline mode — the identical executor the spawned workers run, without
    per-example process startup) must reproduce the serial explanations
    exactly.  The spawned-worker path is covered by
    ``tests/server/test_procpool.py`` and the golden process CI lane.
    """

    @pytest.mark.parametrize("seed", [0, 7, 2012])
    def test_process_spec_path_matches_serial_explain_items(self, tiny_dataset, seed):
        from repro.server.procpool import ProcessMiningPool

        config = MiningConfig(
            min_group_support=3, min_coverage=0.2, rhe_restarts=3, seed=seed
        )
        miner = RatingMiner.for_dataset(tiny_dataset, config)
        item_ids = [
            item.item_id for item in tiny_dataset.items_by_title("Toy Story")
        ]
        serial = miner.explain_items(item_ids)
        with ProcessMiningPool(workers=1) as pool:
            pool.publish(miner.store)
            processed = miner.explain_items(item_ids, pool=pool)
        assert _explanation_fingerprint(processed.similarity) == _explanation_fingerprint(
            serial.similarity
        )
        assert _explanation_fingerprint(processed.diversity) == _explanation_fingerprint(
            serial.diversity
        )

    @given(st.integers(0, 2**16))
    @settings(max_examples=8, deadline=None)
    def test_process_spec_path_matches_serial_on_shm_attached_stores(
        self, tiny_dataset, seed
    ):
        from repro.data.shm import SharedStoreExport, attach_store, detach_store

        config = MiningConfig(
            min_group_support=3, min_coverage=0.2, rhe_restarts=2, seed=seed
        )
        miner = RatingMiner.for_dataset(tiny_dataset, config)
        item_ids = [
            item.item_id for item in tiny_dataset.items_by_title("Toy Story")
        ]
        serial = miner.explain_items(item_ids)
        export = SharedStoreExport(miner.store)
        attached = attach_store(export.manifest)
        try:
            shadow = RatingMiner(attached, config).explain_items(item_ids)
        finally:
            detach_store(attached)
            export.release()
        assert _explanation_fingerprint(shadow.similarity) == _explanation_fingerprint(
            serial.similarity
        )
        assert _explanation_fingerprint(shadow.diversity) == _explanation_fingerprint(
            serial.diversity
        )


class TestScoreHistogramParity:
    @given(rating_slices())
    @settings(max_examples=25, deadline=None)
    def test_vectorized_histogram_matches_python_loop(self, rating_slice):
        expected = {float(b): 0 for b in (1, 2, 3, 4, 5)}
        for score in rating_slice.scores.tolist():
            key = float(round(score))
            expected[key] = expected.get(key, 0) + 1
        assert rating_slice.score_histogram() == expected
