"""Tests for the stateful exploration session (the §3 interaction flow)."""

import pytest

from repro.config import MiningConfig
from repro.errors import ExplorationError, QueryError
from repro.explore.session import ExplorationSession


@pytest.fixture()
def session(tiny_dataset, tiny_miner, mining_config):
    return ExplorationSession(tiny_dataset, mining_config, miner=tiny_miner)


class TestSearchStep:
    def test_search_remembers_the_matching_items(self, session):
        items = session.search('title:"Toy Story"')
        assert [item.title for item in items] == ["Toy Story"]
        assert session.state.item_ids

    def test_search_with_no_matches_raises(self, session):
        with pytest.raises(QueryError):
            session.search('title:"No Such Movie"')

    def test_search_resets_previous_results(self, session):
        session.search('title:"Toy Story"')
        session.explain()
        session.search('title:"Forrest Gump"')
        assert session.state.result is None


class TestExplainStep:
    def test_explain_requires_a_search(self, session):
        with pytest.raises(ExplorationError):
            session.explain()

    def test_explain_produces_both_interpretations(self, session):
        session.search('title:"Toy Story"')
        result = session.explain()
        assert result.similarity.groups and result.diversity.groups
        assert session.state.rating_slice is not None

    def test_explain_query_combines_both_steps(self, session):
        result = session.explain_query('title:"Toy Story"')
        assert result is session.state.result

    def test_history_records_the_interactions(self, session):
        session.explain_query('title:"Toy Story"')
        history = session.history()
        assert any(entry.startswith("search:") for entry in history)
        assert "explain ratings" in history


class TestGroupSelection:
    def test_select_group_and_statistics(self, session):
        session.explain_query('title:"Toy Story"')
        group = session.select_group(0, task="similarity")
        stats = session.group_statistics()
        assert stats.label == group.label
        assert stats.size == group.size

    def test_out_of_range_group_index(self, session):
        session.explain_query('title:"Toy Story"')
        with pytest.raises(ExplorationError):
            session.select_group(99)

    def test_statistics_without_selection_raises(self, session):
        session.explain_query('title:"Toy Story"')
        with pytest.raises(ExplorationError):
            session.group_statistics()

    def test_compare_selected_groups_includes_the_baseline(self, session):
        session.explain_query('title:"Toy Story"')
        rows = session.compare_selected_groups("similarity")
        assert rows[0].label == "all reviewers"
        assert len(rows) == len(session.current_explanation("similarity").groups) + 1

    def test_current_explanation_requires_a_result(self, session):
        with pytest.raises(ExplorationError):
            session.current_explanation()


class TestDrillAndTrend:
    def test_drill_down_of_the_selected_group(self, session):
        session.explain_query('title:"Toy Story"')
        session.select_group(0, task="similarity")
        aggregates = session.drill_down()
        assert aggregates
        selected_state = session.current_explanation().groups[0].state
        from repro.geo.states import state_by_code

        cities = set(state_by_code(selected_state).cities)
        assert all(agg.location in cities for agg in aggregates)

    def test_group_trend_of_the_selected_group(self, session):
        session.explain_query('title:"Toy Story"')
        session.select_group(0, task="similarity")
        trend = session.group_trend()
        assert trend
        populated = [point for point in trend if point.size > 0]
        assert populated
        assert all(1 <= point.mean <= 5 for point in populated)

    def test_timeline_requires_items(self, session):
        with pytest.raises(ExplorationError):
            session.timeline()

    def test_timeline_returns_one_slice_per_year(self, session):
        session.explain_query('title:"Toy Story"')
        slices = session.timeline(min_ratings=10)
        assert len(slices) >= 2
        assert all(s.year in {2000, 2001, 2002, 2003} for s in slices)


class TestConfigurationOverride:
    def test_explain_with_override_config(self, session):
        session.search('title:"Toy Story"')
        result = session.explain(MiningConfig(max_groups=2, min_group_support=3, min_coverage=0.1))
        assert len(result.similarity.groups) <= 2
