"""Tests for temporal exploration (time slider and group trends)."""

import pytest

from repro.errors import ExplorationError
from repro.explore.timeline import TimelineExplorer


@pytest.fixture(scope="module")
def explorer(tiny_miner):
    return TimelineExplorer(tiny_miner)


@pytest.fixture(scope="module")
def toy_story_ids(tiny_dataset):
    return [item.item_id for item in tiny_dataset.items_by_title("Toy Story")]


@pytest.fixture(scope="module")
def drifting_star_ids(tiny_dataset):
    return [item.item_id for item in tiny_dataset.items_by_title("Drifting Star")]


class TestAvailableYears:
    def test_years_span_the_synthetic_rating_window(self, explorer, toy_story_ids):
        years = explorer.available_years(toy_story_ids)
        assert years == sorted(years)
        assert set(years) <= {2000, 2001, 2002, 2003}
        assert len(years) >= 2


class TestInterpretationsByYear:
    def test_one_slice_per_requested_year(self, explorer, toy_story_ids):
        slices = explorer.interpretations_by_year(
            toy_story_ids, years=[2000, 2001], min_ratings=10
        )
        assert [s.year for s in slices] == [2000, 2001]

    def test_slices_with_enough_ratings_carry_a_result(self, explorer, toy_story_ids):
        slices = explorer.interpretations_by_year(toy_story_ids, min_ratings=10)
        mined = [s for s in slices if s.result is not None]
        assert mined
        for timeline_slice in mined:
            assert timeline_slice.labels("similarity")
            assert timeline_slice.num_ratings >= 10

    def test_min_ratings_gate_skips_sparse_years(self, explorer, toy_story_ids):
        slices = explorer.interpretations_by_year(toy_story_ids, min_ratings=10_000)
        assert all(s.result is None for s in slices)

    def test_slice_serialisation(self, explorer, toy_story_ids):
        slices = explorer.interpretations_by_year(toy_story_ids, min_ratings=10)
        payload = slices[0].to_dict()
        assert payload["year"] == slices[0].year
        assert "num_ratings" in payload

    def test_empty_year_list_raises(self, explorer, tiny_dataset):
        unrated = max(item.item_id for item in tiny_dataset.items()) + 1
        with pytest.raises(ExplorationError):
            explorer.interpretations_by_year([unrated])


class TestGroupTrend:
    def test_overall_trend_covers_every_rated_year(self, explorer, toy_story_ids):
        trend = explorer.overall_trend(toy_story_ids)
        years = explorer.available_years(toy_story_ids)
        assert [p.year for p in trend] == years
        assert all(1 <= p.mean <= 5 for p in trend)
        assert all(p.size > 0 for p in trend)

    def test_group_trend_restricts_to_the_group(self, explorer, toy_story_ids):
        overall = explorer.overall_trend(toy_story_ids)
        male_only = explorer.group_trend(toy_story_ids, {"gender": "M"})
        by_year = {p.year: p for p in overall}
        for point in male_only:
            assert point.size <= by_year[point.year].size

    def test_drifting_star_declines_over_time(self, explorer, drifting_star_ids):
        trend = explorer.overall_trend(drifting_star_ids)
        drift = TimelineExplorer.drift(trend)
        assert drift < -1.0

    def test_drift_of_a_short_series_is_zero(self, explorer, toy_story_ids):
        trend = explorer.overall_trend(toy_story_ids)
        assert TimelineExplorer.drift(trend[:1]) == 0.0

    def test_trend_point_serialisation(self, explorer, toy_story_ids):
        trend = explorer.overall_trend(toy_story_ids)
        payload = trend[0].to_dict()
        assert payload["year"] == trend[0].year
        assert "statistics" in payload
