"""Tests for the state → city drill-down."""

import pytest

from repro.errors import ExplorationError
from repro.explore.drilldown import DrillDown
from repro.geo.hierarchy import LocationLevel
from repro.geo.states import state_by_code


@pytest.fixture(scope="module")
def driller(toy_story_slice):
    return DrillDown(toy_story_slice, min_size=1)


class TestStateDrillDown:
    def test_children_are_cities_of_the_state(self, driller):
        aggregates = driller.drill({"state": "CA"})
        assert aggregates
        cities = set(state_by_code("CA").cities)
        assert all(agg.location in cities for agg in aggregates)
        assert all(agg.level is LocationLevel.CITY for agg in aggregates)

    def test_city_sizes_sum_to_the_state_group_size(self, driller, toy_story_slice):
        from repro.explore.statistics import group_statistics

        state_stats = group_statistics(toy_story_slice, {"state": "CA"})
        aggregates = driller.drill({"state": "CA"})
        assert sum(agg.statistics.size for agg in aggregates) == state_stats.size

    def test_other_pairs_are_kept_during_the_drill(self, driller):
        aggregates = driller.drill({"state": "CA", "gender": "M"})
        for agg in aggregates:
            assert agg.statistics.pairs["gender"] == "M"
            assert agg.statistics.pairs["city"] == agg.location

    def test_results_sorted_by_size_descending(self, driller):
        aggregates = driller.drill({"state": "CA"})
        sizes = [agg.statistics.size for agg in aggregates]
        assert sizes == sorted(sizes, reverse=True)

    def test_min_size_filters_small_cities(self, toy_story_slice):
        strict = DrillDown(toy_story_slice, min_size=1000)
        assert strict.drill({"state": "CA"}) == []

    def test_to_dict(self, driller):
        aggregates = driller.drill({"state": "CA"})
        payload = aggregates[0].to_dict()
        assert payload["level"] == "city"
        assert "statistics" in payload


class TestCountryDrillDown:
    def test_group_without_geo_condition_drills_into_states(self, driller):
        aggregates = driller.drill({"gender": "M"})
        assert aggregates
        assert all(agg.level is LocationLevel.STATE for agg in aggregates)
        assert all(len(agg.location) == 2 for agg in aggregates)


class TestValidationAndRollUp:
    def test_city_level_group_cannot_be_drilled(self, driller):
        with pytest.raises(ExplorationError):
            driller.drill({"state": "CA", "city": "Los Angeles"})

    def test_invalid_min_size(self, toy_story_slice):
        with pytest.raises(ExplorationError):
            DrillDown(toy_story_slice, min_size=0)

    def test_drill_state_merges_the_state_condition(self, driller):
        aggregates = driller.drill_state("CA", {"gender": "M"})
        assert all(agg.statistics.pairs["state"] == "CA" for agg in aggregates)

    def test_roll_up_removes_the_finest_geo_condition(self, driller, toy_story_slice):
        from repro.explore.statistics import group_statistics

        rolled = driller.roll_up({"state": "CA", "city": "Los Angeles"})
        assert rolled.pairs == {"state": "CA"}
        assert rolled.size == group_statistics(toy_story_slice, {"state": "CA"}).size
        national = driller.roll_up({"state": "CA"})
        assert national.size == len(toy_story_slice)

    def test_roll_up_without_geo_condition_raises(self, driller):
        with pytest.raises(ExplorationError):
            driller.roll_up({"gender": "M"})
