"""Tests for the natural-language insight summaries."""

import pytest

from repro.config import MiningConfig
from repro.explore.insights import (
    Insight,
    diversity_insights,
    render_insights,
    similarity_insights,
    summarize,
)


@pytest.fixture(scope="module")
def toy_story_result(tiny_miner):
    return tiny_miner.explain_title("Toy Story")


@pytest.fixture(scope="module")
def eclipse_result(tiny_miner):
    config = MiningConfig(
        min_group_support=3,
        min_coverage=0.2,
        require_geo_anchor=False,
        grouping_attributes=("gender", "age_group", "occupation"),
    )
    return tiny_miner.explain_title("The Twilight Saga: Eclipse", config=config)


class TestSimilarityInsights:
    def test_mentions_the_best_group_by_label(self, toy_story_result):
        insights = similarity_insights(toy_story_result)
        best = max(toy_story_result.similarity.groups, key=lambda g: g.average_rating)
        consensus = [i for i in insights if i.kind == "consensus"]
        assert consensus
        assert best.label in consensus[0].sentence

    def test_coverage_insight_present(self, toy_story_result):
        kinds = {insight.kind for insight in similarity_insights(toy_story_result)}
        assert "coverage" in kinds

    def test_evidence_carries_the_numbers(self, toy_story_result):
        for insight in similarity_insights(toy_story_result):
            assert insight.evidence
            assert insight.to_dict()["sentence"] == insight.sentence


class TestDiversityInsights:
    def test_controversy_gap_matches_the_groups(self, eclipse_result):
        insights = diversity_insights(eclipse_result)
        assert insights
        gap = insights[0].evidence["gap"]
        means = [g.average_rating for g in eclipse_result.diversity.groups]
        assert gap == pytest.approx(max(means) - min(means), abs=1e-3)

    def test_large_gap_adds_the_controversial_warning(self, eclipse_result):
        insights = diversity_insights(eclipse_result)
        means = [g.average_rating for g in eclipse_result.diversity.groups]
        if max(means) - min(means) >= 1.5:
            assert any("controversial" in i.sentence for i in insights)

    def test_single_group_explanation_yields_no_diversity_insight(self, toy_story_result):
        from dataclasses import replace

        stripped = replace(
            toy_story_result, diversity=replace(toy_story_result.diversity, groups=toy_story_result.diversity.groups[:1])
        )
        assert diversity_insights(stripped) == []


class TestSummarize:
    def test_controversy_comes_first(self, eclipse_result):
        insights = summarize(eclipse_result)
        assert insights[0].kind in ("controversy",)

    def test_limit_truncates(self, toy_story_result):
        assert len(summarize(toy_story_result, limit=2)) == 2

    def test_render_as_bullets(self, toy_story_result):
        text = render_insights(summarize(toy_story_result))
        assert text.startswith("- ")
        assert render_insights([]) == "(no insights available)"
