"""Tests for per-group statistics and group comparisons."""

import pytest

from repro.errors import ExplorationError
from repro.explore.statistics import compare_groups, group_statistics, related_groups


class TestGroupStatistics:
    def test_all_reviewers_statistics_match_the_slice(self, toy_story_slice):
        stats = group_statistics(toy_story_slice, {})
        assert stats.size == len(toy_story_slice)
        assert stats.mean == pytest.approx(float(toy_story_slice.scores.mean()), abs=1e-3)
        assert stats.coverage == pytest.approx(1.0)
        assert stats.lift == pytest.approx(0.0, abs=1e-6)
        assert stats.label == "all reviewers"

    def test_histogram_counts_sum_to_the_group_size(self, toy_story_slice):
        stats = group_statistics(toy_story_slice, {"gender": "M"})
        assert sum(stats.histogram.values()) == stats.size
        assert set(stats.histogram) <= {1, 2, 3, 4, 5}

    def test_shares_are_fractions(self, toy_story_slice):
        stats = group_statistics(toy_story_slice, {"gender": "F"})
        assert 0 <= stats.share_positive <= 1
        assert 0 <= stats.share_negative <= 1

    def test_lift_is_relative_to_the_overall_mean(self, toy_story_slice):
        overall = float(toy_story_slice.scores.mean())
        stats = group_statistics(toy_story_slice, {"gender": "M", "state": "CA"})
        assert stats.lift == pytest.approx(stats.mean - overall, abs=1e-3)

    def test_empty_group_yields_zero_statistics(self, toy_story_slice):
        stats = group_statistics(toy_story_slice, {"state": "CA", "gender": "M", "occupation": "farmer"})
        if stats.size == 0:
            assert stats.mean == 0.0
            assert stats.histogram == {}

    def test_unknown_value_gives_an_empty_group(self, toy_story_slice):
        stats = group_statistics(toy_story_slice, {"state": "ZZ"})
        assert stats.size == 0

    def test_empty_slice_rejected(self, tiny_store):
        empty = tiny_store.slice_for_items([999999], allow_empty=True)
        with pytest.raises(ExplorationError):
            group_statistics(empty, {})

    def test_custom_label_and_to_dict(self, toy_story_slice):
        stats = group_statistics(toy_story_slice, {"gender": "M"}, label="men")
        assert stats.label == "men"
        payload = stats.to_dict()
        assert payload["label"] == "men"
        assert isinstance(payload["histogram"], dict)


class TestCompareGroups:
    def test_baseline_row_comes_first(self, toy_story_slice):
        rows = compare_groups(toy_story_slice, [{"gender": "M"}, {"gender": "F"}])
        assert rows[0].label == "all reviewers"
        assert len(rows) == 3

    def test_labels_are_applied(self, toy_story_slice):
        rows = compare_groups(
            toy_story_slice, [{"gender": "M"}], labels=["male reviewers"]
        )
        assert rows[1].label == "male reviewers"

    def test_mismatched_labels_rejected(self, toy_story_slice):
        with pytest.raises(ExplorationError):
            compare_groups(toy_story_slice, [{"gender": "M"}], labels=["a", "b"])

    def test_gender_partition_sizes_sum_to_total(self, toy_story_slice):
        rows = compare_groups(toy_story_slice, [{"gender": "M"}, {"gender": "F"}])
        assert rows[1].size + rows[2].size == rows[0].size


class TestRelatedGroups:
    def test_dropping_one_pair_at_a_time(self):
        related = related_groups({"gender": "M", "state": "CA"})
        assert {"gender": "M"} in related
        assert {"state": "CA"} in related
        assert len(related) == 2

    def test_single_pair_group_has_no_related_groups(self):
        assert related_groups({"gender": "M"}) == []
