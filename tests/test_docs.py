"""Documentation health: markdown links resolve, public API is docstringed.

Two cheap guards that keep the operator/developer docs from rotting:

* every relative link in the markdown guides points at a file (or directory)
  that exists in the repository — renames and deletions fail here instead of
  producing a dead link;
* every public module, class, function and method in the documented
  packages (``repro.server``, ``repro.data``, ``repro.geo``) carries a
  docstring — the same surface CI lints with ruff's pydocstyle ``D1`` rules,
  enforced here so the failure reproduces locally without ruff installed.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The markdown files whose links must stay alive.
DOCUMENTS = sorted(
    [
        *REPO_ROOT.glob("*.md"),
        *(REPO_ROOT / "docs").glob("*.md"),
    ]
)

#: Packages whose public surface the docstring rule covers (the ruff ``D``
#: lane in CI lints the same directories).
DOCSTRINGED_PACKAGES = ("server", "data", "geo")

_LINK_PATTERN = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def _relative_links(text: str):
    for match in _LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


def test_document_list_is_nonempty():
    names = {path.name for path in DOCUMENTS}
    assert {"README.md", "OPERATIONS.md", "BENCHMARKS.md", "ARCHITECTURE.md"} <= names


@pytest.mark.parametrize("document", DOCUMENTS, ids=[d.name for d in DOCUMENTS])
def test_relative_links_resolve(document):
    broken = [
        target
        for target in _relative_links(document.read_text(encoding="utf-8"))
        if target and not (document.parent / target).exists()
    ]
    assert not broken, f"{document.name} has dead link(s): {broken}"


def _public_defs_missing_docstrings(tree: ast.Module, module_name: str):
    """Yield ``module:line name`` for every undocumented public definition.

    Mirrors ruff's D100–D103 presence rules: modules, public classes, public
    functions and public methods need docstrings; names with a leading
    underscore (including dunders) and nested function bodies are exempt.
    """
    if ast.get_docstring(tree) is None:
        yield f"{module_name}:1 <module>"

    def walk(nodes, prefix: str, top_level: bool):
        for node in nodes:
            if isinstance(node, ast.ClassDef):
                if not node.name.startswith("_"):
                    if ast.get_docstring(node) is None:
                        yield f"{module_name}:{node.lineno} class {prefix}{node.name}"
                    yield from walk(
                        node.body, f"{prefix}{node.name}.", top_level=False
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                if ast.get_docstring(node) is None:
                    yield f"{module_name}:{node.lineno} def {prefix}{node.name}"
                # nested defs are exempt, matching pydocstyle

    yield from walk(tree.body, "", top_level=True)


@pytest.mark.parametrize("package", DOCSTRINGED_PACKAGES)
def test_public_surface_is_docstringed(package):
    missing = []
    for path in sorted((REPO_ROOT / "src" / "repro" / package).rglob("*.py")):
        module_name = str(path.relative_to(REPO_ROOT))
        tree = ast.parse(path.read_text(encoding="utf-8"))
        missing.extend(_public_defs_missing_docstrings(tree, module_name))
    assert not missing, (
        "public definitions without docstrings (CI enforces the same via "
        "ruff --select D1):\n  " + "\n  ".join(missing)
    )
