"""Smoke test: every example script runs end-to-end at the tiny scale.

The examples are the project's executable documentation (the README's
quickstart points at them), so each must keep working as the library evolves.
Every script honours ``MAPRAT_SCALE`` (dataset preset override) and
``web_demo.py`` additionally honours ``MAPRAT_SMOKE`` (serve on an ephemeral
port, answer one request per surface, stop), which keeps the whole sweep
inside the tier-1 budget.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

#: Every example script with the arguments its smoke run needs.  Scripts that
#: write artefacts receive a tmp output directory as their one argument.
EXAMPLES = [
    ("quickstart.py", False),
    ("explain_movie.py", True),
    ("controversial_movie.py", False),
    ("drilldown_exploration.py", True),
    ("temporal_exploration.py", True),
    ("movielens_import.py", False),
    ("live_ingest.py", False),
    ("process_serving.py", False),
    ("web_demo.py", False),
]


def test_every_example_is_covered():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {name for name, _ in EXAMPLES} == on_disk


@pytest.mark.parametrize(
    "script,takes_output_dir", EXAMPLES, ids=[name for name, _ in EXAMPLES]
)
def test_example_runs_at_tiny_scale(script, takes_output_dir, tmp_path):
    env = dict(os.environ)
    env["MAPRAT_SCALE"] = "tiny"
    env["MAPRAT_SMOKE"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [sys.executable, str(EXAMPLES_DIR / script)]
    if takes_output_dir:
        command.append(str(tmp_path / "out"))
    completed = subprocess.run(
        command,
        cwd=tmp_path,  # artefact defaults (examples_output/) land in tmp
        env=env,
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, (
        f"{script} failed\nstdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script} produced no output"
