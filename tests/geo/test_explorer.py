"""Tests for the geo-anchored exploration and mining layer (GeoExplorer)."""

import pytest

from repro.config import MiningConfig, PipelineConfig, ServerConfig
from repro.core.explanation import stable_payload as stable
from repro.errors import EmptyRatingSetError, GeoError
from repro.geo.explorer import GeoExplorer, canonical_region, region_mining_config
from repro.geo.states import ALL_STATE_CODES
from repro.server.api import MapRat
from repro.server.pool import MiningWorkerPool


@pytest.fixture(scope="module")
def explorer(tiny_miner):
    return GeoExplorer(tiny_miner)


@pytest.fixture(scope="module")
def toy_story_ids(tiny_dataset):
    return [item.item_id for item in tiny_dataset.items_by_title("Toy Story")]


class TestRegionCanonicalisation:
    def test_lowercase_and_whitespace_are_normalised(self):
        assert canonical_region(" ca ") == "CA"

    def test_unknown_state_raises(self):
        with pytest.raises(GeoError):
            canonical_region("ZZ")

    def test_empty_region_raises(self):
        with pytest.raises(GeoError):
            canonical_region("  ")


class TestRegionMiningConfig:
    def test_state_is_replaced_by_city_and_anchor_repointed(self):
        config = MiningConfig()
        adapted = region_mining_config(config)
        assert "state" not in adapted.grouping_attributes
        assert "city" in adapted.grouping_attributes
        assert adapted.geo_anchor_attribute == "city"
        assert adapted.require_geo_anchor == config.require_geo_anchor

    def test_city_is_appended_when_no_geo_attribute_present(self):
        config = MiningConfig(
            require_geo_anchor=False,
            grouping_attributes=("gender", "age_group"),
        )
        adapted = region_mining_config(config)
        assert adapted.grouping_attributes == ("gender", "age_group", "city")


class TestSummary:
    def test_state_sizes_sum_to_the_whole_store(self, explorer, tiny_store):
        aggregates = explorer.summary()
        assert sum(agg.size for agg in aggregates) == len(tiny_store)

    def test_regions_are_valid_states_ordered_by_size(self, explorer):
        aggregates = explorer.summary()
        assert all(agg.region in ALL_STATE_CODES for agg in aggregates)
        sizes = [agg.size for agg in aggregates]
        assert sizes == sorted(sizes, reverse=True)

    def test_lifts_reconstruct_the_overall_average(self, explorer, tiny_store):
        aggregates = explorer.summary()
        overall = tiny_store.slice_all().average()
        weighted = sum(agg.size * agg.average for agg in aggregates)
        assert weighted / len(tiny_store) == pytest.approx(overall, abs=1e-3)

    def test_histograms_count_every_rating(self, explorer):
        for agg in explorer.summary():
            assert sum(agg.histogram.values()) == agg.size

    def test_min_size_filters_small_regions(self, explorer):
        unfiltered = explorer.summary()
        threshold = unfiltered[len(unfiltered) // 2].size + 1
        filtered = explorer.summary(min_size=threshold)
        assert filtered
        assert all(agg.size >= threshold for agg in filtered)
        assert len(filtered) < len(unfiltered)

    def test_item_selection_restricts_the_slice(self, explorer, toy_story_ids):
        aggregates = explorer.summary(item_ids=toy_story_ids)
        assert sum(agg.size for agg in aggregates) <= sum(
            agg.size for agg in explorer.summary()
        )


class TestDrilldown:
    def test_country_drill_equals_summary(self, explorer):
        assert explorer.drilldown() == explorer.summary()
        assert explorer.drilldown(region="USA") == explorer.summary()

    def test_city_sizes_roll_up_to_the_state(self, explorer):
        state = explorer.summary()[0]
        cities = explorer.drilldown(region=state.region)
        assert cities
        assert sum(agg.size for agg in cities) == state.size

    def test_zipcode_sizes_roll_up_to_the_state(self, explorer):
        state = explorer.summary()[0]
        zips = explorer.drilldown(region=state.region, by="zipcode")
        assert zips
        assert sum(agg.size for agg in zips) == state.size
        assert all(agg.region.isdigit() for agg in zips)

    def test_unknown_region_raises(self, explorer):
        with pytest.raises(GeoError):
            explorer.drilldown(region="ZZ")

    def test_unsupported_drill_attribute_raises(self, explorer):
        with pytest.raises(GeoError):
            explorer.drilldown(region="CA", by="county")

    def test_region_without_ratings_is_empty(self, explorer):
        rated = {agg.region for agg in explorer.summary()}
        unrated = next(code for code in ALL_STATE_CODES if code not in rated)
        assert explorer.drilldown(region=unrated) == []

    def test_lowercase_region_drills_the_same_state(self, explorer):
        state = explorer.summary()[0]
        assert explorer.drilldown(region=state.region.lower()) == explorer.drilldown(
            region=state.region
        )


class TestGeoMining:
    def test_groups_are_anchored_on_cities_within_the_region(
        self, explorer, toy_story_ids, mining_config
    ):
        result = explorer.explain_region(toy_story_ids, "CA", config=mining_config)
        assert result.region == "CA"
        for group in result.similarity.groups + result.diversity.groups:
            assert "city" in dict(group.pairs)
            assert "state" not in dict(group.pairs)

    def test_region_stats_measure_the_region_against_the_selection(
        self, explorer, toy_story_ids, mining_config
    ):
        result = explorer.explain_region(toy_story_ids, "CA", config=mining_config)
        assert result.region_stats.lift == pytest.approx(
            result.region_stats.average - result.baseline_average, abs=1e-3
        )

    def test_empty_region_raises(self, explorer, toy_story_ids, mining_config):
        rated = {agg.region for agg in explorer.summary(item_ids=toy_story_ids)}
        unrated = next(code for code in ALL_STATE_CODES if code not in rated)
        with pytest.raises(EmptyRatingSetError):
            explorer.explain_region(toy_story_ids, unrated, config=mining_config)

    def test_mining_is_deterministic(self, explorer, toy_story_ids, mining_config):
        first = explorer.explain_region(toy_story_ids, "CA", config=mining_config)
        second = explorer.explain_region(toy_story_ids, "CA", config=mining_config)
        assert stable(first.similarity.to_dict()) == stable(second.similarity.to_dict())
        assert stable(first.diversity.to_dict()) == stable(second.diversity.to_dict())


class TestParallelEquivalence:
    """Geo-anchored mining must be bit-identical between workers=1 and workers>1."""

    def test_explain_region_parallel_matches_serial(
        self, explorer, toy_story_ids, mining_config
    ):
        serial = explorer.explain_region(toy_story_ids, "CA", config=mining_config)
        with MiningWorkerPool(4) as pool:
            parallel = explorer.explain_region(
                toy_story_ids, "CA", config=mining_config, pool=pool
            )
        assert stable(parallel.similarity.to_dict()) == stable(serial.similarity.to_dict())
        assert stable(parallel.diversity.to_dict()) == stable(serial.diversity.to_dict())
        assert parallel.region_stats == serial.region_stats

    def test_top_region_fanout_parallel_matches_serial(
        self, explorer, mining_config
    ):
        serial = explorer.explain_top_regions(limit=3, config=mining_config)
        with MiningWorkerPool(4) as pool:
            parallel = explorer.explain_top_regions(
                limit=3, config=mining_config, pool=pool
            )
        assert [r.region for r in serial] == [r.region for r in parallel]
        for before, after in zip(serial, parallel):
            assert stable(before.similarity.to_dict()) == stable(after.similarity.to_dict())
            assert stable(before.diversity.to_dict()) == stable(after.diversity.to_dict())

    def test_maprat_geo_explain_identical_across_worker_counts(
        self, tiny_dataset, mining_config
    ):
        results = []
        for workers in (1, 4):
            config = PipelineConfig(
                mining=mining_config,
                server=ServerConfig(mining_workers=workers),
            )
            with MapRat.for_dataset(tiny_dataset, config) as system:
                result = system.geo_explain('title:"Toy Story"', "CA")
                results.append(
                    {
                        "similarity": stable(result.similarity.to_dict()),
                        "diversity": stable(result.diversity.to_dict()),
                        "region_stats": result.region_stats.to_dict(),
                    }
                )
        assert results[0] == results[1]


class TestServingIntegration:
    def test_geo_explain_is_cached_and_region_case_insensitive(
        self, tiny_dataset, mining_config
    ):
        config = PipelineConfig(mining=mining_config)
        with MapRat.for_dataset(tiny_dataset, config) as system:
            misses_before = system.cache.stats.misses
            first = system.geo_explain('title:"Toy Story"', "CA")
            second = system.geo_explain('title:"toy story"', "ca")
            assert system.cache.stats.misses == misses_before + 1
            assert first is second

    def test_region_warmup_serves_geo_traffic_from_cache(
        self, tiny_dataset, mining_config
    ):
        config = PipelineConfig(mining=mining_config)
        with MapRat.for_dataset(tiny_dataset, config) as system:
            report = system.warm_up(limit=0, regions=2)
            assert report["regions_precomputed"] == 2
            anchors = system.precomputer.top_region_anchors(2)
            misses_before = system.cache.stats.misses
            for region, item_id, _title in anchors:
                system.geo_explain_items([item_id], region)
            assert system.cache.stats.misses == misses_before

    def test_geo_drilldown_usa_is_labelled_and_cached_as_the_country(
        self, tiny_dataset, mining_config
    ):
        config = PipelineConfig(mining=mining_config)
        with MapRat.for_dataset(tiny_dataset, config) as system:
            country = system.geo_drilldown()
            usa = system.geo_drilldown(region="USA", by="zipcode")
            # region="USA" is the country view whatever `by` says: the payload
            # must be labelled state-level and share the country cache entry.
            assert usa is country
            assert usa["region"] == "USA"
            assert usa["by"] == "state"
            assert all(row["level"] == "state" for row in usa["regions"])

    def test_invalid_drill_attribute_rejected_even_when_country_is_cached(
        self, tiny_dataset, mining_config
    ):
        config = PipelineConfig(mining=mining_config)
        with MapRat.for_dataset(tiny_dataset, config) as system:
            system.geo_drilldown()  # populate the country cache entry
            # Validation must run before the cache lookup: a warm country
            # entry must not turn an invalid ``by`` into a success.
            with pytest.raises(GeoError):
                system.geo_drilldown(by="county")

    def test_geo_summary_payload_is_cached(self, tiny_dataset, mining_config):
        config = PipelineConfig(mining=mining_config)
        with MapRat.for_dataset(tiny_dataset, config) as system:
            first = system.geo_summary()
            second = system.geo_summary()
            assert first is second
            assert first["num_ratings"] == sum(
                region["size"] for region in first["regions"]
            )
