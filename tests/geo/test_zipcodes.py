"""Tests for zip-code resolution and synthesis."""

import pytest

from repro.errors import GeoError
from repro.geo.states import state_by_code
from repro.geo.zipcodes import (
    ZipResolver,
    city_for_zipcode,
    normalize_zipcode,
    state_for_zipcode,
    zipcode_for,
)


class TestNormalization:
    def test_five_digit_zip(self):
        assert normalize_zipcode("94110") == 94110

    def test_zip_plus_four_is_truncated(self):
        assert normalize_zipcode("98107-2117") == 98107

    def test_whitespace_is_stripped(self):
        assert normalize_zipcode(" 10001 ") == 10001

    def test_long_numeric_zip_is_truncated_to_five_digits(self):
        assert normalize_zipcode("941101234") == 94110

    def test_non_numeric_zip_raises(self):
        with pytest.raises(GeoError):
            normalize_zipcode("V5K0A1")


class TestResolution:
    def test_state_for_zipcode(self):
        assert state_for_zipcode("90210") == "CA"
        assert state_for_zipcode("10001") == "NY"
        assert state_for_zipcode("02139") == "MA"

    def test_unresolvable_zip_returns_none(self):
        assert state_for_zipcode("00001") is None
        assert state_for_zipcode("ABCDE") is None

    def test_city_is_deterministic_and_belongs_to_the_state(self):
        city_first = city_for_zipcode("94110")
        city_second = city_for_zipcode("94110")
        assert city_first == city_second
        assert city_first in state_by_code("CA").cities

    def test_city_for_unresolvable_zip_is_none(self):
        assert city_for_zipcode("ABCDE") is None


class TestEdgeCases:
    def test_empty_and_whitespace_zips_raise(self):
        with pytest.raises(GeoError):
            normalize_zipcode("")
        with pytest.raises(GeoError):
            normalize_zipcode("   ")

    def test_empty_zip_resolves_to_none(self):
        assert state_for_zipcode("") is None
        assert city_for_zipcode("") is None

    def test_zip_plus_four_with_garbage_suffix_still_resolves(self):
        # Only the prefix before the dash matters.
        assert normalize_zipcode("90210-abcd") == 90210
        assert state_for_zipcode("90210-abcd") == "CA"

    def test_negative_looking_zip_raises(self):
        with pytest.raises(GeoError):
            normalize_zipcode("-1234")

    def test_range_boundaries_resolve_to_the_owning_state(self):
        low, high = state_by_code("CA").zip_ranges[0]
        assert state_for_zipcode(f"{low:05d}") == "CA"
        assert state_for_zipcode(f"{high:05d}") == "CA"
        # One past the top of the range must not leak into the state.
        assert state_for_zipcode(f"{high + 1:05d}") != "CA"

    def test_single_city_state_synthesis(self):
        # DC has exactly one registered city; every index collapses onto it.
        zipcode = zipcode_for("DC", city_index=3, offset=7)
        assert state_for_zipcode(zipcode) == "DC"
        assert city_for_zipcode(zipcode) == "Washington"

    def test_unknown_state_synthesis_raises(self):
        with pytest.raises(GeoError):
            zipcode_for("ZZ")


class TestResolver:
    def test_resolver_caches_results(self):
        resolver = ZipResolver()
        assert resolver.cache_size() == 0
        state, city = resolver.resolve("60601")
        assert state == "IL"
        assert city in state_by_code("IL").cities
        resolver.resolve("60601")
        assert resolver.cache_size() == 1

    def test_resolver_handles_bad_zip_gracefully(self):
        resolver = ZipResolver()
        assert resolver.resolve("not-a-zip") == ("", "")
        assert resolver.resolve_state("not-a-zip") == ""
        assert resolver.resolve_city("not-a-zip") == ""


class TestSynthesis:
    @pytest.mark.parametrize("state_code", ["CA", "NY", "TX", "RI", "WY", "DC"])
    def test_synthesised_zip_resolves_back_to_the_state(self, state_code):
        for city_index in range(3):
            zipcode = zipcode_for(state_code, city_index=city_index, offset=11)
            assert state_for_zipcode(zipcode) == state_code

    def test_synthesised_zip_resolves_to_requested_city(self):
        state = state_by_code("CA")
        for city_index, city in enumerate(state.cities):
            zipcode = zipcode_for("CA", city_index=city_index, offset=5)
            assert city_for_zipcode(zipcode) == city

    def test_offsets_produce_spread_out_zipcodes(self):
        codes = {zipcode_for("CA", city_index=0, offset=i) for i in range(25)}
        assert len(codes) > 5
