"""Tests for the country ▸ state ▸ city location hierarchy."""

import pytest

from repro.errors import GeoError
from repro.geo.hierarchy import LocationHierarchy, LocationLevel
from repro.geo.states import ALL_STATE_CODES, state_by_code


@pytest.fixture(scope="module")
def hierarchy():
    return LocationHierarchy()


class TestLevels:
    def test_finer_walks_down(self):
        assert LocationLevel.COUNTRY.finer() is LocationLevel.STATE
        assert LocationLevel.STATE.finer() is LocationLevel.CITY

    def test_coarser_walks_up(self):
        assert LocationLevel.CITY.coarser() is LocationLevel.STATE
        assert LocationLevel.STATE.coarser() is LocationLevel.COUNTRY

    def test_boundaries_raise(self):
        with pytest.raises(GeoError):
            LocationLevel.CITY.finer()
        with pytest.raises(GeoError):
            LocationLevel.COUNTRY.coarser()


class TestNavigation:
    def test_country_children_are_all_states(self, hierarchy):
        assert hierarchy.children(LocationLevel.COUNTRY) == ALL_STATE_CODES

    def test_state_children_are_its_cities(self, hierarchy):
        assert hierarchy.children(LocationLevel.STATE, "CA") == state_by_code("CA").cities
        assert hierarchy.cities_of("NY") == state_by_code("NY").cities

    def test_city_has_no_children(self, hierarchy):
        with pytest.raises(GeoError):
            hierarchy.children(LocationLevel.CITY, "Boston")

    def test_parents(self, hierarchy):
        assert hierarchy.parent(LocationLevel.STATE, "CA") == "USA"
        assert hierarchy.parent(LocationLevel.CITY, "Boston") == "MA"
        with pytest.raises(GeoError):
            hierarchy.parent(LocationLevel.COUNTRY, "USA")
        with pytest.raises(GeoError):
            hierarchy.parent(LocationLevel.CITY, "Gotham")

    def test_city_names_can_repeat_across_states(self, hierarchy):
        owners = hierarchy.states_of_city("Portland")
        assert set(owners) >= {"ME", "OR"}

    def test_contains(self, hierarchy):
        assert hierarchy.contains("MA", "Boston")
        assert not hierarchy.contains("MA", "Chicago")


class TestAttributeMapping:
    def test_location_attributes_map_to_levels(self, hierarchy):
        assert hierarchy.level_of_attribute("state") is LocationLevel.STATE
        assert hierarchy.level_of_attribute("city") is LocationLevel.CITY
        assert hierarchy.is_location_attribute("state")
        assert not hierarchy.is_location_attribute("gender")

    def test_non_location_attribute_raises(self, hierarchy):
        with pytest.raises(GeoError):
            hierarchy.level_of_attribute("occupation")
