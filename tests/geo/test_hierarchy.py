"""Tests for the country ▸ state ▸ city location hierarchy."""

import pytest

from repro.errors import GeoError
from repro.geo.hierarchy import LEVEL_ATTRIBUTE, LocationHierarchy, LocationLevel
from repro.geo.states import ALL_STATE_CODES, state_by_code


@pytest.fixture(scope="module")
def hierarchy():
    return LocationHierarchy()


class TestLevels:
    def test_finer_walks_down(self):
        assert LocationLevel.COUNTRY.finer() is LocationLevel.STATE
        assert LocationLevel.STATE.finer() is LocationLevel.CITY

    def test_coarser_walks_up(self):
        assert LocationLevel.CITY.coarser() is LocationLevel.STATE
        assert LocationLevel.STATE.coarser() is LocationLevel.COUNTRY

    def test_boundaries_raise(self):
        with pytest.raises(GeoError):
            LocationLevel.CITY.finer()
        with pytest.raises(GeoError):
            LocationLevel.COUNTRY.coarser()


class TestNavigation:
    def test_country_children_are_all_states(self, hierarchy):
        assert hierarchy.children(LocationLevel.COUNTRY) == ALL_STATE_CODES

    def test_state_children_are_its_cities(self, hierarchy):
        assert hierarchy.children(LocationLevel.STATE, "CA") == state_by_code("CA").cities
        assert hierarchy.cities_of("NY") == state_by_code("NY").cities

    def test_city_has_no_children(self, hierarchy):
        with pytest.raises(GeoError):
            hierarchy.children(LocationLevel.CITY, "Boston")

    def test_parents(self, hierarchy):
        assert hierarchy.parent(LocationLevel.STATE, "CA") == "USA"
        assert hierarchy.parent(LocationLevel.CITY, "Boston") == "MA"
        with pytest.raises(GeoError):
            hierarchy.parent(LocationLevel.COUNTRY, "USA")
        with pytest.raises(GeoError):
            hierarchy.parent(LocationLevel.CITY, "Gotham")

    def test_city_names_can_repeat_across_states(self, hierarchy):
        owners = hierarchy.states_of_city("Portland")
        assert set(owners) >= {"ME", "OR"}

    def test_contains(self, hierarchy):
        assert hierarchy.contains("MA", "Boston")
        assert not hierarchy.contains("MA", "Chicago")


class TestEdgeCases:
    def test_unknown_state_drill_raises(self, hierarchy):
        with pytest.raises(GeoError):
            hierarchy.children(LocationLevel.STATE, "ZZ")

    def test_empty_state_drill_raises(self, hierarchy):
        with pytest.raises(GeoError):
            hierarchy.children(LocationLevel.STATE, "")

    def test_unknown_city_has_no_owning_states(self, hierarchy):
        assert hierarchy.states_of_city("Gotham") == ()
        assert not hierarchy.contains("NY", "Gotham")

    def test_contains_handles_unknown_state_gracefully(self, hierarchy):
        assert not hierarchy.contains("ZZ", "Boston")


class TestRollUpConsistency:
    def test_every_state_has_cities_and_rolls_up_to_the_country(self, hierarchy):
        for code in ALL_STATE_CODES:
            cities = hierarchy.cities_of(code)
            assert cities, f"state {code} has no drill-down targets"
            assert hierarchy.parent(LocationLevel.STATE, code) == "USA"

    def test_every_city_rolls_up_to_a_state_that_contains_it(self, hierarchy):
        for code in ALL_STATE_CODES:
            for city in hierarchy.cities_of(code):
                owners = hierarchy.states_of_city(city)
                assert code in owners
                # The canonical parent is one of the owners and contains it.
                parent = hierarchy.parent(LocationLevel.CITY, city)
                assert parent in owners
                assert hierarchy.contains(parent, city)

    def test_drilling_down_then_up_is_the_identity_on_states(self, hierarchy):
        for code in hierarchy.children(LocationLevel.COUNTRY):
            level = hierarchy.level_of_attribute("state")
            assert level is LocationLevel.STATE
            assert hierarchy.parent(level, code) == "USA"


class TestAttributeMapping:
    def test_level_attribute_table_is_consistent(self, hierarchy):
        for level, attribute in LEVEL_ATTRIBUTE.items():
            assert hierarchy.level_of_attribute(attribute) is level
            assert hierarchy.is_location_attribute(attribute)

    def test_location_attributes_map_to_levels(self, hierarchy):
        assert hierarchy.level_of_attribute("state") is LocationLevel.STATE
        assert hierarchy.level_of_attribute("city") is LocationLevel.CITY
        assert hierarchy.is_location_attribute("state")
        assert not hierarchy.is_location_attribute("gender")

    def test_non_location_attribute_raises(self, hierarchy):
        with pytest.raises(GeoError):
            hierarchy.level_of_attribute("occupation")
