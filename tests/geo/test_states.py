"""Tests for the US state registry."""

import pytest

from repro.errors import GeoError
from repro.geo.states import (
    ALL_STATE_CODES,
    grid_dimensions,
    state_by_code,
    state_by_name,
    state_for_zip5,
    states,
)


class TestRegistry:
    def test_fifty_states_plus_dc(self):
        assert len(ALL_STATE_CODES) == 51
        assert "DC" in ALL_STATE_CODES

    def test_lookup_by_code_is_case_insensitive(self):
        assert state_by_code("ca").name == "California"
        assert state_by_code("NY").code == "NY"

    def test_lookup_by_name(self):
        assert state_by_name("texas").code == "TX"
        assert state_by_name("  Rhode Island ").code == "RI"

    def test_unknown_lookups_raise(self):
        with pytest.raises(GeoError):
            state_by_code("ZZ")
        with pytest.raises(GeoError):
            state_by_name("Atlantis")

    def test_every_state_has_cities_and_zip_ranges(self):
        for state in states():
            assert state.cities, state.code
            assert state.zip_ranges, state.code
            for low, high in state.zip_ranges:
                assert low <= high

    def test_zip_ranges_do_not_overlap_across_states(self):
        ranges = []
        for state in states():
            for low, high in state.zip_ranges:
                ranges.append((low, high, state.code))
        ranges.sort()
        for (low_a, high_a, code_a), (low_b, high_b, code_b) in zip(ranges, ranges[1:]):
            assert high_a < low_b, f"{code_a} overlaps {code_b}"


class TestZipContainment:
    def test_known_zip_assignments(self):
        assert state_for_zip5(90210).code == "CA"
        assert state_for_zip5(10001).code == "NY"
        assert state_for_zip5(2139).code == "MA"
        assert state_for_zip5(60601).code == "IL"

    def test_unassigned_zip_returns_none(self):
        assert state_for_zip5(1) is None

    def test_contains_zip(self):
        texas = state_by_code("TX")
        assert texas.contains_zip(75001)
        assert texas.contains_zip(88510)
        assert not texas.contains_zip(90001)


class TestTileGridPositions:
    def test_positions_are_unique(self):
        positions = [(s.grid_col, s.grid_row) for s in states()]
        assert len(positions) == len(set(positions))

    def test_grid_dimensions_cover_all_positions(self):
        cols, rows = grid_dimensions()
        for state in states():
            assert 0 <= state.grid_col < cols
            assert 0 <= state.grid_row < rows

    def test_rough_geography_is_preserved(self):
        # West-coast states sit left of east-coast states; Alaska at the top-left.
        assert state_by_code("CA").grid_col < state_by_code("NY").grid_col
        assert state_by_code("WA").grid_col < state_by_code("ME").grid_col
        assert state_by_code("AK").grid_row == 0
        assert state_by_code("FL").grid_row > state_by_code("GA").grid_row
