"""Tests for item predicates and their combinators."""

import pytest

from repro.data.model import Item
from repro.errors import QueryError
from repro.query.predicates import (
    AndPredicate,
    AttributePredicate,
    NotPredicate,
    OrPredicate,
    TitlePredicate,
)


@pytest.fixture()
def movie():
    return Item(
        item_id=1,
        title="Saving Private Ryan",
        year=1998,
        genres=("Drama", "War"),
        actors=("Tom Hanks", "Matt Damon"),
        directors=("Steven Spielberg",),
    )


class TestAttributePredicate:
    def test_exact_title_match_is_case_insensitive(self, movie):
        assert AttributePredicate("title", "saving private ryan").matches(movie)
        assert not AttributePredicate("title", "Saving Private").matches(movie)

    def test_substring_match(self, movie):
        assert AttributePredicate("title", "Private", exact=False).matches(movie)

    def test_multivalued_attributes_match_any_value(self, movie):
        assert AttributePredicate("genre", "War").matches(movie)
        assert AttributePredicate("actor", "Matt Damon").matches(movie)
        assert AttributePredicate("director", "Steven Spielberg").matches(movie)
        assert not AttributePredicate("genre", "Comedy").matches(movie)

    def test_year_matching(self, movie):
        assert AttributePredicate("year", "1998").matches(movie)

    def test_unsupported_attribute_rejected(self):
        with pytest.raises(QueryError):
            AttributePredicate("budget", "high")

    def test_describe_quotes_the_value(self):
        assert AttributePredicate("genre", "War").describe() == 'genre:"War"'
        assert AttributePredicate("title", "Ryan", exact=False).describe() == 'title~"Ryan"'

    def test_title_predicate_shorthand(self, movie):
        assert TitlePredicate("Saving Private Ryan").matches(movie)


class TestCombinators:
    def test_and_requires_all_children(self, movie):
        predicate = AndPredicate(
            (AttributePredicate("genre", "War"), AttributePredicate("actor", "Tom Hanks"))
        )
        assert predicate.matches(movie)
        failing = AndPredicate(
            (AttributePredicate("genre", "War"), AttributePredicate("actor", "Nobody"))
        )
        assert not failing.matches(movie)

    def test_or_requires_any_child(self, movie):
        predicate = OrPredicate(
            (AttributePredicate("genre", "Comedy"), AttributePredicate("genre", "War"))
        )
        assert predicate.matches(movie)

    def test_not_inverts(self, movie):
        assert NotPredicate(AttributePredicate("genre", "Comedy")).matches(movie)
        assert not NotPredicate(AttributePredicate("genre", "War")).matches(movie)

    def test_empty_combinators_rejected(self):
        with pytest.raises(QueryError):
            AndPredicate(())
        with pytest.raises(QueryError):
            OrPredicate(())

    def test_operator_overloads_build_combinators(self, movie):
        combined = AttributePredicate("genre", "War") & AttributePredicate("actor", "Tom Hanks")
        assert isinstance(combined, AndPredicate)
        assert combined.matches(movie)
        either = AttributePredicate("genre", "Comedy") | AttributePredicate("genre", "War")
        assert isinstance(either, OrPredicate)
        assert either.matches(movie)
        negated = ~AttributePredicate("genre", "Comedy")
        assert isinstance(negated, NotPredicate)
        assert negated.matches(movie)

    def test_describe_nests_parentheses(self):
        predicate = (
            AttributePredicate("genre", "War") & AttributePredicate("actor", "Tom Hanks")
        ) | AttributePredicate("director", "Woody Allen")
        text = predicate.describe()
        assert text.startswith("(")
        assert "AND" in text and "OR" in text
