"""Tests for the query-language tokenizer and parser."""

import pytest

from repro.errors import QuerySyntaxError
from repro.query.parser import QueryParser, parse_query, tokenize
from repro.query.predicates import (
    AndPredicate,
    AttributePredicate,
    NotPredicate,
    OrPredicate,
)


class TestTokenizer:
    def test_splits_words_operators_and_quotes(self):
        tokens = tokenize('title:"Toy Story" AND genre:Comedy')
        kinds = [t.kind for t in tokens]
        assert kinds == ["word", "colon", "quoted", "word", "word", "colon", "word"]

    def test_quoted_strings_lose_their_quotes(self):
        tokens = tokenize('"Toy Story"')
        assert tokens[0].text == "Toy Story"

    def test_positions_are_recorded(self):
        tokens = tokenize("genre:Drama")
        assert tokens[0].position == 0
        assert tokens[1].position == 5
        assert tokens[2].position == 6

    def test_parentheses(self):
        kinds = [t.kind for t in tokenize("(a OR b)")]
        assert kinds == ["lparen", "word", "word", "word", "rparen"]


class TestLeafParsing:
    def test_attribute_exact_match(self):
        predicate = parse_query('title:"Toy Story"')
        assert isinstance(predicate, AttributePredicate)
        assert predicate.attribute == "title"
        assert predicate.value == "Toy Story"
        assert predicate.exact is True

    def test_attribute_substring_match(self):
        predicate = parse_query('title~"Lord of the Rings"')
        assert predicate.exact is False

    def test_bare_term_becomes_title_substring(self):
        predicate = parse_query('"Toy Story"')
        assert isinstance(predicate, AttributePredicate)
        assert predicate.attribute == "title"
        assert predicate.exact is False

    def test_attribute_names_are_case_insensitive(self):
        predicate = parse_query('GENRE:Drama')
        assert predicate.attribute == "genre"


class TestBooleanStructure:
    def test_explicit_and(self):
        predicate = parse_query('genre:Thriller AND director:"Steven Spielberg"')
        assert isinstance(predicate, AndPredicate)
        assert len(predicate.children) == 2

    def test_adjacency_means_and(self):
        predicate = parse_query('genre:Thriller director:"Steven Spielberg"')
        assert isinstance(predicate, AndPredicate)

    def test_or_expression(self):
        predicate = parse_query('actor:"Tom Hanks" OR director:"Woody Allen"')
        assert isinstance(predicate, OrPredicate)
        assert len(predicate.children) == 2

    def test_not_expression(self):
        predicate = parse_query("NOT genre:Horror")
        assert isinstance(predicate, NotPredicate)

    def test_and_binds_tighter_than_or(self):
        predicate = parse_query("genre:Drama AND genre:War OR genre:Comedy")
        assert isinstance(predicate, OrPredicate)
        assert isinstance(predicate.children[0], AndPredicate)

    def test_parentheses_override_precedence(self):
        predicate = parse_query("genre:Drama AND (genre:War OR genre:Comedy)")
        assert isinstance(predicate, AndPredicate)
        assert isinstance(predicate.children[1], OrPredicate)

    def test_keywords_are_case_insensitive(self):
        predicate = parse_query("genre:Drama and genre:War or genre:Comedy")
        assert isinstance(predicate, OrPredicate)


class TestErrors:
    def test_empty_query(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("")
        with pytest.raises(QuerySyntaxError):
            parse_query("   ")

    def test_missing_value_after_colon(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("genre:")

    def test_missing_closing_parenthesis(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("(genre:Drama OR genre:War")

    def test_dangling_operator(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("genre:Drama AND")

    def test_unexpected_trailing_token(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("genre:Drama )")

    def test_error_reports_a_position(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            parse_query("(genre:Drama")
        assert excinfo.value.position is not None


class TestDescribeRoundTrip:
    @pytest.mark.parametrize(
        "query",
        [
            'title:"Toy Story"',
            "genre:Thriller AND director:\"Steven Spielberg\"",
            'actor:"Tom Hanks" OR director:"Woody Allen"',
            "NOT genre:Horror AND genre:Drama",
        ],
    )
    def test_parsing_the_description_yields_an_equivalent_tree(self, query):
        first = parse_query(query)
        second = parse_query(first.describe())
        assert first.describe() == second.describe()
