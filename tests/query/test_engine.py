"""Tests for the query engine over the item catalogue."""

import pytest

from repro.errors import QueryError
from repro.query.engine import ItemQuery, QueryEngine, TimeInterval
from repro.query.predicates import AttributePredicate


@pytest.fixture(scope="module")
def engine(tiny_dataset):
    return QueryEngine(tiny_dataset)


class TestTimeInterval:
    def test_year_interval_covers_the_whole_year(self):
        interval = TimeInterval.for_year(2001)
        assert interval.contains(interval.start)
        assert interval.contains(interval.end)
        assert interval.end - interval.start > 360 * 24 * 3600

    def test_multi_year_interval(self):
        interval = TimeInterval.for_years(2000, 2002)
        assert interval.start < TimeInterval.for_year(2001).start
        assert interval.end > TimeInterval.for_year(2001).end

    def test_reversed_interval_rejected(self):
        with pytest.raises(QueryError):
            TimeInterval(100, 50)


class TestMatching:
    def test_title_query_finds_the_movie(self, engine, tiny_dataset):
        items = engine.matching_items('title:"Toy Story"')
        assert [item.title for item in items] == ["Toy Story"]

    def test_substring_query_finds_the_trilogy(self, engine):
        items = engine.matching_items('"Lord of the Rings"')
        assert len(items) == 3

    def test_genre_query(self, engine):
        items = engine.matching_items("genre:Animation")
        assert items
        assert all("Animation" in item.genres for item in items)

    def test_director_and_genre_conjunction(self, engine):
        items = engine.matching_items('genre:Thriller AND director:"Steven Spielberg"')
        titles = {item.title for item in items}
        assert titles >= {"Jurassic Park", "Jaws", "Minority Report"}
        assert all("Thriller" in item.genres for item in items)

    def test_actor_disjunction(self, engine):
        items = engine.matching_items('actor:"Tom Hanks" OR director:"Woody Allen"')
        titles = {item.title for item in items}
        assert "Forrest Gump" in titles
        assert "Annie Hall" in titles

    def test_matching_item_ids_are_sorted(self, engine):
        ids = engine.matching_item_ids("genre:Drama")
        assert ids == sorted(ids)

    def test_no_match_returns_empty_list(self, engine):
        assert engine.matching_items('title:"Absolutely Nothing"') == []


class TestCompile:
    def test_compile_string_keeps_the_raw_text(self, engine):
        compiled = engine.compile('title:"Toy Story"')
        assert compiled.raw == 'title:"Toy Story"'
        assert compiled.time_interval is None

    def test_compile_attaches_the_time_interval(self, engine):
        interval = TimeInterval.for_year(2001)
        compiled = engine.compile('title:"Toy Story"', interval)
        assert compiled.time_interval == interval
        assert "@[" in compiled.describe()

    def test_compile_accepts_predicates_and_item_queries(self, engine):
        predicate = AttributePredicate("genre", "Drama")
        compiled = engine.compile(predicate)
        assert compiled.predicate is predicate
        recompiled = engine.compile(compiled)
        assert recompiled is compiled

    def test_compile_rejects_unsupported_objects(self, engine):
        with pytest.raises(QueryError):
            engine.compile(12345)


class TestCatalogueHelpers:
    def test_title_suggestions_are_prefix_matches(self, engine):
        suggestions = engine.suggest_titles("Toy")
        assert "Toy Story" in suggestions
        assert engine.suggest_titles("") == []

    def test_suggestion_limit(self, engine):
        assert len(engine.suggest_titles("S", limit=3)) <= 3

    def test_suggestions_match_a_catalogue_scan(self, engine):
        """The cached lowered-title index must agree with a full naive scan."""
        for prefix in ("t", "To", "toy story", "S", "zzz-nothing", "  Toy  "):
            wanted = prefix.strip().lower()
            expected = sorted(
                {
                    item.title
                    for item in engine.dataset.items()
                    if item.title.lower().startswith(wanted)
                }
            )[:10] if wanted else []
            assert engine.suggest_titles(prefix) == expected

    def test_suggestion_index_is_cached(self, engine):
        engine.suggest_titles("Toy")
        first = engine._title_index
        engine.suggest_titles("S")
        assert engine._title_index is first

    def test_distinct_attribute_values(self, engine):
        genres = engine.distinct_attribute_values("genre")
        assert "Drama" in genres
        assert genres == sorted(genres)
        directors = engine.distinct_attribute_values("director", limit=5)
        assert len(directors) <= 5
