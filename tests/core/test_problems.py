"""Tests for the Similarity/Diversity optimisation problem objects."""

import pytest

from repro.config import MiningConfig
from repro.core.problems import DiversityProblem, SimilarityProblem
from repro.errors import InfeasibleProblemError, MiningError


@pytest.fixture(scope="module")
def problems(toy_story_slice, toy_story_candidates, mining_config):
    similarity = SimilarityProblem(toy_story_slice, toy_story_candidates, mining_config)
    diversity = DiversityProblem(toy_story_slice, toy_story_candidates, mining_config)
    return similarity, diversity


class TestConstruction:
    def test_from_slice_enumerates_candidates(self, toy_story_slice, mining_config):
        problem = SimilarityProblem.from_slice(toy_story_slice, mining_config)
        assert problem.candidates
        assert problem.total_ratings == len(toy_story_slice)
        assert problem.max_groups == mining_config.max_groups

    def test_empty_slice_rejected(self, tiny_store, mining_config):
        empty = tiny_store.slice_for_items([999999], allow_empty=True)
        with pytest.raises(MiningError):
            SimilarityProblem(empty, [], mining_config)

    def test_from_slice_with_impossible_support_raises(self, toy_story_slice):
        config = MiningConfig(min_group_support=10_000, min_coverage=0.1)
        with pytest.raises(InfeasibleProblemError):
            SimilarityProblem.from_slice(toy_story_slice, config)

    def test_describe_reports_problem_shape(self, problems):
        similarity, _ = problems
        info = similarity.describe()
        assert info["task"] == "similarity"
        assert info["candidates"] == len(similarity.candidates)


class TestObjectives:
    def test_similarity_objective_matches_measures(self, problems):
        similarity, _ = problems
        selection = similarity.candidates[:3]
        from repro.core.measures import similarity_objective

        assert similarity.objective(selection) == pytest.approx(
            similarity_objective(selection)
        )

    def test_diversity_objective_uses_config_penalty(self, toy_story_slice, toy_story_candidates):
        selection = toy_story_candidates[:3]
        no_penalty = DiversityProblem(
            toy_story_slice,
            toy_story_candidates,
            MiningConfig(min_group_support=3, min_coverage=0.2, diversity_penalty=0.0),
        )
        heavy_penalty = DiversityProblem(
            toy_story_slice,
            toy_story_candidates,
            MiningConfig(min_group_support=3, min_coverage=0.2, diversity_penalty=5.0),
        )
        assert no_penalty.objective(selection) >= heavy_penalty.objective(selection)

    def test_penalized_objective_equals_objective_when_feasible(self, problems):
        similarity, _ = problems
        feasible = None
        # Find some feasible selection among large candidates.
        big = sorted(similarity.candidates, key=lambda g: -g.size)[: similarity.max_groups]
        if similarity.is_feasible(big):
            feasible = big
        if feasible is not None:
            assert similarity.penalized_objective(feasible) == pytest.approx(
                similarity.objective(feasible)
            )

    def test_penalized_objective_punishes_infeasible_selections(self, problems):
        similarity, _ = problems
        tiny_selection = [min(similarity.candidates, key=lambda g: g.size)]
        if not similarity.is_feasible(tiny_selection):
            assert similarity.penalized_objective(tiny_selection) < similarity.objective(
                tiny_selection
            )

    def test_empty_selection_is_minus_infinity(self, problems):
        similarity, diversity = problems
        assert similarity.penalized_objective([]) == float("-inf")
        assert diversity.penalized_objective([]) == float("-inf")

    def test_violations_listed_for_infeasible_selection(self, problems):
        similarity, _ = problems
        too_many = similarity.candidates[: similarity.max_groups + 2]
        assert similarity.violations(too_many)
