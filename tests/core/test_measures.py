"""Tests for the Similarity/Diversity objective measures."""

import numpy as np
import pytest

from repro.core.groups import Group, GroupDescriptor
from repro.core.measures import (
    coverage,
    covered_positions,
    diversity_objective,
    min_pairwise_disagreement,
    normalized_within_group_error,
    pairwise_disagreement,
    selection_summary,
    similarity_objective,
    within_group_error,
)
from repro.data.model import Item, Rating, RatingDataset, Reviewer
from repro.data.storage import RatingStore


def _slice_with_scores(groups_scores):
    """Build a slice where reviewer 'state' encodes group membership.

    ``groups_scores`` maps a state code to the list of scores its reviewers
    give, which makes hand-computing the measures trivial.
    """
    reviewers, ratings = [], []
    reviewer_id = 0
    for state, scores in groups_scores.items():
        for score in scores:
            reviewer_id += 1
            reviewers.append(
                Reviewer(reviewer_id, "M", 25, "programmer", "00000", state=state, city=state)
            )
            ratings.append(Rating(1, reviewer_id, float(score)))
    dataset = RatingDataset(reviewers, [Item(1, "X")], ratings, validate=False)
    return RatingStore(dataset).slice_for_items([1])


def _group(rating_slice, state):
    descriptor = GroupDescriptor.from_dict({"state": state})
    return Group.from_mask(descriptor, rating_slice, rating_slice.mask_for("state", state))


@pytest.fixture(scope="module")
def three_group_slice():
    return _slice_with_scores(
        {"AA": [5, 5, 5, 5], "BB": [1, 1, 1, 1], "CC": [3, 3, 4, 4]}
    )


class TestCoverage:
    def test_disjoint_groups_add_up(self, three_group_slice):
        groups = [_group(three_group_slice, "AA"), _group(three_group_slice, "BB")]
        assert coverage(groups, len(three_group_slice)) == pytest.approx(8 / 12)

    def test_union_deduplicates_overlap(self, three_group_slice):
        group = _group(three_group_slice, "AA")
        assert coverage([group, group], len(three_group_slice)) == pytest.approx(4 / 12)

    def test_empty_selection_and_zero_total(self, three_group_slice):
        assert coverage([], len(three_group_slice)) == 0.0
        assert coverage([_group(three_group_slice, "AA")], 0) == 0.0
        assert covered_positions([]).shape == (0,)


class TestWithinGroupError:
    def test_constant_groups_have_zero_error(self, three_group_slice):
        groups = [_group(three_group_slice, "AA"), _group(three_group_slice, "BB")]
        assert within_group_error(groups) == 0.0
        assert normalized_within_group_error(groups) == 0.0

    def test_mixed_group_error_matches_hand_computation(self, three_group_slice):
        group = _group(three_group_slice, "CC")
        # scores 3,3,4,4 → mean 3.5 → error 4 * 0.25 = 1.0
        assert within_group_error([group]) == pytest.approx(1.0)
        assert normalized_within_group_error([group]) == pytest.approx(0.25)

    def test_empty_selection(self):
        assert within_group_error([]) == 0.0
        assert normalized_within_group_error([]) == 0.0


class TestDisagreement:
    def test_pairwise_disagreement_mean_of_gaps(self, three_group_slice):
        groups = [
            _group(three_group_slice, "AA"),  # mean 5
            _group(three_group_slice, "BB"),  # mean 1
            _group(three_group_slice, "CC"),  # mean 3.5
        ]
        expected = (abs(5 - 1) + abs(5 - 3.5) + abs(1 - 3.5)) / 3
        assert pairwise_disagreement(groups) == pytest.approx(expected)
        assert min_pairwise_disagreement(groups) == pytest.approx(1.5)

    def test_single_group_has_no_disagreement(self, three_group_slice):
        assert pairwise_disagreement([_group(three_group_slice, "AA")]) == 0.0
        assert min_pairwise_disagreement([_group(three_group_slice, "AA")]) == 0.0


class TestObjectives:
    def test_similarity_prefers_consistent_groups(self, three_group_slice):
        consistent = [_group(three_group_slice, "AA"), _group(three_group_slice, "BB")]
        noisy = [_group(three_group_slice, "CC")]
        assert similarity_objective(consistent) > similarity_objective(noisy)
        assert similarity_objective(consistent) == pytest.approx(0.0)

    def test_diversity_prefers_far_apart_groups(self, three_group_slice):
        polarised = [_group(three_group_slice, "AA"), _group(three_group_slice, "BB")]
        close = [_group(three_group_slice, "AA"), _group(three_group_slice, "CC")]
        assert diversity_objective(polarised) > diversity_objective(close)

    def test_diversity_penalty_reduces_the_objective(self, three_group_slice):
        groups = [_group(three_group_slice, "AA"), _group(three_group_slice, "CC")]
        assert diversity_objective(groups, penalty=1.0) < diversity_objective(groups, penalty=0.0)

    def test_empty_selection_is_worst_possible(self):
        assert similarity_objective([]) == float("-inf")
        assert diversity_objective([]) == float("-inf")

    def test_selection_summary_fields(self, three_group_slice):
        groups = [_group(three_group_slice, "AA"), _group(three_group_slice, "BB")]
        summary = selection_summary(groups, len(three_group_slice))
        assert summary["num_groups"] == 2
        assert summary["coverage"] == pytest.approx(8 / 12, abs=1e-3)
        assert summary["group_sizes"] == [4, 4]
