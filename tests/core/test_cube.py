"""Tests for data-cube candidate enumeration with support pruning."""

import pytest

from repro.config import MiningConfig
from repro.core.cube import CandidateEnumerator, enumerate_candidates
from repro.errors import MiningError


class TestEnumeration:
    def test_all_candidates_meet_the_support_threshold(self, toy_story_slice):
        enumerator = CandidateEnumerator(toy_story_slice, min_support=5)
        for group in enumerator.enumerate():
            assert group.size >= 5

    def test_all_candidates_respect_the_description_limit(self, toy_story_slice):
        enumerator = CandidateEnumerator(toy_story_slice, max_description_length=2, min_support=3)
        assert all(len(g.descriptor) <= 2 for g in enumerator.enumerate())

    def test_no_duplicate_descriptors(self, toy_story_slice):
        groups = CandidateEnumerator(toy_story_slice, min_support=3).enumerate()
        descriptors = [g.descriptor for g in groups]
        assert len(descriptors) == len(set(descriptors))

    def test_single_pair_groups_match_value_counts(self, toy_story_slice):
        groups = CandidateEnumerator(
            toy_story_slice,
            grouping_attributes=("gender",),
            max_description_length=1,
            min_support=1,
        ).enumerate()
        by_value = {g.descriptor.value_of("gender"): g.size for g in groups}
        for value, size in by_value.items():
            assert size == int(toy_story_slice.mask_for("gender", value).sum())
        assert sum(by_value.values()) == len(toy_story_slice)

    def test_lower_support_yields_at_least_as_many_candidates(self, toy_story_slice):
        strict = CandidateEnumerator(toy_story_slice, min_support=10).enumerate()
        relaxed = CandidateEnumerator(toy_story_slice, min_support=3).enumerate()
        assert len(relaxed) >= len(strict)

    def test_longer_descriptions_yield_at_least_as_many_candidates(self, toy_story_slice):
        short = CandidateEnumerator(toy_story_slice, max_description_length=1, min_support=3).enumerate()
        longer = CandidateEnumerator(toy_story_slice, max_description_length=3, min_support=3).enumerate()
        assert len(longer) >= len(short)

    def test_geo_anchor_keeps_only_state_constrained_groups(self, toy_story_slice):
        anchored = CandidateEnumerator(
            toy_story_slice, min_support=3, require_geo_anchor=True
        ).enumerate()
        assert anchored
        assert all(g.descriptor.has_attribute("state") for g in anchored)

    def test_empty_slice_yields_no_candidates(self, tiny_store):
        empty = tiny_store.slice_for_items([999999], allow_empty=True)
        assert CandidateEnumerator(empty, min_support=1).enumerate() == []

    def test_candidate_sizes_never_exceed_slice_size(self, toy_story_slice):
        for group in CandidateEnumerator(toy_story_slice, min_support=3).enumerate():
            assert group.size <= len(toy_story_slice)

    def test_specialisations_are_never_larger_than_their_parents(self, toy_story_slice):
        groups = CandidateEnumerator(toy_story_slice, min_support=3).enumerate()
        by_descriptor = {g.descriptor: g for g in groups}
        for group in groups:
            for attribute in group.descriptor.attributes():
                parent = group.descriptor.without_attribute(attribute)
                if len(parent) and parent in by_descriptor:
                    assert group.size <= by_descriptor[parent].size

    def test_enumeration_stats_track_pruning(self, toy_story_slice):
        enumerator = CandidateEnumerator(toy_story_slice, min_support=5)
        groups, stats = enumerator.enumerate_with_stats()
        assert stats.candidates == len(groups)
        assert stats.explored >= len(groups)
        assert stats.pruned_by_support >= 0


class TestValidation:
    def test_invalid_parameters_rejected(self, toy_story_slice):
        with pytest.raises(MiningError):
            CandidateEnumerator(toy_story_slice, max_description_length=0)
        with pytest.raises(MiningError):
            CandidateEnumerator(toy_story_slice, min_support=0)

    def test_geo_anchor_requires_state_attribute(self, toy_story_slice):
        with pytest.raises(MiningError):
            CandidateEnumerator(
                toy_story_slice,
                grouping_attributes=("gender",),
                require_geo_anchor=True,
            )

    def test_from_config_uses_config_values(self, toy_story_slice, mining_config):
        enumerator = CandidateEnumerator.from_config(toy_story_slice, mining_config)
        assert enumerator.min_support == mining_config.min_group_support
        assert enumerator.max_description_length == mining_config.max_description_length
        assert enumerator.require_geo_anchor == mining_config.require_geo_anchor

    def test_enumerate_candidates_wrapper(self, toy_story_slice, mining_config):
        groups = enumerate_candidates(toy_story_slice, mining_config)
        assert groups
        assert all(g.size >= mining_config.min_group_support for g in groups)
