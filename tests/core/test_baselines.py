"""Tests for the baseline solvers RHE is compared against."""

import pytest

from repro.config import MiningConfig
from repro.core.baselines import (
    ExhaustiveSolver,
    GreedyCoverageSolver,
    RandomSolver,
    TopKBySizeSolver,
    all_baselines,
)
from repro.core.cube import CandidateEnumerator
from repro.core.problems import SimilarityProblem
from repro.core.rhe import RandomizedHillExploration
from repro.errors import MiningError


@pytest.fixture(scope="module")
def small_problem(toy_story_slice):
    """A problem with a deliberately small candidate set (exhaustive is feasible)."""
    config = MiningConfig(
        max_groups=2,
        min_coverage=0.2,
        min_group_support=5,
        max_description_length=1,
        require_geo_anchor=False,
        grouping_attributes=("gender", "age_group"),
    )
    candidates = CandidateEnumerator.from_config(toy_story_slice, config).enumerate()
    return SimilarityProblem(toy_story_slice, candidates, config)


class TestExhaustive:
    def test_finds_a_feasible_selection(self, small_problem):
        result = ExhaustiveSolver().solve(small_problem)
        assert result.feasible
        assert result.solver == "exhaustive"

    def test_is_at_least_as_good_as_every_other_solver(self, small_problem):
        optimal = ExhaustiveSolver().solve(small_problem)
        for solver in (
            GreedyCoverageSolver(),
            TopKBySizeSolver(),
            RandomSolver(seed=3),
            RandomizedHillExploration(seed=3),
        ):
            other = solver.solve(small_problem)
            if other.feasible:
                assert optimal.objective >= other.objective - 1e-9

    def test_selection_count_formula(self):
        solver = ExhaustiveSolver()
        # C(5,1) + C(5,2) = 5 + 10
        assert solver.count_selections(5, 2) == 15
        assert solver.count_selections(4, 4) == 15

    def test_safety_cap_prevents_blowups(self, toy_story_slice, toy_story_candidates, mining_config):
        big_problem = SimilarityProblem(toy_story_slice, toy_story_candidates, mining_config)
        capped = ExhaustiveSolver(max_evaluations=10)
        if capped.count_selections(len(big_problem.candidates), big_problem.max_groups) > 10:
            with pytest.raises(MiningError):
                capped.solve(big_problem)


class TestGreedy:
    def test_produces_a_selection_within_the_group_budget(self, small_problem):
        result = GreedyCoverageSolver().solve(small_problem)
        assert 1 <= len(result.groups) <= small_problem.max_groups
        assert result.solver == "greedy"

    def test_greedy_is_feasible_on_the_small_instance(self, small_problem):
        assert GreedyCoverageSolver().solve(small_problem).feasible


class TestTopKBySize:
    def test_picks_the_largest_candidates(self, small_problem):
        result = TopKBySizeSolver().solve(small_problem)
        sizes = sorted((g.size for g in small_problem.candidates), reverse=True)
        expected = sizes[: small_problem.max_groups]
        assert sorted((g.size for g in result.groups), reverse=True) == expected


class TestRandom:
    def test_deterministic_for_a_seed(self, small_problem):
        first = RandomSolver(seed=7).solve(small_problem)
        second = RandomSolver(seed=7).solve(small_problem)
        assert [g.descriptor for g in first.groups] == [g.descriptor for g in second.groups]

    def test_more_attempts_never_hurt(self, small_problem):
        one = RandomSolver(seed=5, attempts=1).solve(small_problem)
        many = RandomSolver(seed=5, attempts=16).solve(small_problem)
        assert small_problem.penalized_objective(many.groups) >= (
            small_problem.penalized_objective(one.groups) - 1e-9
        )


class TestLineup:
    def test_all_baselines_returns_the_four_reference_solvers(self):
        names = {solver.name for solver in all_baselines()}
        assert names == {"exhaustive", "greedy", "top_k_by_size", "random"}
