"""Tests for the RatingMiner façade (the Rating Mining module of §2.3)."""

import pytest

from repro.config import MiningConfig
from repro.core.miner import RatingMiner
from repro.errors import EmptyRatingSetError, MiningError
from repro.query.engine import TimeInterval


class TestExplainTitle:
    def test_produces_similarity_and_diversity(self, tiny_miner):
        result = tiny_miner.explain_title("Toy Story")
        assert result.similarity.groups
        assert result.diversity.groups
        assert result.similarity.task == "similarity"
        assert result.diversity.task == "diversity"

    def test_groups_are_geo_anchored_by_default(self, tiny_miner):
        result = tiny_miner.explain_title("Toy Story")
        for explanation in result.explanations():
            assert all(group.state for group in explanation.groups)

    def test_coverage_meets_the_configured_minimum(self, tiny_miner, mining_config):
        result = tiny_miner.explain_title("Toy Story")
        assert result.similarity.coverage >= mining_config.min_coverage - 1e-9
        assert result.similarity.feasible

    def test_group_count_respects_the_configuration(self, tiny_miner, mining_config):
        result = tiny_miner.explain_title("Toy Story")
        assert len(result.similarity.groups) <= mining_config.max_groups
        assert len(result.diversity.groups) <= mining_config.max_groups

    def test_unknown_title_raises(self, tiny_miner):
        with pytest.raises(EmptyRatingSetError):
            tiny_miner.explain_title("A Movie That Does Not Exist")

    def test_diversity_groups_actually_disagree(self, tiny_miner):
        result = tiny_miner.explain_title("Toy Story")
        assert result.diversity.disagreement > 0.2


class TestExplainItems:
    def test_multi_item_selection(self, tiny_miner, tiny_dataset):
        item_ids = [
            item.item_id
            for item in tiny_dataset.items()
            if "Lord of the Rings" in item.title
        ]
        assert len(item_ids) >= 2
        result = tiny_miner.explain_items(item_ids, description="LOTR trilogy")
        assert result.query.num_ratings > 0
        assert result.query.description == "LOTR trilogy"

    def test_time_interval_restricts_the_ratings(self, tiny_miner, tiny_dataset):
        item_ids = [i.item_id for i in tiny_dataset.items_by_title("Toy Story")]
        full = tiny_miner.explain_items(item_ids)
        interval = TimeInterval.for_year(2001).as_tuple()
        restricted = tiny_miner.explain_items(item_ids, time_interval=interval)
        assert restricted.query.num_ratings < full.query.num_ratings
        assert restricted.query.time_interval == interval

    def test_config_override_changes_group_budget(self, tiny_miner, tiny_dataset):
        item_ids = [i.item_id for i in tiny_dataset.items_by_title("Toy Story")]
        override = MiningConfig(max_groups=2, min_group_support=3, min_coverage=0.1)
        result = tiny_miner.explain_items(item_ids, config=override)
        assert len(result.similarity.groups) <= 2

    def test_impossible_support_raises_mining_error(self, tiny_miner, tiny_dataset):
        item_ids = [i.item_id for i in tiny_dataset.items_by_title("Toy Story")]
        impossible = MiningConfig(min_group_support=100_000, min_coverage=0.1)
        with pytest.raises(MiningError):
            tiny_miner.explain_items(item_ids, config=impossible)


class TestConstruction:
    def test_for_dataset_builds_store_with_location_columns(self, tiny_dataset, mining_config):
        miner = RatingMiner.for_dataset(tiny_dataset, mining_config)
        rating_slice = miner.store.slice_all()
        assert "city" in rating_slice.attribute_columns
        assert "state" in rating_slice.attribute_columns

    def test_slice_for_items_matches_dataset_counts(self, tiny_miner, tiny_dataset):
        item = next(iter(tiny_dataset.items()))
        rating_slice = tiny_miner.slice_for_items([item.item_id])
        assert len(rating_slice) == len(tiny_dataset.ratings_for_items([item.item_id]))
