"""Tests for the meaningfulness constraints and the constraint set."""

import pytest

from repro.config import MiningConfig
from repro.core.constraints import (
    ConstraintSet,
    DescriptionLengthConstraint,
    GeoAnchorConstraint,
    MaxGroupsConstraint,
    MinCoverageConstraint,
    MinSupportConstraint,
)
from repro.core.groups import Group, GroupDescriptor
from repro.errors import ConstraintError


def _groups(toy_story_slice, *pair_dicts):
    groups = []
    for pairs in pair_dicts:
        descriptor = GroupDescriptor.from_dict(pairs)
        mask = None
        for attribute, value in pairs.items():
            value_mask = toy_story_slice.mask_for(attribute, value)
            mask = value_mask if mask is None else (mask & value_mask)
        groups.append(Group.from_mask(descriptor, toy_story_slice, mask))
    return groups


class TestMaxGroups:
    def test_within_limit(self, toy_story_slice):
        constraint = MaxGroupsConstraint(2)
        groups = _groups(toy_story_slice, {"gender": "M"}, {"gender": "F"})
        assert constraint.check(groups, len(toy_story_slice))
        assert constraint.violation(groups, len(toy_story_slice)) is None
        assert constraint.penalty(groups, len(toy_story_slice)) == 0.0

    def test_above_limit_and_empty(self, toy_story_slice):
        constraint = MaxGroupsConstraint(1)
        groups = _groups(toy_story_slice, {"gender": "M"}, {"gender": "F"})
        assert not constraint.check(groups, len(toy_story_slice))
        assert "allowed" in constraint.violation(groups, len(toy_story_slice))
        assert constraint.penalty(groups, len(toy_story_slice)) > 0
        assert not constraint.check([], len(toy_story_slice))

    def test_invalid_configuration(self):
        with pytest.raises(ConstraintError):
            MaxGroupsConstraint(0)


class TestMinCoverage:
    def test_full_gender_partition_covers_everything(self, toy_story_slice):
        constraint = MinCoverageConstraint(0.99)
        groups = _groups(toy_story_slice, {"gender": "M"}, {"gender": "F"})
        assert constraint.check(groups, len(toy_story_slice))

    def test_small_group_fails_high_coverage(self, toy_story_slice):
        constraint = MinCoverageConstraint(0.9)
        groups = _groups(toy_story_slice, {"state": "CA"})
        assert not constraint.check(groups, len(toy_story_slice))
        assert "coverage" in constraint.violation(groups, len(toy_story_slice))
        penalty = constraint.penalty(groups, len(toy_story_slice))
        assert 0 < penalty <= 0.9

    def test_invalid_configuration(self):
        with pytest.raises(ConstraintError):
            MinCoverageConstraint(1.5)


class TestDescriptionLength:
    def test_short_descriptions_pass(self, toy_story_slice):
        constraint = DescriptionLengthConstraint(2)
        groups = _groups(toy_story_slice, {"gender": "M", "state": "CA"})
        assert constraint.check(groups, len(toy_story_slice))

    def test_long_description_fails(self, toy_story_slice):
        constraint = DescriptionLengthConstraint(1)
        groups = _groups(toy_story_slice, {"gender": "M", "state": "CA"})
        assert not constraint.check(groups, len(toy_story_slice))
        assert constraint.penalty(groups, len(toy_story_slice)) > 0

    def test_invalid_configuration(self):
        with pytest.raises(ConstraintError):
            DescriptionLengthConstraint(0)


class TestMinSupport:
    def test_support_threshold(self, toy_story_slice):
        groups = _groups(toy_story_slice, {"gender": "M"})
        assert MinSupportConstraint(1).check(groups, len(toy_story_slice))
        huge = MinSupportConstraint(10_000)
        assert not huge.check(groups, len(toy_story_slice))
        assert huge.penalty(groups, len(toy_story_slice)) == 1.0

    def test_invalid_configuration(self):
        with pytest.raises(ConstraintError):
            MinSupportConstraint(0)


class TestGeoAnchor:
    def test_anchored_groups_pass(self, toy_story_slice):
        constraint = GeoAnchorConstraint()
        groups = _groups(toy_story_slice, {"gender": "M", "state": "CA"})
        assert constraint.check(groups, len(toy_story_slice))

    def test_unanchored_group_fails_with_named_violation(self, toy_story_slice):
        constraint = GeoAnchorConstraint()
        groups = _groups(toy_story_slice, {"gender": "M"})
        assert not constraint.check(groups, len(toy_story_slice))
        assert "state" in constraint.violation(groups, len(toy_story_slice))
        assert constraint.penalty(groups, len(toy_story_slice)) == 1.0


class TestConstraintSet:
    def test_from_config_includes_geo_anchor_when_required(self, mining_config):
        constraint_set = ConstraintSet.from_config(mining_config)
        names = {type(c).__name__ for c in constraint_set}
        assert "GeoAnchorConstraint" in names
        assert len(constraint_set) == 5

    def test_from_config_without_geo_anchor(self):
        config = MiningConfig(require_geo_anchor=False)
        names = {type(c).__name__ for c in ConstraintSet.from_config(config)}
        assert "GeoAnchorConstraint" not in names

    def test_feasibility_and_violations(self, toy_story_slice, mining_config):
        constraint_set = ConstraintSet.from_config(mining_config)
        good = _groups(
            toy_story_slice,
            {"gender": "M", "state": "CA"},
            {"state": "NY"},
            {"state": "TX"},
        )
        bad = _groups(toy_story_slice, {"gender": "M"})
        total = len(toy_story_slice)
        # violations() and is_feasible() must always agree.
        assert (constraint_set.violations(good, total) == []) == constraint_set.is_feasible(good, total)
        assert not constraint_set.is_feasible(bad, total)
        assert constraint_set.violations(bad, total)
        assert constraint_set.penalty(bad, total) > 0
