"""Tests for the explanation / interpretation result objects."""

import pytest

from repro.core.explanation import Explanation, GroupExplanation, MiningResult, QuerySummary
from repro.core.groups import Group, GroupDescriptor
from repro.core.problems import SimilarityProblem
from repro.core.rhe import RandomizedHillExploration


@pytest.fixture(scope="module")
def solve_result(toy_story_slice, toy_story_candidates, mining_config):
    problem = SimilarityProblem(toy_story_slice, toy_story_candidates, mining_config)
    return RandomizedHillExploration(seed=1).solve(problem)


class TestGroupExplanation:
    def test_from_group_matches_group_statistics(self, toy_story_slice):
        descriptor = GroupDescriptor.from_dict({"gender": "M", "state": "CA"})
        mask = toy_story_slice.mask_for("gender", "M") & toy_story_slice.mask_for("state", "CA")
        group = Group.from_mask(descriptor, toy_story_slice, mask)
        explanation = GroupExplanation.from_group(group, toy_story_slice, len(toy_story_slice))
        assert explanation.size == group.size
        assert explanation.average_rating == pytest.approx(group.mean, abs=1e-3)
        assert explanation.state == "CA"
        assert sum(explanation.score_histogram.values()) == group.size

    def test_to_dict_is_json_friendly(self, toy_story_slice):
        descriptor = GroupDescriptor.from_dict({"state": "CA"})
        group = Group.from_mask(
            descriptor, toy_story_slice, toy_story_slice.mask_for("state", "CA")
        )
        payload = GroupExplanation.from_group(group, toy_story_slice, len(toy_story_slice)).to_dict()
        assert payload["label"] == "reviewers from California"
        assert isinstance(payload["score_histogram"], dict)
        assert all(isinstance(key, str) for key in payload["score_histogram"])


class TestExplanation:
    def test_from_solve_result_wraps_all_groups(self, solve_result, toy_story_slice):
        explanation = Explanation.from_solve_result("similarity", solve_result, toy_story_slice)
        assert explanation.task == "similarity"
        assert len(explanation.groups) == len(solve_result.groups)
        assert explanation.solver == "rhe"
        assert explanation.feasible == solve_result.feasible
        assert 0 <= explanation.coverage <= 1

    def test_group_for_state(self, solve_result, toy_story_slice):
        explanation = Explanation.from_solve_result("similarity", solve_result, toy_story_slice)
        state = explanation.groups[0].state
        assert explanation.group_for_state(state) is explanation.groups[0]
        assert explanation.group_for_state("ZZ") is None

    def test_labels_and_to_dict(self, solve_result, toy_story_slice):
        explanation = Explanation.from_solve_result("similarity", solve_result, toy_story_slice)
        assert explanation.labels() == [g.label for g in explanation.groups]
        payload = explanation.to_dict()
        assert payload["task"] == "similarity"
        assert len(payload["groups"]) == len(explanation.groups)


class TestMiningResult:
    def test_explanation_lookup_by_task(self, tiny_miner):
        result = tiny_miner.explain_title("Toy Story")
        assert result.explanation_for("similarity") is result.similarity
        assert result.explanation_for("diversity") is result.diversity
        with pytest.raises(KeyError):
            result.explanation_for("serendipity")

    def test_query_summary_reflects_the_input(self, tiny_miner, tiny_dataset):
        result = tiny_miner.explain_title("Toy Story")
        assert result.query.item_titles == ("Toy Story",)
        item_id = tiny_dataset.items_by_title("Toy Story")[0].item_id
        assert result.query.item_ids == (item_id,)
        assert result.query.num_ratings > 0
        assert 1 <= result.query.average_rating <= 5

    def test_to_dict_round_trips_through_json(self, tiny_miner):
        import json

        result = tiny_miner.explain_title("Toy Story")
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["query"]["item_titles"] == ["Toy Story"]
        assert {"similarity", "diversity"} <= set(payload)

    def test_elapsed_time_recorded(self, tiny_miner):
        result = tiny_miner.explain_title("Toy Story")
        assert result.elapsed_seconds > 0
