"""Tests for the simulated-annealing extension solver."""

import pytest

from repro.core.annealing import SimulatedAnnealingSolver
from repro.core.baselines import RandomSolver
from repro.core.problems import SimilarityProblem
from repro.errors import InfeasibleProblemError


@pytest.fixture(scope="module")
def problem(toy_story_slice, toy_story_candidates, mining_config):
    return SimilarityProblem(toy_story_slice, toy_story_candidates, mining_config)


class TestConfiguration:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingSolver(cooling=1.5)
        with pytest.raises(ValueError):
            SimulatedAnnealingSolver(cooling=0.0)
        with pytest.raises(ValueError):
            SimulatedAnnealingSolver(initial_temperature=0)

    def test_step_and_restart_floors(self):
        solver = SimulatedAnnealingSolver(steps=0, restarts=0)
        assert solver.steps == 1
        assert solver.restarts == 1


class TestSolve:
    def test_returns_at_most_k_distinct_candidate_groups(self, problem, mining_config):
        result = SimulatedAnnealingSolver(seed=3).solve(problem)
        assert 1 <= len(result.groups) <= mining_config.max_groups
        descriptors = [g.descriptor for g in result.groups]
        assert len(descriptors) == len(set(descriptors))
        candidate_descriptors = {c.descriptor for c in problem.candidates}
        assert all(d in candidate_descriptors for d in descriptors)

    def test_deterministic_for_a_seed(self, problem):
        first = SimulatedAnnealingSolver(seed=11).solve(problem)
        second = SimulatedAnnealingSolver(seed=11).solve(problem)
        assert [g.descriptor for g in first.groups] == [g.descriptor for g in second.groups]

    def test_result_is_feasible_on_this_instance(self, problem):
        result = SimulatedAnnealingSolver(steps=600, restarts=3, seed=1).solve(problem)
        assert result.feasible

    def test_objective_matches_problem_evaluation(self, problem):
        result = SimulatedAnnealingSolver(seed=5).solve(problem)
        assert result.objective == pytest.approx(problem.objective(result.groups))

    def test_beats_or_matches_a_single_random_draw(self, problem):
        annealed = SimulatedAnnealingSolver(steps=600, restarts=3, seed=2).solve(problem)
        random_draw = RandomSolver(seed=2, attempts=1).solve(problem)
        assert problem.penalized_objective(annealed.groups) >= problem.penalized_objective(
            random_draw.groups
        )

    def test_solver_name_and_trace(self, problem):
        result = SimulatedAnnealingSolver(restarts=3, seed=4).solve(problem)
        assert result.solver == "annealing"
        assert len(result.trace) == 3
        assert result.iterations > 0

    def test_no_candidates_raises(self, toy_story_slice, mining_config):
        empty_problem = SimilarityProblem(toy_story_slice, [], mining_config)
        with pytest.raises(InfeasibleProblemError):
            SimulatedAnnealingSolver(seed=1).solve(empty_problem)
