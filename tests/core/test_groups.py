"""Tests for group descriptors and materialised groups."""

import numpy as np
import pytest

from repro.core.groups import Group, GroupDescriptor
from repro.errors import MiningError


class TestDescriptorConstruction:
    def test_pairs_are_normalised_to_sorted_order(self):
        descriptor = GroupDescriptor((("state", "CA"), ("gender", "M")))
        assert descriptor.pairs == (("gender", "M"), ("state", "CA"))

    def test_equality_ignores_pair_order(self):
        first = GroupDescriptor((("state", "CA"), ("gender", "M")))
        second = GroupDescriptor((("gender", "M"), ("state", "CA")))
        assert first == second
        assert hash(first) == hash(second)

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(MiningError):
            GroupDescriptor((("gender", "M"), ("gender", "F")))

    def test_from_dict_and_as_dict_roundtrip(self):
        pairs = {"gender": "F", "state": "NY"}
        descriptor = GroupDescriptor.from_dict(pairs)
        assert descriptor.as_dict() == pairs

    def test_empty_descriptor(self):
        descriptor = GroupDescriptor.empty()
        assert len(descriptor) == 0
        assert descriptor.label() == "all reviewers"


class TestDescriptorStructure:
    def test_value_lookup(self):
        descriptor = GroupDescriptor.from_dict({"gender": "M", "state": "CA"})
        assert descriptor.value_of("gender") == "M"
        assert descriptor.value_of("occupation") is None
        assert descriptor.has_attribute("state")

    def test_with_pair_extends_and_rejects_duplicates(self):
        descriptor = GroupDescriptor.from_dict({"gender": "M"})
        extended = descriptor.with_pair("state", "CA")
        assert extended.has_attribute("state")
        assert len(extended) == 2
        with pytest.raises(MiningError):
            extended.with_pair("gender", "F")

    def test_without_attribute_generalises(self):
        descriptor = GroupDescriptor.from_dict({"gender": "M", "state": "CA"})
        reduced = descriptor.without_attribute("state")
        assert reduced.as_dict() == {"gender": "M"}

    def test_generalizes_and_specializes(self):
        general = GroupDescriptor.from_dict({"gender": "M"})
        specific = GroupDescriptor.from_dict({"gender": "M", "state": "CA"})
        assert general.generalizes(specific)
        assert specific.specializes(general)
        assert not specific.generalizes(general)

    def test_matches_reviewer_attributes(self):
        descriptor = GroupDescriptor.from_dict({"gender": "M", "state": "CA"})
        assert descriptor.matches({"gender": "M", "state": "CA", "age_group": "25-34"})
        assert not descriptor.matches({"gender": "F", "state": "CA"})

    def test_geo_helpers(self):
        anchored = GroupDescriptor.from_dict({"gender": "M", "state": "CA"})
        assert anchored.has_geo_anchor()
        assert anchored.state == "CA"
        unanchored = GroupDescriptor.from_dict({"gender": "M"})
        assert not unanchored.has_geo_anchor()
        assert unanchored.state is None


class TestDescriptorLabels:
    def test_paper_style_label_for_state_and_gender(self):
        descriptor = GroupDescriptor.from_dict({"gender": "M", "state": "CA"})
        assert descriptor.label() == "male reviewers from California"

    def test_label_with_age_occupation_and_city(self):
        descriptor = GroupDescriptor.from_dict(
            {
                "gender": "F",
                "age_group": "Under 18",
                "occupation": "K-12 student",
                "state": "NY",
            }
        )
        label = descriptor.label()
        assert label.startswith("female K-12 student reviewers under 18")
        assert label.endswith("from New York")

    def test_short_label_lists_pairs(self):
        descriptor = GroupDescriptor.from_dict({"gender": "M", "state": "CA"})
        assert descriptor.short_label() == "gender=M, state=CA"
        assert GroupDescriptor.empty().short_label() == "<all>"

    def test_descriptors_are_orderable(self):
        descriptors = [
            GroupDescriptor.from_dict({"state": "NY"}),
            GroupDescriptor.from_dict({"gender": "M"}),
        ]
        assert sorted(descriptors)[0].has_attribute("gender")


class TestGroupMaterialisation:
    def test_from_mask_computes_statistics(self, toy_story_slice):
        descriptor = GroupDescriptor.from_dict({"gender": "M"})
        mask = toy_story_slice.mask_for("gender", "M")
        group = Group.from_mask(descriptor, toy_story_slice, mask)
        scores = toy_story_slice.scores[mask]
        assert group.size == int(mask.sum())
        assert group.mean == pytest.approx(float(scores.mean()))
        assert group.error == pytest.approx(float(((scores - scores.mean()) ** 2).sum()))
        assert group.variance == pytest.approx(group.error / group.size)

    def test_empty_group_has_zero_statistics(self, toy_story_slice):
        descriptor = GroupDescriptor.from_dict({"state": "XX"})
        mask = np.zeros(len(toy_story_slice), dtype=bool)
        group = Group.from_mask(descriptor, toy_story_slice, mask)
        assert group.size == 0
        assert group.mean == 0.0
        assert group.variance == 0.0

    def test_coverage_fraction(self, toy_story_slice):
        descriptor = GroupDescriptor.from_dict({"gender": "F"})
        group = Group.from_mask(
            descriptor, toy_story_slice, toy_story_slice.mask_for("gender", "F")
        )
        assert group.coverage_fraction(len(toy_story_slice)) == pytest.approx(
            group.size / len(toy_story_slice)
        )
        assert group.coverage_fraction(0) == 0.0

    def test_groups_compare_by_descriptor(self, toy_story_slice):
        descriptor = GroupDescriptor.from_dict({"gender": "M"})
        first = Group.from_mask(
            descriptor, toy_story_slice, toy_story_slice.mask_for("gender", "M")
        )
        second = Group.from_mask(
            descriptor, toy_story_slice, toy_story_slice.mask_for("gender", "M")
        )
        assert first == second
        assert hash(first) == hash(second)

    def test_describe_contains_display_fields(self, toy_story_slice):
        descriptor = GroupDescriptor.from_dict({"gender": "M", "state": "CA"})
        group = Group.from_mask(
            descriptor,
            toy_story_slice,
            toy_story_slice.mask_for("gender", "M")
            & toy_story_slice.mask_for("state", "CA"),
        )
        info = group.describe(total=len(toy_story_slice))
        assert info["label"] == "male reviewers from California"
        assert info["state"] == "CA"
        assert 0 <= info["coverage"] <= 1
