"""Tests for the Randomized Hill Exploration solver."""

import pytest

from repro.config import MiningConfig
from repro.core.baselines import RandomSolver
from repro.core.problems import DiversityProblem, SimilarityProblem
from repro.core.rhe import RandomizedHillExploration
from repro.errors import InfeasibleProblemError


@pytest.fixture(scope="module")
def similarity_problem(toy_story_slice, toy_story_candidates, mining_config):
    return SimilarityProblem(toy_story_slice, toy_story_candidates, mining_config)


@pytest.fixture(scope="module")
def diversity_problem(toy_story_slice, toy_story_candidates, mining_config):
    return DiversityProblem(toy_story_slice, toy_story_candidates, mining_config)


class TestSolve:
    def test_returns_at_most_k_groups(self, similarity_problem, mining_config):
        result = RandomizedHillExploration(seed=1).solve(similarity_problem)
        assert 1 <= len(result.groups) <= mining_config.max_groups

    def test_solution_is_feasible_on_this_instance(self, similarity_problem):
        result = RandomizedHillExploration(restarts=8, seed=1).solve(similarity_problem)
        assert result.feasible
        assert similarity_problem.is_feasible(result.groups)

    def test_selected_groups_come_from_the_candidate_set(self, similarity_problem):
        result = RandomizedHillExploration(seed=1).solve(similarity_problem)
        candidate_descriptors = {c.descriptor for c in similarity_problem.candidates}
        assert all(g.descriptor in candidate_descriptors for g in result.groups)

    def test_no_duplicate_groups_in_the_selection(self, similarity_problem):
        result = RandomizedHillExploration(seed=3).solve(similarity_problem)
        descriptors = [g.descriptor for g in result.groups]
        assert len(descriptors) == len(set(descriptors))

    def test_deterministic_for_a_fixed_seed(self, similarity_problem):
        first = RandomizedHillExploration(seed=11).solve(similarity_problem)
        second = RandomizedHillExploration(seed=11).solve(similarity_problem)
        assert [g.descriptor for g in first.groups] == [g.descriptor for g in second.groups]
        assert first.objective == pytest.approx(second.objective)

    def test_objective_matches_problem_evaluation(self, similarity_problem):
        result = RandomizedHillExploration(seed=5).solve(similarity_problem)
        assert result.objective == pytest.approx(similarity_problem.objective(result.groups))

    def test_diversity_solution_disagrees(self, diversity_problem):
        result = RandomizedHillExploration(restarts=8, seed=1).solve(diversity_problem)
        means = [g.mean for g in result.groups]
        assert max(means) - min(means) > 0.3

    def test_rhe_beats_or_matches_a_random_selection(self, similarity_problem):
        rhe = RandomizedHillExploration(restarts=8, seed=1).solve(similarity_problem)
        random_result = RandomSolver(seed=1, attempts=1).solve(similarity_problem)
        rhe_score = similarity_problem.penalized_objective(rhe.groups)
        random_score = similarity_problem.penalized_objective(random_result.groups)
        assert rhe_score >= random_score

    def test_more_restarts_never_hurt(self, similarity_problem):
        few = RandomizedHillExploration(restarts=1, max_iterations=50, seed=9).solve(
            similarity_problem
        )
        many = RandomizedHillExploration(restarts=8, max_iterations=50, seed=9).solve(
            similarity_problem
        )
        assert similarity_problem.penalized_objective(many.groups) >= (
            similarity_problem.penalized_objective(few.groups) - 1e-9
        )

    def test_trace_records_one_entry_per_restart(self, similarity_problem):
        solver = RandomizedHillExploration(restarts=4, seed=2)
        result = solver.solve(similarity_problem)
        assert len(result.trace) == 4
        assert result.restarts == 4
        assert result.iterations > 0
        assert result.elapsed_seconds >= 0

    def test_groups_sorted_largest_first(self, similarity_problem):
        result = RandomizedHillExploration(seed=4).solve(similarity_problem)
        sizes = [g.size for g in result.groups]
        assert sizes == sorted(sizes, reverse=True)

    def test_describe_and_labels(self, similarity_problem):
        result = RandomizedHillExploration(seed=4).solve(similarity_problem)
        info = result.describe()
        assert info["solver"] == "rhe"
        assert len(result.labels()) == len(result.groups)


class TestConfiguration:
    def test_from_config_copies_solver_knobs(self):
        config = MiningConfig(rhe_restarts=3, rhe_max_iterations=77, seed=123)
        solver = RandomizedHillExploration.from_config(config)
        assert solver.restarts == 3
        assert solver.max_iterations == 77
        assert solver.seed == 123

    def test_problem_without_candidates_raises(self, toy_story_slice, mining_config):
        problem = SimilarityProblem(toy_story_slice, [], mining_config)
        with pytest.raises(InfeasibleProblemError):
            RandomizedHillExploration(seed=1).solve(problem)

    def test_solver_clamps_invalid_knobs(self):
        solver = RandomizedHillExploration(restarts=0, max_iterations=0, neighborhood_sample=0)
        assert solver.restarts == 1
        assert solver.max_iterations == 1
        assert solver.neighborhood_sample == 1
