"""Tests for the plain-text rendering of explanations."""

import pytest

from repro.viz.text import render_explanation_text, render_result_text


@pytest.fixture(scope="module")
def mining_result(tiny_miner):
    return tiny_miner.explain_title("Toy Story")


class TestExplanationText:
    def test_header_names_the_task_and_solver(self, mining_result):
        text = render_explanation_text(mining_result.similarity)
        assert text.startswith("Similarity Mining")
        assert "solver rhe" in text

    def test_every_group_gets_a_line_with_its_average(self, mining_result):
        explanation = mining_result.similarity
        text = render_explanation_text(explanation)
        lines = text.splitlines()
        assert len(lines) == 1 + len(explanation.groups)
        for group in explanation.groups:
            assert any(group.label in line for line in lines)
            assert any(f"avg {group.average_rating:.2f}" in line for line in lines)

    def test_likert_swatch_is_rendered(self, mining_result):
        text = render_explanation_text(mining_result.similarity)
        assert "[" in text and "]" in text

    def test_empty_explanation_is_handled(self, mining_result):
        from dataclasses import replace

        empty = replace(mining_result.similarity, groups=())
        text = render_explanation_text(empty)
        assert "no groups selected" in text


class TestResultText:
    def test_contains_query_summary_and_both_tasks(self, mining_result):
        text = render_result_text(mining_result)
        assert 'Query: title:"Toy Story"' in text
        assert "Similarity Mining" in text
        assert "Diversity Mining" in text
        assert "overall average" in text
