"""Tests for the HTML explanation and exploration reports."""

import pytest

from repro.explore.drilldown import DrillDown
from repro.explore.statistics import compare_groups, group_statistics
from repro.explore.timeline import TimelineExplorer
from repro.viz.report import ExplanationReport, ExplorationReport


@pytest.fixture(scope="module")
def mining_result(tiny_miner):
    return tiny_miner.explain_title("Toy Story")


class TestExplanationReport:
    def test_contains_both_mining_tabs(self, mining_result):
        html = ExplanationReport().render(mining_result)
        assert "<h2>Similarity Mining</h2>" in html
        assert "<h2>Diversity Mining</h2>" in html

    def test_contains_the_query_summary(self, mining_result):
        html = ExplanationReport().render(mining_result)
        assert "Toy Story" in html
        assert "Overall average" in html

    def test_contains_every_group_label(self, mining_result):
        html = ExplanationReport().render(mining_result)
        for explanation in mining_result.explanations():
            for group in explanation.groups:
                assert group.label in html

    def test_embeds_two_choropleth_svgs(self, mining_result):
        html = ExplanationReport().render(mining_result)
        assert html.count("<svg") == 2

    def test_is_a_complete_html_document(self, mining_result):
        html = ExplanationReport().render(mining_result)
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")

    def test_render_to_file(self, tmp_path, mining_result):
        path = tmp_path / "explanation.html"
        ExplanationReport().render_to_file(mining_result, str(path))
        assert path.exists() and path.stat().st_size > 1000


class TestExplorationReport:
    @pytest.fixture(scope="class")
    def rendered(self, tiny_miner, mining_result):
        group = mining_result.similarity.groups[0]
        rating_slice = tiny_miner.slice_for_items(mining_result.query.item_ids)
        statistics = group_statistics(rating_slice, group.pairs, label=group.label)
        comparisons = compare_groups(
            rating_slice,
            [g.pairs for g in mining_result.similarity.groups],
            labels=[g.label for g in mining_result.similarity.groups],
        )
        drilldown = DrillDown(rating_slice).drill(group.pairs)
        trend = TimelineExplorer(tiny_miner).group_trend(
            list(mining_result.query.item_ids), group.pairs
        )
        html = ExplorationReport().render(
            group=group,
            statistics=statistics,
            comparisons=comparisons,
            drilldown=drilldown,
            trend=trend,
        )
        return group, html

    def test_mentions_the_group_label(self, rendered):
        group, html = rendered
        assert group.label in html

    def test_contains_all_sections(self, rendered):
        _, html = rendered
        assert "Rating distribution" in html
        assert "Comparison with related groups" in html
        assert "City-level drill-down" in html
        assert "Evolution over time" in html

    def test_optional_sections_can_be_omitted(self, rendered, tiny_miner, mining_result):
        group = mining_result.similarity.groups[0]
        rating_slice = tiny_miner.slice_for_items(mining_result.query.item_ids)
        statistics = group_statistics(rating_slice, group.pairs, label=group.label)
        html = ExplorationReport().render(group=group, statistics=statistics)
        assert "Comparison with related groups" not in html
        assert "City-level drill-down" not in html

    def test_render_to_file(self, tmp_path, rendered, tiny_miner, mining_result):
        group = mining_result.similarity.groups[0]
        rating_slice = tiny_miner.slice_for_items(mining_result.query.item_ids)
        statistics = group_statistics(rating_slice, group.pairs, label=group.label)
        path = tmp_path / "exploration.html"
        ExplorationReport().render_to_file(
            str(path), group=group, statistics=statistics
        )
        assert path.exists()
