"""Tests for the SVG choropleth renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.config import MiningConfig, VizConfig
from repro.core.explanation import Explanation, GroupExplanation
from repro.errors import VisualizationError
from repro.viz.choropleth import ChoroplethMap, render_explanation_map
from repro.viz.color import LikertScale


def _explanation(groups):
    return Explanation(
        task="similarity",
        groups=tuple(groups),
        objective=-0.1,
        coverage=0.4,
        feasible=True,
        solver="rhe",
        solver_iterations=10,
        elapsed_seconds=0.01,
        within_error=1.0,
        disagreement=0.5,
    )


def _group(label, state, rating, pairs=None, size=12, coverage=0.1):
    return GroupExplanation(
        label=label,
        pairs=pairs or {"state": state},
        size=size,
        average_rating=rating,
        coverage=coverage,
        state=state,
        score_histogram={rating: size},
    )


@pytest.fixture(scope="module")
def mined_explanation(tiny_miner):
    return tiny_miner.explain_title("Toy Story").similarity


class TestRendering:
    def test_svg_is_well_formed_xml(self, mined_explanation):
        svg = render_explanation_map(mined_explanation)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_tile_per_state_plus_legend_and_captions(self, mined_explanation):
        svg = render_explanation_map(mined_explanation)
        root = ET.fromstring(svg)
        rects = root.findall(".//{http://www.w3.org/2000/svg}rect")
        # 51 state tiles + 9 legend swatches + one caption swatch per group.
        assert len(rects) == 51 + 9 + len(mined_explanation.groups)

    def test_selected_states_get_likert_colours(self):
        explanation = _explanation(
            [_group("lovers", "CA", 5.0), _group("haters", "NY", 1.0)]
        )
        svg = ChoroplethMap().render(explanation)
        scale = LikertScale()
        assert scale.color_for(5.0) in svg
        assert scale.color_for(1.0) in svg

    def test_unselected_states_use_the_missing_colour(self):
        config = VizConfig(missing_color="#ababab")
        explanation = _explanation([_group("lovers", "CA", 5.0)])
        svg = ChoroplethMap(config).render(explanation)
        assert "#ababab" in svg

    def test_captions_mention_the_group_labels(self):
        explanation = _explanation([_group("male reviewers from California", "CA", 4.5)])
        svg = ChoroplethMap().render(explanation)
        assert "male reviewers from California" in svg

    def test_title_override(self):
        explanation = _explanation([_group("g", "CA", 4.0)])
        svg = ChoroplethMap().render(explanation, title="Custom Heading")
        assert "Custom Heading" in svg

    def test_icons_can_be_disabled(self):
        group = _group(
            "male reviewers from California",
            "CA",
            4.5,
            pairs={"state": "CA", "gender": "M"},
        )
        with_icons = ChoroplethMap(VizConfig(show_icons=True)).render(_explanation([group]))
        without_icons = ChoroplethMap(VizConfig(show_icons=False)).render(_explanation([group]))
        assert with_icons.count("<circle") > without_icons.count("<circle")

    def test_group_without_state_is_rejected(self):
        group = GroupExplanation(
            label="male reviewers",
            pairs={"gender": "M"},
            size=10,
            average_rating=4.0,
            coverage=0.1,
            state=None,
        )
        with pytest.raises(VisualizationError):
            ChoroplethMap().render(_explanation([group]))

    def test_render_to_file(self, tmp_path, mined_explanation):
        path = tmp_path / "map.svg"
        ChoroplethMap().render_to_file(mined_explanation, str(path))
        assert path.exists()
        assert path.read_text(encoding="utf-8").startswith("<svg")
