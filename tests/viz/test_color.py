"""Tests for the red→green Likert colour scale."""

import pytest

from repro.errors import VisualizationError
from repro.viz.color import LikertScale, hex_to_rgb, rgb_to_hex


class TestHexConversion:
    def test_roundtrip(self):
        assert rgb_to_hex(hex_to_rgb("#8b0000")) == "#8b0000"
        assert hex_to_rgb("#006400") == (0, 100, 0)

    def test_hash_prefix_is_optional(self):
        assert hex_to_rgb("ff00ff") == (255, 0, 255)

    def test_invalid_hex_rejected(self):
        with pytest.raises(VisualizationError):
            hex_to_rgb("#12")
        with pytest.raises(VisualizationError):
            hex_to_rgb("#zzzzzz")

    def test_invalid_rgb_rejected(self):
        with pytest.raises(VisualizationError):
            rgb_to_hex((300, 0, 0))


class TestLikertScale:
    def test_endpoints_match_the_paper_colours(self):
        scale = LikertScale()
        assert scale.color_for(1.0) == "#8b0000"  # dark red, worst rating
        assert scale.color_for(5.0) == "#006400"  # dark green, best rating

    def test_out_of_scale_ratings_are_clamped(self):
        scale = LikertScale()
        assert scale.color_for(0.0) == scale.color_for(1.0)
        assert scale.color_for(9.0) == scale.color_for(5.0)

    def test_fraction_is_monotone(self):
        scale = LikertScale()
        fractions = [scale.fraction(r) for r in (1, 2, 3, 4, 5)]
        assert fractions == sorted(fractions)
        assert fractions[0] == 0.0 and fractions[-1] == 1.0

    def test_green_channel_increases_with_the_rating(self):
        scale = LikertScale()
        greens = [hex_to_rgb(scale.color_for(r))[1] for r in (1, 2, 3, 4, 5)]
        assert greens == sorted(greens)
        reds = [hex_to_rgb(scale.color_for(r))[0] for r in (1, 2, 3, 4, 5)]
        assert reds == sorted(reds, reverse=True)

    def test_legend_stops(self):
        stops = LikertScale().legend_stops(steps=5)
        assert len(stops) == 5
        assert stops[0][0] == 1.0 and stops[-1][0] == 5.0
        with pytest.raises(VisualizationError):
            LikertScale().legend_stops(steps=1)

    def test_invalid_scale_rejected(self):
        with pytest.raises(VisualizationError):
            LikertScale(minimum=5, maximum=1)
        with pytest.raises(VisualizationError):
            LikertScale(low_color="#xyz")

    def test_text_swatch_ladder(self):
        scale = LikertScale()
        assert scale.text_swatch(1.0) == "-"
        assert scale.text_swatch(5.0) == "#"
        assert scale.text_swatch(3.0) in "~=+"
