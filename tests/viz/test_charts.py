"""Tests for the SVG chart renderers."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import VisualizationError
from repro.viz.charts import render_bar_chart, render_histogram, render_trend_chart

SVG_NS = "{http://www.w3.org/2000/svg}"


def _parse(svg):
    return ET.fromstring(svg)


class TestHistogram:
    def test_one_bar_per_score_value(self):
        svg = render_histogram({1: 3, 2: 0, 3: 5, 4: 10, 5: 2})
        root = _parse(svg)
        bars = root.findall(f".//{SVG_NS}rect")
        assert len(bars) == 5

    def test_counts_appear_as_labels(self):
        svg = render_histogram({5: 42})
        assert ">42<" in svg

    def test_accepts_float_keys(self):
        svg = render_histogram({4.0: 7, 5.0: 3})
        assert ">7<" in svg and ">3<" in svg

    def test_title_is_rendered(self):
        svg = render_histogram({3: 1}, title="my distribution")
        assert "my distribution" in svg


class TestBarChart:
    def test_one_bar_per_row(self):
        rows = [("california", 4.2), ("new york", 3.1), ("texas", 2.5)]
        root = _parse(render_bar_chart(rows))
        bars = root.findall(f".//{SVG_NS}rect")
        assert len(bars) == 3

    def test_labels_and_values_rendered(self):
        svg = render_bar_chart([("male reviewers", 4.25)])
        assert "male reviewers" in svg
        assert "4.25" in svg

    def test_empty_rows_rejected(self):
        with pytest.raises(VisualizationError):
            render_bar_chart([])

    def test_values_capped_at_max_value(self):
        svg_capped = render_bar_chart([("a", 10.0)], max_value=5.0)
        root = _parse(svg_capped)
        bar = root.findall(f".//{SVG_NS}rect")[0]
        svg_reference = render_bar_chart([("a", 5.0)], max_value=5.0)
        reference_bar = _parse(svg_reference).findall(f".//{SVG_NS}rect")[0]
        assert float(bar.get("width")) == pytest.approx(float(reference_bar.get("width")))


class TestTrendChart:
    def test_one_marker_per_point_and_a_polyline(self):
        points = [(2000, 4.5), (2001, 4.0), (2002, 3.2), (2003, 2.4)]
        root = _parse(render_trend_chart(points))
        circles = root.findall(f".//{SVG_NS}circle")
        polylines = root.findall(f".//{SVG_NS}polyline")
        assert len(circles) == 4
        assert len(polylines) == 1

    def test_years_appear_on_the_axis(self):
        svg = render_trend_chart([(2000, 4.5), (2003, 2.0)])
        assert ">2000<" in svg and ">2003<" in svg

    def test_single_point_series_renders(self):
        svg = render_trend_chart([(2001, 3.0)])
        assert "<circle" in svg

    def test_empty_series_rejected(self):
        with pytest.raises(VisualizationError):
            render_trend_chart([])

    def test_well_formed_xml(self):
        root = _parse(render_trend_chart([(2000, 1.0), (2001, 5.0)]))
        assert root.tag.endswith("svg")
