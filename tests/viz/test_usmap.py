"""Tests for the tile-grid layout of the US map."""

from repro.geo.states import states
from repro.viz.usmap import TileGridLayout


class TestLayout:
    def test_one_tile_per_state(self):
        layout = TileGridLayout()
        tiles = list(layout.tiles())
        assert len(tiles) == 51
        assert len({tile.state for tile in tiles}) == 51

    def test_tiles_do_not_overlap(self):
        layout = TileGridLayout(tile_size=40, padding=4)
        tiles = list(layout.tiles())
        for i, first in enumerate(tiles):
            for second in tiles[i + 1 :]:
                horizontal_gap = abs(first.x - second.x) >= first.size
                vertical_gap = abs(first.y - second.y) >= first.size
                assert horizontal_gap or vertical_gap

    def test_all_tiles_fit_on_the_canvas(self):
        layout = TileGridLayout()
        width, height = layout.canvas_size()
        for tile in layout.tiles():
            assert 0 <= tile.x and tile.x + tile.size <= width
            assert 0 <= tile.y and tile.y + tile.size <= height

    def test_tile_center(self):
        layout = TileGridLayout(tile_size=40)
        tile = layout.tiles_by_code()["CA"]
        cx, cy = tile.center
        assert cx == tile.x + 20
        assert cy == tile.y + 20

    def test_tile_size_scales_the_canvas(self):
        small = TileGridLayout(tile_size=20).canvas_size()
        large = TileGridLayout(tile_size=60).canvas_size()
        assert large[0] > small[0] and large[1] > small[1]

    def test_tiles_by_code_covers_every_state(self):
        layout = TileGridLayout()
        by_code = layout.tiles_by_code()
        assert set(by_code) == {state.code for state in states()}
