"""Tests for attribute icons and age-band pin colours."""

from repro.core.groups import GroupDescriptor
from repro.viz.icons import (
    AGE_PIN_COLORS,
    icon_for_pair,
    icons_for_descriptor,
    pin_color_for_age,
)


class TestIconForPair:
    def test_gender_icons(self):
        assert icon_for_pair("gender", "M")[1] == "male"
        assert icon_for_pair("gender", "F")[1] == "female"

    def test_known_occupation_icon(self):
        glyph, text = icon_for_pair("occupation", "programmer")
        assert text == "programmer"
        assert glyph

    def test_unknown_occupation_falls_back_to_generic_icon(self):
        assert icon_for_pair("occupation", "astronaut")[1] == "occupation"

    def test_age_and_location_pairs(self):
        assert icon_for_pair("age_group", "18-24")[1] == "18-24"
        assert icon_for_pair("state", "CA")[1] == "CA"
        assert icon_for_pair("city", "Boston")[1] == "Boston"

    def test_unrecognised_attribute(self):
        glyph, text = icon_for_pair("shoe_size", "42")
        assert "shoe_size" in text


class TestPinColors:
    def test_every_age_band_has_a_distinct_pin_colour(self):
        assert len(set(AGE_PIN_COLORS.values())) == len(AGE_PIN_COLORS)

    def test_pin_color_lookup(self):
        assert pin_color_for_age("Under 18") == AGE_PIN_COLORS["Under 18"]
        assert pin_color_for_age(None) not in AGE_PIN_COLORS.values()
        assert pin_color_for_age("not a band") == pin_color_for_age(None)


class TestDescriptorIcons:
    def test_state_pair_is_not_annotated(self):
        descriptor = GroupDescriptor.from_dict({"gender": "M", "state": "CA"})
        annotations = icons_for_descriptor(descriptor)
        assert len(annotations) == 1
        assert annotations[0]["attribute"] == "gender"

    def test_pin_colour_reflects_the_age_band(self):
        descriptor = GroupDescriptor.from_dict(
            {"gender": "F", "age_group": "Under 18", "state": "NY"}
        )
        annotations = icons_for_descriptor(descriptor)
        assert all(a["pin_color"] == AGE_PIN_COLORS["Under 18"] for a in annotations)

    def test_every_annotation_has_glyph_and_text(self):
        descriptor = GroupDescriptor.from_dict(
            {"gender": "M", "occupation": "lawyer", "age_group": "35-44", "state": "TX"}
        )
        for annotation in icons_for_descriptor(descriptor):
            assert annotation["glyph"]
            assert annotation["text"]
