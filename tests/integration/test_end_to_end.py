"""End-to-end scenarios reproducing the paper's narrative on synthetic data.

These tests exercise the full pipeline (query → mining → exploration →
visualization) the way the demo walkthrough of §3 does, and check the
qualitative claims of the paper:

* Figure 2: the Similarity Mining result for "Toy Story" consists of a few
  geo-anchored, internally consistent groups that include the planted
  "male reviewers from California" segment, rendered on a choropleth.
* §1 (Twilight example): Diversity Mining on the planted controversial movie
  surfaces groups that strongly disagree, with female groups above male ones.
* §3.1 (time slider): the interpretation of the planted drifting movie
  changes over the years.
"""

import pytest

from repro.config import MiningConfig, PipelineConfig
from repro.server.api import MapRat
from repro.viz.choropleth import render_explanation_map
from repro.viz.report import ExplanationReport


@pytest.fixture(scope="module")
def small_system(small_dataset):
    config = PipelineConfig(
        mining=MiningConfig(min_group_support=5, min_coverage=0.25, rhe_restarts=6)
    )
    return MapRat.for_dataset(small_dataset, config)


class TestFigure2ToyStory:
    @pytest.fixture(scope="class")
    def result(self, small_system):
        return small_system.explain('title:"Toy Story"')

    def test_a_small_number_of_geo_anchored_groups(self, result):
        for explanation in result.explanations():
            assert 1 <= len(explanation.groups) <= 3
            assert all(group.state for group in explanation.groups)

    def test_similarity_groups_cover_the_required_fraction(self, result):
        assert result.similarity.coverage >= 0.25
        assert result.similarity.feasible

    def test_similarity_groups_are_internally_consistent(self, result, small_system):
        rating_slice = small_system.miner.slice_for_items(result.query.item_ids)
        overall_variance = float(rating_slice.scores.var())
        # The SM objective is the negated per-tuple within-group error, so the
        # selected groups must not be noisier than the undivided rating set.
        assert -result.similarity.objective <= overall_variance + 0.05

    def test_planted_california_males_rate_above_the_overall_average(
        self, result, small_system
    ):
        from repro.explore.statistics import group_statistics

        rating_slice = small_system.miner.slice_for_items(result.query.item_ids)
        planted = group_statistics(rating_slice, {"gender": "M", "state": "CA"})
        assert planted.lift > 0.2

    def test_choropleth_renders_every_similarity_group(self, result):
        svg = render_explanation_map(result.similarity)
        for group in result.similarity.groups:
            assert group.label in svg

    def test_full_html_report_regenerates(self, result, tmp_path):
        path = tmp_path / "figure2.html"
        ExplanationReport().render_to_file(result, str(path))
        content = path.read_text(encoding="utf-8")
        assert "Similarity Mining" in content and "Diversity Mining" in content


class TestControversialMovieDiversity:
    """§1: DM identifies sub-populations that consistently disagree."""

    @pytest.fixture(scope="class")
    def result(self, small_system):
        # The paper's DM example uses demographic (not geographic) groups, so
        # relax the geo anchor for this scenario.
        config = MiningConfig(
            min_group_support=5,
            min_coverage=0.2,
            require_geo_anchor=False,
            grouping_attributes=("gender", "age_group", "occupation"),
            rhe_restarts=6,
        )
        return small_system.explain('title:"The Twilight Saga: Eclipse"', config=config)

    def test_diversity_groups_strongly_disagree(self, result):
        means = [group.average_rating for group in result.diversity.groups]
        assert max(means) - min(means) > 1.0

    def test_diversity_selection_has_a_large_mean_gap(self, result):
        assert result.diversity.disagreement > 1.0

    def test_female_groups_sit_above_male_groups_when_both_appear(self, result, small_system):
        from repro.explore.statistics import group_statistics

        rating_slice = small_system.miner.slice_for_items(result.query.item_ids)
        female_teens = group_statistics(
            rating_slice, {"gender": "F", "age_group": "Under 18"}
        )
        male_teens = group_statistics(
            rating_slice, {"gender": "M", "age_group": "Under 18"}
        )
        assert female_teens.mean - male_teens.mean > 1.0


class TestTimeSliderScenario:
    """§3.1: moving the slider changes the interpretations."""

    def test_drifting_star_interpretations_change_over_time(self, small_system):
        slices = small_system.timeline('title:"Drifting Star"', min_ratings=20)
        mined = [s for s in slices if s.result is not None]
        assert len(mined) >= 2
        first, last = mined[0], mined[-1]
        first_avg = first.result.query.average_rating
        last_avg = last.result.query.average_rating
        assert first_avg - last_avg > 1.0

    def test_group_trend_is_consistent_with_the_timeline(self, small_system):
        trend = small_system.group_trend('title:"Drifting Star"', {})
        assert trend[0].mean > trend[-1].mean


class TestSessionWalkthrough:
    """The full §3 demo walkthrough as one scripted interaction."""

    def test_search_explain_select_drill_trend(self, small_system):
        session = small_system.session()
        items = session.search('genre:Thriller AND director:"Steven Spielberg"')
        assert {item.title for item in items} >= {"Jurassic Park", "Jaws", "Minority Report"}
        result = session.explain()
        assert result.similarity.groups
        group = session.select_group(0, task="similarity")
        stats = session.group_statistics()
        assert stats.size == group.size
        drill = session.drill_down()
        assert sum(agg.statistics.size for agg in drill) == stats.size
        trend = session.group_trend()
        assert trend
        assert len(session.history()) >= 4
