"""Integration test: exported MovieLens files feed back into the full pipeline."""

import pytest

from repro.config import MiningConfig, PipelineConfig
from repro.data.movielens import load_movielens_directory, write_movielens_directory
from repro.server.api import MapRat


@pytest.fixture(scope="module")
def reloaded_system(tiny_dataset, mining_config, tmp_path_factory):
    directory = tmp_path_factory.mktemp("ml-roundtrip")
    write_movielens_directory(tiny_dataset, directory)
    reloaded = load_movielens_directory(directory, name="reloaded")
    return MapRat.for_dataset(reloaded, PipelineConfig(mining=mining_config))


class TestReloadedPipeline:
    def test_reloaded_dataset_has_the_same_shape(self, reloaded_system, tiny_dataset):
        summary = reloaded_system.summary()
        assert summary["ratings"] == tiny_dataset.num_ratings
        assert summary["reviewers"] == tiny_dataset.num_reviewers

    def test_mining_on_the_reloaded_dataset_matches_the_original(
        self, reloaded_system, tiny_system
    ):
        original = tiny_system.explain('title:"Toy Story"')
        reloaded = reloaded_system.explain('title:"Toy Story"')
        assert reloaded.query.num_ratings == original.query.num_ratings
        assert reloaded.query.average_rating == pytest.approx(
            original.query.average_rating, abs=1e-6
        )
        # The mining configuration and the seed are identical, so the selected
        # groups must be identical too (the pipeline is deterministic).
        assert [g.label for g in reloaded.similarity.groups] == [
            g.label for g in original.similarity.groups
        ]

    def test_exploration_works_on_the_reloaded_dataset(self, reloaded_system):
        aggregates = reloaded_system.drill_down('title:"Toy Story"', "similarity", 0)
        assert aggregates
