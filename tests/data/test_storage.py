"""Tests for the indexed rating store and the columnar rating slice."""

import numpy as np
import pytest

from repro.data.model import Item, Rating, RatingDataset, Reviewer
from repro.data.storage import RatingStore
from repro.errors import DataError, EmptyRatingSetError


@pytest.fixture(scope="module")
def store():
    reviewers = [
        Reviewer(1, "M", 25, "programmer", "94110", state="CA", city="San Francisco"),
        Reviewer(2, "F", 1, "K-12 student", "10001", state="NY", city="New York"),
        Reviewer(3, "M", 45, "lawyer", "60601", state="IL", city="Chicago"),
    ]
    items = [Item(10, "Alpha"), Item(20, "Beta"), Item(30, "Unrated")]
    ratings = [
        Rating(10, 1, 5.0, timestamp=1_000),
        Rating(10, 2, 1.0, timestamp=2_000),
        Rating(10, 3, 3.0, timestamp=3_000),
        Rating(20, 1, 4.0, timestamp=4_000),
        Rating(20, 2, 4.0, timestamp=5_000),
    ]
    dataset = RatingDataset(reviewers, items, ratings, name="storage-unit")
    return RatingStore(dataset)


class TestRatingStore:
    def test_sizes_and_counts(self, store):
        assert len(store) == 5
        assert store.item_rating_count(10) == 3
        assert store.item_rating_count(30) == 0
        assert store.item_rating_count(999) == 0

    def test_most_rated_items_sorted_by_popularity(self, store):
        assert store.most_rated_items(limit=2) == [(10, 3), (20, 2)]

    def test_item_and_global_average(self, store):
        assert store.item_average(10) == pytest.approx(3.0)
        assert store.item_average(30) == 0.0
        assert store.global_average() == pytest.approx(17 / 5)

    def test_slice_collects_only_requested_items(self, store):
        rating_slice = store.slice_for_items([10])
        assert len(rating_slice) == 3
        assert set(rating_slice.item_ids.tolist()) == {10}

    def test_slice_multiple_items(self, store):
        rating_slice = store.slice_for_items([10, 20])
        assert len(rating_slice) == 5

    def test_empty_selection_raises_unless_allowed(self, store):
        with pytest.raises(EmptyRatingSetError):
            store.slice_for_items([30])
        empty = store.slice_for_items([30], allow_empty=True)
        assert empty.is_empty()
        assert empty.average() == 0.0

    def test_time_interval_restriction(self, store):
        rating_slice = store.slice_for_items([10, 20], time_interval=(2_000, 4_000))
        assert len(rating_slice) == 3
        assert rating_slice.timestamps.min() >= 2_000
        assert rating_slice.timestamps.max() <= 4_000

    def test_slice_all_covers_everything(self, store):
        assert len(store.slice_all()) == 5


class TestRatingSlice:
    def test_attribute_columns_follow_the_rater(self, store):
        rating_slice = store.slice_for_items([10])
        states = rating_slice.attribute_values("state").tolist()
        assert sorted(states) == ["CA", "IL", "NY"]

    def test_mask_for_attribute_value(self, store):
        rating_slice = store.slice_for_items([10, 20])
        mask = rating_slice.mask_for("gender", "F")
        assert int(mask.sum()) == 2

    def test_unknown_attribute_column_raises(self, store):
        rating_slice = store.slice_for_items([10])
        with pytest.raises(DataError):
            rating_slice.attribute_values("favourite_color")

    def test_distinct_values_sorted_and_nonempty(self, store):
        rating_slice = store.slice_for_items([10, 20])
        assert rating_slice.distinct_values("state") == ["CA", "IL", "NY"]

    def test_restrict_by_mask(self, store):
        rating_slice = store.slice_for_items([10, 20])
        males = rating_slice.restrict(rating_slice.mask_for("gender", "M"))
        assert len(males) == 3
        assert set(males.attribute_values("gender").tolist()) == {"M"}

    def test_restrict_keeps_unfactorized_string_columns(self):
        """A partially factorized string-built slice must not lose columns."""
        from repro.data.storage import RatingSlice

        rating_slice = RatingSlice(
            item_ids=np.array([1, 1, 1]),
            reviewer_ids=np.array([1, 2, 3]),
            scores=np.array([5.0, 1.0, 3.0]),
            timestamps=np.array([0, 1, 2]),
            attribute_columns={
                "gender": np.array(["M", "F", "M"], dtype=object),
                "age": np.array(["young", "old", "old"], dtype=object),
            },
        )
        mask = rating_slice.mask_for("gender", "M")  # factorizes only 'gender'
        restricted = rating_slice.restrict(mask)
        assert restricted.attribute_values("age").tolist() == ["young", "old"]
        assert restricted.distinct_values("age") == ["old", "young"]

    def test_restrict_to_interval_validates_order(self, store):
        rating_slice = store.slice_for_items([10])
        with pytest.raises(DataError):
            rating_slice.restrict_to_interval(100, 50)

    def test_score_histogram(self, store):
        rating_slice = store.slice_for_items([10, 20])
        histogram = rating_slice.score_histogram()
        assert histogram[4.0] == 2
        assert histogram[1.0] == 1
        assert histogram[2.0] == 0

    def test_average(self, store):
        rating_slice = store.slice_for_items([20])
        assert rating_slice.average() == pytest.approx(4.0)

    def test_years_from_timestamps(self, store):
        rating_slice = store.slice_for_items([10, 20])
        assert rating_slice.years() == [1970]


class TestStoreOnSyntheticData:
    def test_grouping_columns_cover_all_tuples(self, tiny_store):
        rating_slice = tiny_store.slice_all()
        for attribute in ("gender", "age_group", "occupation", "state", "city"):
            column = rating_slice.attribute_values(attribute)
            assert column.shape[0] == len(rating_slice)
            assert all(isinstance(value, str) for value in column.tolist())

    def test_item_index_matches_dataset_counts(self, tiny_store, tiny_dataset):
        counts = tiny_dataset.rating_counts_by_item()
        for item_id, count in list(counts.items())[:20]:
            assert tiny_store.item_rating_count(item_id) == count
