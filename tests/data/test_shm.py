"""Shared-memory store export/attach: zero-copy fidelity and lifecycle."""

from __future__ import annotations

import pickle
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.config import MiningConfig
from repro.core.miner import RatingMiner
from repro.data.shm import SharedStoreExport, attach_store, detach_store
from repro.data.storage import RatingStore
from repro.errors import DataError


@pytest.fixture()
def exported(tiny_dataset):
    """A store with one built index, exported; released after the test."""
    store = RatingStore(tiny_dataset)
    store.attribute_index("state")  # built indexes must travel too
    export = SharedStoreExport(store)
    yield store, export
    export.release()


class TestExportAttachRoundTrip:
    def test_base_columns_and_codes_are_byte_identical(self, exported):
        store, export = exported
        attached = attach_store(export.manifest)
        try:
            assert np.array_equal(attached._item_ids, store._item_ids)
            assert np.array_equal(attached._reviewer_ids, store._reviewer_ids)
            assert np.array_equal(attached._scores, store._scores)
            assert np.array_equal(attached._timestamps, store._timestamps)
            for name in store.grouping_attributes:
                assert np.array_equal(attached.codes_for(name), store.codes_for(name))
                assert attached.codes_for(name).dtype == store.codes_for(name).dtype
                assert list(attached.vocabulary_for(name)) == list(
                    store.vocabulary_for(name)
                )
        finally:
            detach_store(attached)

    def test_item_index_round_trips_per_item(self, exported):
        store, export = exported
        attached = attach_store(export.manifest)
        try:
            assert set(attached._positions_by_item) == set(store._positions_by_item)
            for item_id, positions in store._positions_by_item.items():
                assert np.array_equal(attached._positions_by_item[item_id], positions)
        finally:
            detach_store(attached)

    def test_built_attribute_index_round_trips(self, exported):
        store, export = exported
        attached = attach_store(export.manifest)
        try:
            ours, theirs = attached.attribute_index("state"), store.attribute_index("state")
            assert ours.num_rows == theirs.num_rows
            for name in ("counts", "sums", "positives", "negatives", "joint", "bits"):
                assert np.array_equal(getattr(ours, name), getattr(theirs, name)), name
        finally:
            detach_store(attached)

    def test_unbuilt_index_is_rebuilt_identically_on_the_attached_store(self, exported):
        store, export = exported
        attached = attach_store(export.manifest)
        try:
            assert "city" not in export.manifest.indexes  # never built pre-export
            ours, theirs = attached.attribute_index("city"), store.attribute_index("city")
            assert np.array_equal(ours.counts, theirs.counts)
            assert np.array_equal(ours.bits, theirs.bits)
        finally:
            detach_store(attached)

    def test_attached_arrays_are_read_only_views(self, exported):
        _, export = exported
        attached = attach_store(export.manifest)
        try:
            assert not attached._scores.flags.writeable
            assert not attached.codes_for("state").flags.writeable
            with pytest.raises(ValueError):
                attached._scores[0] = 99.0
        finally:
            detach_store(attached)

    def test_mining_on_the_attached_store_matches_the_source(
        self, exported, tiny_dataset
    ):
        store, export = exported
        config = MiningConfig(min_group_support=3, min_coverage=0.2, rhe_restarts=3)
        item_ids = [item.item_id for item in tiny_dataset.items_by_title("Toy Story")]
        attached = attach_store(export.manifest)
        try:
            reference = RatingMiner(store, config)
            shadow = RatingMiner(attached, config)
            for mine in ("mine_similarity", "mine_diversity"):
                ours = getattr(shadow, mine)(attached.slice_for_items(item_ids), config)
                theirs = getattr(reference, mine)(store.slice_for_items(item_ids), config)
                ours_d, theirs_d = ours.to_dict(), theirs.to_dict()
                ours_d.pop("elapsed_seconds", None)
                theirs_d.pop("elapsed_seconds", None)
                assert ours_d == theirs_d
        finally:
            detach_store(attached)


class TestLifecycle:
    def test_manifest_is_small_and_picklable(self, exported):
        store, export = exported
        payload = pickle.dumps(export.manifest)
        # Row data must not travel with the manifest: its pickle stays tiny
        # next to the exported segment (vocabularies are the largest part).
        assert len(payload) < max(4096, export.nbytes // 4)
        assert pickle.loads(payload).epoch == store.epoch

    def test_release_unlinks_the_segment(self, tiny_store):
        export = SharedStoreExport(tiny_store)
        name = export.segment_name
        export.release()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        export.release()  # idempotent

    def test_attach_after_release_raises_data_error(self, tiny_store):
        export = SharedStoreExport(tiny_store)
        manifest = export.manifest
        export.release()
        with pytest.raises(DataError, match="retired"):
            attach_store(manifest)

    def test_attached_views_survive_unlink_until_detach(self, tiny_store):
        export = SharedStoreExport(tiny_store)
        attached = attach_store(export.manifest)
        export.release()  # POSIX: the mapping outlives the name
        try:
            assert float(attached._scores.sum()) == float(tiny_store._scores.sum())
        finally:
            detach_store(attached)

    def test_two_exports_of_one_store_are_byte_identical(self, tiny_store):
        first, second = SharedStoreExport(tiny_store), SharedStoreExport(tiny_store)
        try:
            assert bytes(first._shm.buf) == bytes(second._shm.buf)
            refs = lambda m: {  # noqa: E731 - local shorthand
                "base": m.base, "codes": m.codes,
                "table": m.item_table, "positions": m.item_positions,
            }
            assert refs(first.manifest) == refs(second.manifest)
        finally:
            first.release()
            second.release()
