"""Unit tests for the materialised cuboid lattice.

Covers the four layers independently of the enumerator fast path (which has
its own differential battery in ``tests/property/test_property_lattice.py``):

* **build correctness** — every cuboid's cells match a brute-force pandas-free
  groupby over the store's code columns: same keys (lexicographic order),
  counts, sums, and CSR member positions (ascending per cell, a permutation
  of ``arange(num_rows)`` overall);
* **incremental maintenance** — compacting a :class:`LiveStore` carries the
  lattice forward bit-identically to rebuilding it from the compacted store;
* **hint plumbing** — slices cut from a lattice-carrying store advertise the
  right :class:`LatticeHint` mode (whole-store / restrict / scan), and
  restriction downgrades the hint;
* **serving integration** — the config/budget gate in :class:`MapRat` and the
  shared-memory manifest round-trip.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.config import GEO_ATTRIBUTE, ConstraintError, PipelineConfig, ServerConfig
from repro.data.ingest import LiveStore
from repro.data.lattice import (
    DEFAULT_LATTICE_ATTRIBUTES,
    CuboidLattice,
    LatticeHint,
)
from repro.data.model import Rating, Reviewer
from repro.data.shm import SharedStoreExport, attach_store, detach_store
from repro.data.storage import RatingStore
from repro.geo.explorer import GeoExplorer
from repro.server.api import MapRat


@pytest.fixture(scope="module")
def lattice_store(tiny_dataset):
    """A store with a freshly built lattice (module-local, mutated by nobody)."""
    store = RatingStore(tiny_dataset)
    store.attach_lattice(CuboidLattice.build(store))
    return store


def brute_force_cells(store, attrs):
    """Reference groupby: ``{key_tuple: (count, sum, positions)}`` via dicts."""
    columns = [store.codes_for(a) for a in attrs]
    scores = store.slice_all().scores
    cells = {}
    for row in range(len(store)):
        key = tuple(int(column[row]) for column in columns)
        count, total, positions = cells.setdefault(key, (0, 0.0, []))
        positions.append(row)
        cells[key] = (count + 1, total + float(scores[row]), positions)
    return cells


class TestBuild:
    def test_every_cuboid_matches_brute_force(self, lattice_store):
        lattice = lattice_store.lattice()
        assert lattice.num_cuboids == len(
            CuboidLattice.combinations(lattice.attributes)
        )
        for combo, cub in lattice.cuboids.items():
            expected = brute_force_cells(lattice_store, combo)
            assert cub.num_cells == len(expected)
            # Cells are sorted lexicographically by their code tuple.
            keys = [tuple(int(v) for v in row) for row in cub.keys]
            assert keys == sorted(expected)
            for index, key in enumerate(keys):
                count, total, positions = expected[key]
                assert int(cub.counts[index]) == count
                assert float(cub.sums[index]) == total  # binary-exact scores
                assert cub.cell_positions(index).tolist() == positions

    def test_positions_are_a_permutation_per_cuboid(self, lattice_store):
        lattice = lattice_store.lattice()
        everyone = np.arange(len(lattice_store), dtype=np.int64)
        for cub in lattice.cuboids.values():
            assert np.array_equal(np.sort(cub.positions), everyone)
            assert int(cub.offsets[-1]) == len(lattice_store)

    def test_packed_bits_matches_membership_mask(self, lattice_store):
        lattice = lattice_store.lattice()
        cub = lattice.cells_for(("gender", "state"))
        num_rows = len(lattice_store)
        for index in range(min(cub.num_cells, 10)):
            member = np.zeros(num_rows, dtype=bool)
            member[cub.cell_positions(index)] = True
            assert np.array_equal(cub.packed_bits(index, num_rows), np.packbits(member))

    def test_default_attributes_exclude_zipcode(self, lattice_store):
        lattice = lattice_store.lattice()
        assert "zipcode" not in lattice.attributes
        assert lattice.attributes == tuple(
            a
            for a in lattice_store.grouping_attributes
            if a in DEFAULT_LATTICE_ATTRIBUTES
        )


class TestCombinations:
    def test_all_subsets_up_to_arity_plus_region_extension(self):
        attrs = ("gender", "age_group", "occupation", "state", "city")
        combos = CuboidLattice.combinations(attrs, max_arity=3)
        sized = {}
        for combo in combos:
            sized.setdefault(len(combo), []).append(combo)
        for size in (1, 2, 3):
            assert sorted(sized[size]) == sorted(itertools.combinations(attrs, size))
        # Size-4 cuboids exist only for combinations containing the region
        # attribute (they serve region-restricted mining at full depth).
        assert all(GEO_ATTRIBUTE in combo for combo in sized[4])
        assert len(sized[4]) == len(
            [c for c in itertools.combinations(attrs, 4) if GEO_ATTRIBUTE in c]
        )
        assert 5 not in sized

    def test_cells_for_canonicalises_attribute_order(self, lattice_store):
        lattice = lattice_store.lattice()
        forward = lattice.cells_for(("gender", "state"))
        backward = lattice.cells_for(("state", "gender"))
        assert forward is backward is not None
        assert lattice.cells_for(("gender", "not_an_attribute")) is None
        assert lattice.cells_for(("zipcode",)) is None  # outside the universe


class TestIncrementalMaintenance:
    def test_compaction_carry_equals_rebuild(self, tiny_dataset):
        base = RatingStore(tiny_dataset)
        base.attach_lattice(CuboidLattice.build(base))
        live = LiveStore(base, use_incremental=True)
        rng = np.random.default_rng(7)
        item_ids = [item.item_id for item in tiny_dataset.items()]
        reviewer_ids = [r.reviewer_id for r in tiny_dataset.reviewers()]
        for round_index in range(3):
            for _ in range(20):
                live.ingest(
                    Rating(
                        item_id=int(rng.choice(item_ids)),
                        reviewer_id=int(rng.choice(reviewer_ids)),
                        score=float(rng.integers(1, 6)),
                        timestamp=int(rng.integers(0, 2_000_000_000)),
                    )
                )
            # A brand-new reviewer with an unseen zip code grows the city /
            # state vocabularies, exercising the monotone key remap.
            reviewer = Reviewer(
                reviewer_id=800_000 + round_index,
                gender="F",
                age=25,
                occupation="programmer",
                zipcode=("99501", "96801", "82001")[round_index],
            )
            live.ingest(
                Rating(item_ids[0], reviewer.reviewer_id, 4.0, 123), reviewer
            )
            live.compact()
            carried = live.snapshot.lattice()
            assert carried is not None
            assert carried.epoch == live.snapshot.epoch
            assert carried.num_rows == len(live.snapshot)
            rebuilt = CuboidLattice.build(live.snapshot)
            assert set(carried.cuboids) == set(rebuilt.cuboids)
            for combo, left in carried.cuboids.items():
                right = rebuilt.cuboids[combo]
                assert left.dims == right.dims, combo
                for name in ("keys", "counts", "sums", "offsets", "positions"):
                    assert np.array_equal(
                        getattr(left, name), getattr(right, name)
                    ), (combo, name)

    def test_store_without_lattice_stays_without(self, tiny_dataset):
        live = LiveStore(RatingStore(tiny_dataset), use_incremental=True)
        item = next(tiny_dataset.items())
        reviewer = next(tiny_dataset.reviewers())
        live.ingest(Rating(item.item_id, reviewer.reviewer_id, 3.0, 99))
        live.compact()
        assert live.snapshot.lattice() is None


class TestHintPlumbing:
    def test_no_lattice_means_no_hint(self, tiny_dataset):
        store = RatingStore(tiny_dataset)
        assert store.slice_all().lattice_hint is None

    def test_slice_all_advertises_whole_store(self, lattice_store):
        hint = lattice_store.slice_all().lattice_hint
        assert isinstance(hint, LatticeHint)
        assert hint.whole_store
        assert hint.lattice is lattice_store.lattice()

    def test_item_slice_carries_no_hint(self, lattice_store, tiny_dataset):
        # Arbitrary subsets stay on the DFS kernel — the lattice only wins
        # on the whole-store and region shapes.
        items = tiny_dataset.items_by_title("Toy Story")
        rating_slice = lattice_store.slice_for_items([i.item_id for i in items])
        assert rating_slice.lattice_hint is None

    def test_restrict_drops_the_hint(self, lattice_store):
        whole = lattice_store.slice_all()
        mask = whole.mask_for("gender", "F")
        assert whole.restrict(mask).lattice_hint is None

    def test_region_slice_gets_restrict_hint(self, lattice_store, mining_config):
        from repro.core.miner import RatingMiner

        explorer = GeoExplorer(RatingMiner(lattice_store, mining_config))
        region = explorer.top_regions(limit=1)[0]
        region_slice = explorer._region_slice(region, None, None)
        hint = region_slice.lattice_hint
        assert hint.restrict_attribute == GEO_ATTRIBUTE
        vocabulary = lattice_store.vocabulary_for(GEO_ATTRIBUTE)
        assert vocabulary[hint.restrict_code] == region
        assert hint.store_positions.shape[0] == len(region_slice)
        index = lattice_store.attribute_index(GEO_ATTRIBUTE)
        assert np.array_equal(
            hint.store_positions, index.positions_for(hint.restrict_code)
        )


class TestServingIntegration:
    def test_flag_off_means_no_lattice(self, tiny_dataset, mining_config):
        system = MapRat.for_dataset(
            tiny_dataset,
            PipelineConfig(
                mining=mining_config, server=ServerConfig(use_cuboid_lattice=False)
            ),
        )
        try:
            assert system.miner.store.lattice() is None
        finally:
            system.close()

    def test_flag_on_attaches_lattice(self, tiny_dataset, mining_config):
        system = MapRat.for_dataset(
            tiny_dataset,
            PipelineConfig(
                mining=mining_config, server=ServerConfig(use_cuboid_lattice=True)
            ),
        )
        try:
            lattice = system.miner.store.lattice()
            assert lattice is not None
            assert lattice.num_rows == len(system.miner.store)
        finally:
            system.close()

    def test_env_var_drives_the_default(self, tiny_dataset, monkeypatch):
        monkeypatch.setenv("MAPRAT_USE_LATTICE", "1")
        assert ServerConfig().use_cuboid_lattice is True
        monkeypatch.delenv("MAPRAT_USE_LATTICE")
        assert ServerConfig().use_cuboid_lattice is False
        # An explicit value always wins over the environment.
        monkeypatch.setenv("MAPRAT_USE_LATTICE", "1")
        assert ServerConfig(use_cuboid_lattice=False).use_cuboid_lattice is False

    def test_budget_gate_skips_the_build(self, tiny_dataset, mining_config):
        # estimate_nbytes for the tiny store is well above 1 << 20 × 0 — use
        # a 1 MB budget only if the estimate exceeds it; otherwise force the
        # comparison by checking the estimate directly.
        rows = sum(1 for _ in tiny_dataset.ratings())
        assert CuboidLattice.estimate_nbytes(rows) > 0
        system = MapRat.for_dataset(
            tiny_dataset,
            PipelineConfig(
                mining=mining_config,
                server=ServerConfig(use_cuboid_lattice=True, lattice_budget_mb=1),
            ),
        )
        try:
            if CuboidLattice.estimate_nbytes(rows) > (1 << 20):
                assert system.miner.store.lattice() is None
            else:  # pragma: no cover - tiny dataset fits in 1 MB
                assert system.miner.store.lattice() is not None
        finally:
            system.close()

    def test_budget_must_be_positive(self):
        with pytest.raises(ConstraintError):
            ServerConfig(lattice_budget_mb=0)

    def test_shm_roundtrip_preserves_the_lattice(self, lattice_store):
        export = SharedStoreExport(lattice_store)
        try:
            attached = attach_store(export.manifest)
            try:
                left = lattice_store.lattice()
                right = attached.lattice()
                assert right is not None
                assert right.epoch == left.epoch
                assert right.num_rows == left.num_rows
                assert set(right.cuboids) == set(left.cuboids)
                for combo, cub in left.cuboids.items():
                    other = right.cuboids[combo]
                    for name in ("keys", "counts", "sums", "offsets", "positions"):
                        array = getattr(other, name)
                        assert np.array_equal(getattr(cub, name), array), (combo, name)
                        assert not array.flags.writeable  # zero-copy view
                assert attached.slice_all().lattice_hint.whole_store
            finally:
                detach_store(attached)
        finally:
            export.release()

    def test_estimate_tracks_actual_size(self, lattice_store):
        lattice = lattice_store.lattice()
        estimate = CuboidLattice.estimate_nbytes(len(lattice_store))
        # The heuristic is positions-dominated: within a small constant
        # factor of the real footprint, and never an order of magnitude off.
        assert estimate > lattice.num_cuboids * len(lattice_store) * 8
        assert lattice.nbytes < estimate * 4
