"""Unit tests of the durability primitives: WAL framing and snapshot files."""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest

from repro.data.durability import (
    SNAPSHOT_MAGIC,
    WalScan,
    WriteAheadLog,
    decode_ingest_op,
    encode_ingest_op,
    frame_record,
    load_snapshot,
    read_wal,
    truncate_wal,
    write_snapshot,
)
from repro.data.model import Rating, Reviewer
from repro.errors import SnapshotFormatError, WalCorruptionError


def _rating(n=0):
    return Rating(item_id=1 + n, reviewer_id=2, score=4.0, timestamp=100 + n)


def _reviewer():
    return Reviewer(
        reviewer_id=2, gender="F", age=30, occupation="artist", zipcode="94110"
    )


class TestRecordCodec:
    def test_roundtrip_without_reviewer(self):
        rating, reviewer = decode_ingest_op(encode_ingest_op(_rating()))
        assert rating == _rating()
        assert reviewer is None

    def test_roundtrip_with_reviewer(self):
        payload = encode_ingest_op(_rating(), _reviewer())
        rating, reviewer = decode_ingest_op(payload)
        assert rating == _rating()
        assert reviewer == _reviewer()

    def test_encoding_is_canonical(self):
        # Same op -> same bytes, so WALs of identical runs are bit-identical.
        assert encode_ingest_op(_rating(), _reviewer()) == encode_ingest_op(
            _rating(), _reviewer()
        )


class TestWalScan:
    def test_empty_log(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"")
        scan = read_wal(path)
        assert scan.ops == [] and scan.valid_bytes == 0 and not scan.torn

    def test_missing_log_reads_empty(self, tmp_path):
        scan = read_wal(tmp_path / "nope.log")
        assert scan == WalScan(ops=[], valid_bytes=0, torn_bytes=0)

    def test_roundtrip_many_records(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync="never")
        for n in range(5):
            wal.append(_rating(n), _reviewer() if n == 0 else None)
        wal.close()
        scan = read_wal(path)
        assert [r.item_id for r, _ in scan.ops] == [1, 2, 3, 4, 5]
        assert scan.ops[0][1] == _reviewer()
        assert not scan.torn

    @pytest.mark.parametrize("cut", [1, 4, 7, 8, 12])
    def test_torn_final_record_is_tolerated(self, tmp_path, cut):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync="never")
        wal.append(_rating(0))
        wal.append(_rating(1))
        wal.close()
        whole = path.read_bytes()
        keep = len(frame_record(encode_ingest_op(_rating(0))))
        path.write_bytes(whole[: keep + cut])  # tear the second record
        scan = read_wal(path)
        assert [r.item_id for r, _ in scan.ops] == [1]
        assert scan.torn and scan.valid_bytes == keep
        truncate_wal(path, scan.valid_bytes)
        rescan = read_wal(path)
        assert not rescan.torn and len(rescan.ops) == 1

    def test_corrupt_final_crc_is_treated_as_torn(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync="never")
        wal.append(_rating(0))
        wal.close()
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        scan = read_wal(path)
        assert scan.ops == [] and scan.torn

    def test_corrupt_middle_record_fails_loudly(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync="never")
        wal.append(_rating(0))
        wal.append(_rating(1))
        wal.close()
        data = bytearray(path.read_bytes())
        data[10] ^= 0xFF  # inside the first record's payload
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError):
            read_wal(path)

    def test_undecodable_middle_payload_fails_loudly(self, tmp_path):
        path = tmp_path / "wal.log"
        bad = b"not json at all"
        framed = struct.pack("<II", len(bad), zlib.crc32(bad)) + bad
        path.write_bytes(framed + frame_record(encode_ingest_op(_rating())))
        with pytest.raises(WalCorruptionError):
            read_wal(path)


class TestWalFsyncPolicies:
    @pytest.mark.parametrize("policy", ["always", "batch", "never"])
    def test_policies_produce_identical_bytes(self, tmp_path, policy):
        path = tmp_path / f"wal-{policy}.log"
        wal = WriteAheadLog(path, fsync=policy)
        wal.append(_rating(0), _reviewer())
        wal.commit()
        wal.append(_rating(1))
        wal.close()
        reference = frame_record(encode_ingest_op(_rating(0), _reviewer()))
        reference += frame_record(encode_ingest_op(_rating(1)))
        assert path.read_bytes() == reference

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(Exception):
            WriteAheadLog(tmp_path / "wal.log", fsync="sometimes")

    def test_close_is_idempotent(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync="batch")
        wal.append(_rating())
        wal.close()
        wal.close()


class TestSnapshotFile:
    @pytest.fixture()
    def store(self, tiny_store):
        return tiny_store

    def test_roundtrip_is_byte_identical(self, tmp_path, tiny_dataset, store):
        path = tmp_path / "snap.snap"
        meta = write_snapshot(
            store, path, tiny_dataset.num_ratings, tiny_dataset.num_reviewers
        )
        assert meta["epoch"] == store.epoch and meta["bytes"] == path.stat().st_size
        loaded = load_snapshot(path, tiny_dataset)
        assert loaded.epoch == store.epoch
        for name in ("_item_ids", "_reviewer_ids", "_scores", "_timestamps"):
            np.testing.assert_array_equal(
                getattr(loaded, name), getattr(store, name)
            )
        for attribute in store.grouping_attributes:
            np.testing.assert_array_equal(
                loaded.codes_for(attribute), store.codes_for(attribute)
            )
            np.testing.assert_array_equal(
                loaded.vocabulary_for(attribute), store.vocabulary_for(attribute)
            )
        assert loaded.dataset.num_ratings == tiny_dataset.num_ratings
        assert loaded.dataset.num_reviewers == tiny_dataset.num_reviewers

    def test_atomic_write_leaves_no_tmp(self, tmp_path, tiny_dataset, store):
        path = tmp_path / "snap.snap"
        write_snapshot(store, path, tiny_dataset.num_ratings, tiny_dataset.num_reviewers)
        assert [p.name for p in tmp_path.iterdir()] == ["snap.snap"]

    def test_bad_magic_rejected(self, tmp_path, tiny_dataset, store):
        path = tmp_path / "snap.snap"
        write_snapshot(store, path, tiny_dataset.num_ratings, tiny_dataset.num_reviewers)
        data = bytearray(path.read_bytes())
        data[:4] = b"NOPE"
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotFormatError):
            load_snapshot(path, tiny_dataset)

    def test_newer_format_version_gives_clear_error(
        self, tmp_path, tiny_dataset, store
    ):
        path = tmp_path / "snap.snap"
        write_snapshot(store, path, tiny_dataset.num_ratings, tiny_dataset.num_reviewers)
        data = bytearray(path.read_bytes())
        # The version field sits right after the 8-byte magic.
        assert data[:8] == SNAPSHOT_MAGIC
        struct.pack_into("<I", data, 8, 999)
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotFormatError, match="upgrade"):
            load_snapshot(path, tiny_dataset)

    def test_truncated_file_rejected(self, tmp_path, tiny_dataset, store):
        path = tmp_path / "snap.snap"
        write_snapshot(store, path, tiny_dataset.num_ratings, tiny_dataset.num_reviewers)
        path.write_bytes(path.read_bytes()[:-64])
        with pytest.raises(SnapshotFormatError):
            load_snapshot(path, tiny_dataset)

    def test_corrupt_data_region_rejected(self, tmp_path, tiny_dataset, store):
        path = tmp_path / "snap.snap"
        write_snapshot(store, path, tiny_dataset.num_ratings, tiny_dataset.num_reviewers)
        data = bytearray(path.read_bytes())
        data[-8] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotFormatError):
            load_snapshot(path, tiny_dataset)

    def test_wrong_base_dataset_rejected(self, tmp_path, tiny_dataset, small_dataset, store):
        path = tmp_path / "snap.snap"
        write_snapshot(store, path, tiny_dataset.num_ratings, tiny_dataset.num_reviewers)
        from repro.errors import RecoveryError

        with pytest.raises(RecoveryError):
            load_snapshot(path, small_dataset)
