"""Tests for the synthetic MovieLens-shaped generator and its planted structure."""

import numpy as np
import pytest

from repro.data.schema import AGE_GROUPS, GENDERS, GENRES, OCCUPATIONS
from repro.data.synthetic import (
    SCALE_PRESETS,
    SyntheticConfig,
    SyntheticMovieLens,
    default_seed_movies,
    generate_dataset,
)
from repro.errors import DataError


class TestConfig:
    def test_invalid_sizes_rejected(self):
        with pytest.raises(DataError):
            SyntheticConfig(num_reviewers=0)
        with pytest.raises(DataError):
            SyntheticConfig(ratings_per_reviewer=0)
        with pytest.raises(DataError):
            SyntheticConfig(start_year=2003, end_year=2000)

    def test_presets_exist_for_all_documented_scales(self):
        assert set(SCALE_PRESETS) == {"tiny", "small", "medium", "ml1m"}

    def test_unknown_scale_rejected(self):
        with pytest.raises(DataError):
            generate_dataset("galactic")


class TestGeneration:
    def test_dataset_has_requested_shape(self, tiny_dataset):
        assert tiny_dataset.num_reviewers == 150
        assert tiny_dataset.num_items == 60
        assert tiny_dataset.num_ratings > 1000

    def test_reviewer_attributes_follow_the_movielens_coding(self, tiny_dataset):
        occupations = set(OCCUPATIONS.values())
        bands = set(AGE_GROUPS.values())
        for reviewer in tiny_dataset.reviewers():
            assert reviewer.gender in GENDERS
            assert reviewer.occupation in occupations
            assert reviewer.age_group in bands
            assert len(reviewer.zipcode) == 5
            assert reviewer.state != ""
            assert reviewer.city != ""

    def test_items_carry_genres_years_and_imdb_credits(self, tiny_dataset):
        for item in tiny_dataset.items():
            assert item.genres
            assert all(genre in GENRES for genre in item.genres)
            assert item.actors
            assert item.directors

    def test_ratings_on_scale_with_timestamps_in_range(self, tiny_dataset):
        lo, hi = tiny_dataset.time_range()
        assert lo > 0
        for rating in tiny_dataset.ratings():
            assert 1 <= rating.score <= 5
            assert 2000 <= rating.year <= 2003

    def test_seed_movies_present(self, tiny_dataset):
        titles = {item.title for item in tiny_dataset.items()}
        for seed in default_seed_movies():
            assert seed.title in titles

    def test_generation_is_deterministic_for_a_seed(self):
        first = SyntheticMovieLens(SyntheticConfig(num_reviewers=60, num_movies=30, seed=7)).generate()
        second = SyntheticMovieLens(SyntheticConfig(num_reviewers=60, num_movies=30, seed=7)).generate()
        assert first.num_ratings == second.num_ratings
        pairs_first = [(r.item_id, r.reviewer_id, r.score) for r in first.ratings()]
        pairs_second = [(r.item_id, r.reviewer_id, r.score) for r in second.ratings()]
        assert pairs_first == pairs_second

    def test_different_seeds_differ(self):
        first = SyntheticMovieLens(SyntheticConfig(num_reviewers=60, num_movies=30, seed=7)).generate()
        second = SyntheticMovieLens(SyntheticConfig(num_reviewers=60, num_movies=30, seed=8)).generate()
        pairs_first = [(r.item_id, r.reviewer_id, r.score) for r in first.ratings()]
        pairs_second = [(r.item_id, r.reviewer_id, r.score) for r in second.ratings()]
        assert pairs_first != pairs_second


class TestPlantedStructure:
    """The generator must plant the group effects the paper's narrative uses."""

    @staticmethod
    def _group_mean(dataset, title, **conditions):
        items = dataset.items_by_title(title)
        item_ids = {item.item_id for item in items}
        scores = []
        for rating in dataset.ratings():
            if rating.item_id not in item_ids:
                continue
            reviewer = dataset.reviewer(rating.reviewer_id)
            if all(reviewer.attribute(k) == v for k, v in conditions.items()):
                scores.append(rating.score)
        return (sum(scores) / len(scores)) if scores else None, len(scores)

    def test_toy_story_is_loved_by_california_males(self, small_dataset):
        ca_mean, ca_count = self._group_mean(
            small_dataset, "Toy Story", gender="M", state="CA"
        )
        overall_mean, _ = self._group_mean(small_dataset, "Toy Story")
        assert ca_count >= 5
        assert ca_mean > overall_mean

    def test_eclipse_polarises_teenagers_by_gender(self, small_dataset):
        female_mean, female_count = self._group_mean(
            small_dataset, "The Twilight Saga: Eclipse", gender="F", age_group="Under 18"
        )
        male_mean, male_count = self._group_mean(
            small_dataset, "The Twilight Saga: Eclipse", gender="M", age_group="Under 18"
        )
        assert female_count >= 3 and male_count >= 3
        assert female_mean - male_mean > 1.0

    def test_drifting_star_declines_over_the_years(self, small_dataset):
        items = small_dataset.items_by_title("Drifting Star")
        item_ids = {item.item_id for item in items}
        by_year = {}
        for rating in small_dataset.ratings():
            if rating.item_id in item_ids:
                by_year.setdefault(rating.year, []).append(rating.score)
        first_year, last_year = min(by_year), max(by_year)
        first_mean = np.mean(by_year[first_year])
        last_mean = np.mean(by_year[last_year])
        assert first_mean - last_mean > 1.0
