"""Tests for the ⟨I, U, R⟩ data model."""

from datetime import datetime, timezone

import pytest

from repro.data.model import Item, Rating, RatingDataset, Reviewer
from repro.errors import DataError


def _reviewer(reviewer_id=1, **overrides):
    defaults = dict(
        reviewer_id=reviewer_id,
        gender="M",
        age=25,
        occupation="programmer",
        zipcode="94110",
        state="CA",
        city="San Francisco",
    )
    defaults.update(overrides)
    return Reviewer(**defaults)


def _small_dataset():
    reviewers = [
        _reviewer(1),
        _reviewer(2, gender="F", age=1, state="NY", city="New York", zipcode="10001"),
    ]
    items = [
        Item(item_id=10, title="Alpha", year=1999, genres=("Drama",)),
        Item(item_id=20, title="Beta", year=2001, genres=("Comedy", "Romance")),
    ]
    ratings = [
        Rating(10, 1, 4.0, timestamp=978307200),   # 2001-01-01
        Rating(10, 2, 2.0, timestamp=1009843200),  # 2002-01-01
        Rating(20, 1, 5.0, timestamp=1041379200),  # 2003-01-01
    ]
    return RatingDataset(reviewers, items, ratings, name="unit")


class TestReviewer:
    def test_age_group_is_derived_from_age_code(self):
        assert _reviewer(age=1).age_group == "Under 18"
        assert _reviewer(age=25).age_group == "25-34"

    def test_attribute_access_by_name(self):
        reviewer = _reviewer()
        assert reviewer.attribute("gender") == "M"
        assert reviewer.attribute("age_group") == "25-34"
        assert reviewer.attribute("state") == "CA"
        assert reviewer.attribute("city") == "San Francisco"
        assert reviewer.attribute("zipcode") == "94110"

    def test_unknown_attribute_raises(self):
        with pytest.raises(DataError):
            _reviewer().attribute("height")

    def test_attributes_returns_requested_subset(self):
        values = _reviewer().attributes(["gender", "state"])
        assert values == {"gender": "M", "state": "CA"}


class TestItem:
    def test_multivalued_attributes(self):
        item = Item(1, "Gamma", 2000, genres=("Drama", "War"), actors=("A", "B"), directors=("D",))
        assert item.attribute_values("genre") == ("Drama", "War")
        assert item.attribute_values("actor") == ("A", "B")
        assert item.attribute_values("director") == ("D",)
        assert item.attribute_values("title") == ("Gamma",)
        assert item.attribute_values("year") == ("2000",)

    def test_unknown_attribute_raises(self):
        with pytest.raises(DataError):
            Item(1, "Gamma").attribute_values("budget")

    def test_missing_year_yields_empty_values(self):
        assert Item(1, "Gamma").attribute_values("year") == ()


class TestRating:
    def test_timestamp_conversion(self):
        rating = Rating(1, 1, 4.0, timestamp=978307200)
        assert rating.when == datetime(2001, 1, 1, tzinfo=timezone.utc)
        assert rating.year == 2001


class TestRatingDataset:
    def test_sizes(self):
        dataset = _small_dataset()
        assert len(dataset) == 3
        assert dataset.num_reviewers == 2
        assert dataset.num_items == 2
        assert dataset.num_ratings == 3

    def test_referential_integrity_enforced(self):
        reviewers = [_reviewer(1)]
        items = [Item(10, "Alpha")]
        bad_item = [Rating(99, 1, 3.0)]
        with pytest.raises(DataError):
            RatingDataset(reviewers, items, bad_item)
        bad_reviewer = [Rating(10, 99, 3.0)]
        with pytest.raises(DataError):
            RatingDataset(reviewers, items, bad_reviewer)

    def test_rating_scale_enforced(self):
        reviewers = [_reviewer(1)]
        items = [Item(10, "Alpha")]
        with pytest.raises(DataError):
            RatingDataset(reviewers, items, [Rating(10, 1, 9.0)])

    def test_lookups(self):
        dataset = _small_dataset()
        assert dataset.item(10).title == "Alpha"
        assert dataset.reviewer(2).gender == "F"
        assert dataset.has_item(20)
        assert not dataset.has_item(999)
        with pytest.raises(DataError):
            dataset.item(999)

    def test_items_by_title_is_case_insensitive(self):
        dataset = _small_dataset()
        assert [i.item_id for i in dataset.items_by_title("alpha")] == [10]
        assert dataset.items_by_title("missing") == []

    def test_ratings_for_items(self):
        dataset = _small_dataset()
        ratings = dataset.ratings_for_items([10])
        assert {r.reviewer_id for r in ratings} == {1, 2}

    def test_averages(self):
        dataset = _small_dataset()
        assert dataset.global_average() == pytest.approx((4 + 2 + 5) / 3)
        assert dataset.item_average(10) == pytest.approx(3.0)
        assert dataset.item_average(999) == 0.0

    def test_restricted_to_items(self):
        dataset = _small_dataset()
        restricted = dataset.restricted_to_items([10])
        assert restricted.num_items == 1
        assert restricted.num_ratings == 2
        assert restricted.num_reviewers == 2

    def test_restricted_to_interval(self):
        dataset = _small_dataset()
        restricted = dataset.restricted_to_interval(978307200, 1009843200)
        assert restricted.num_ratings == 2
        with pytest.raises(DataError):
            dataset.restricted_to_interval(10, 5)

    def test_time_range_and_describe(self):
        dataset = _small_dataset()
        low, high = dataset.time_range()
        assert low == 978307200 and high == 1041379200
        info = dataset.describe()
        assert info["ratings"] == 3
        assert info["reviewers"] == 2

    def test_empty_dataset_statistics(self):
        dataset = RatingDataset([_reviewer(1)], [Item(10, "Alpha")], [])
        assert dataset.global_average() == 0.0
        assert dataset.time_range() == (0, 0)

    def test_rating_counts_by_item(self):
        dataset = _small_dataset()
        assert dataset.rating_counts_by_item() == {10: 2, 20: 1}
