"""Tests for the MovieLens-1M .dat reader/writer."""

from pathlib import Path

import pytest

from repro.data.movielens import (
    load_movielens_directory,
    load_movies_file,
    load_ratings_file,
    load_users_file,
    parse_title,
    write_movielens_directory,
)
from repro.data.synthetic import SyntheticConfig, SyntheticMovieLens
from repro.errors import DatasetFormatError


@pytest.fixture(scope="module")
def movielens_dir(tmp_path_factory):
    """A MovieLens-format directory written from a small synthetic dataset."""
    dataset = SyntheticMovieLens(
        SyntheticConfig(num_reviewers=40, num_movies=25, ratings_per_reviewer=10, seed=3)
    ).generate(name="roundtrip")
    directory = tmp_path_factory.mktemp("ml")
    write_movielens_directory(dataset, directory)
    return dataset, directory


class TestTitleParsing:
    def test_title_with_year(self):
        assert parse_title("Toy Story (1995)") == ("Toy Story", 1995)

    def test_title_without_year(self):
        assert parse_title("Untitled Project") == ("Untitled Project", 0)

    def test_title_with_parenthetical_and_year(self):
        assert parse_title("Sabrina (a.k.a. Remake) (1995)") == (
            "Sabrina (a.k.a. Remake)",
            1995,
        )


class TestRoundTrip:
    def test_directory_contains_the_three_files(self, movielens_dir):
        _, directory = movielens_dir
        for name in ("users.dat", "movies.dat", "ratings.dat"):
            assert (directory / name).exists()

    def test_roundtrip_preserves_counts(self, movielens_dir):
        original, directory = movielens_dir
        loaded = load_movielens_directory(directory)
        assert loaded.num_reviewers == original.num_reviewers
        assert loaded.num_items == original.num_items
        assert loaded.num_ratings == original.num_ratings

    def test_roundtrip_preserves_reviewer_demographics(self, movielens_dir):
        original, directory = movielens_dir
        loaded = load_movielens_directory(directory)
        for reviewer in original.reviewers():
            twin = loaded.reviewer(reviewer.reviewer_id)
            assert twin.gender == reviewer.gender
            assert twin.age == reviewer.age
            assert twin.occupation == reviewer.occupation
            assert twin.zipcode == reviewer.zipcode
            assert twin.state == reviewer.state

    def test_roundtrip_preserves_ratings(self, movielens_dir):
        original, directory = movielens_dir
        loaded = load_movielens_directory(directory)
        original_triples = sorted(
            (r.reviewer_id, r.item_id, r.score, r.timestamp) for r in original.ratings()
        )
        loaded_triples = sorted(
            (r.reviewer_id, r.item_id, r.score, r.timestamp) for r in loaded.ratings()
        )
        assert original_triples == loaded_triples

    def test_roundtrip_preserves_titles_and_genres(self, movielens_dir):
        original, directory = movielens_dir
        loaded = load_movielens_directory(directory)
        for item in original.items():
            twin = loaded.item(item.item_id)
            assert twin.title == item.title
            assert twin.genres == item.genres

    def test_enrichment_can_be_disabled(self, movielens_dir):
        _, directory = movielens_dir
        plain = load_movielens_directory(directory, enrich=False)
        assert all(not item.actors for item in plain.items())


class TestErrorHandling:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetFormatError):
            load_movielens_directory(tmp_path)

    def test_wrong_field_count_raises(self, tmp_path):
        path = tmp_path / "users.dat"
        path.write_text("1::M::25\n", encoding="latin-1")
        with pytest.raises(DatasetFormatError):
            load_users_file(path)

    def test_bad_occupation_code_raises(self, tmp_path):
        path = tmp_path / "users.dat"
        path.write_text("1::M::25::banana::94110\n", encoding="latin-1")
        with pytest.raises(DatasetFormatError):
            load_users_file(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "ratings.dat"
        path.write_text("1::10::4::1000\n\n2::10::3::2000\n", encoding="latin-1")
        assert len(load_ratings_file(path)) == 2

    def test_movies_parse_genres(self, tmp_path):
        path = tmp_path / "movies.dat"
        path.write_text("7::Example (1990)::Drama|War\n", encoding="latin-1")
        items = load_movies_file(path, enrich=False)
        assert items[0].genres == ("Drama", "War")
        assert items[0].year == 1990
