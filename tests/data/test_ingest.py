"""Unit tests of the append buffer, compaction and vocabulary growth.

The differential battery (tests/property/test_property_ingest.py) proves
incremental == rebuild globally; these tests pin the local contracts —
validation errors, duplicate absorption, the vocabulary-growth bug class
(attribute values unseen at snapshot build), and the maintained attribute
index — with explicit expectations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.ingest import (
    AppendBuffer,
    LiveStore,
    compact_snapshot,
    rating_from_dict,
    reviewer_from_dict,
)
from repro.data.model import Rating, Reviewer
from repro.data.storage import RatingStore
from repro.errors import IngestError


@pytest.fixture()
def store(tiny_dataset):
    return RatingStore(tiny_dataset)


def new_reviewer(reviewer_id=500_000, zipcode="94105") -> Reviewer:
    return Reviewer(
        reviewer_id=reviewer_id,
        gender="F",
        age=25,
        occupation="artist",
        zipcode=zipcode,
    )


class TestAppendBufferValidation:
    def test_unknown_item_is_rejected(self, store):
        buffer = AppendBuffer(store)
        with pytest.raises(IngestError, match="unknown item"):
            buffer.append(Rating(10**9, 1, 3.0, 0))

    def test_unknown_reviewer_without_record_is_rejected(self, store):
        buffer = AppendBuffer(store)
        with pytest.raises(IngestError, match="unknown reviewer"):
            buffer.append(Rating(1, 10**9, 3.0, 0))

    def test_reviewer_record_id_must_match_rating(self, store):
        buffer = AppendBuffer(store)
        with pytest.raises(IngestError, match="does not match"):
            buffer.append(Rating(1, 500_000, 3.0, 0), new_reviewer(500_001))

    def test_existing_reviewer_cannot_be_reregistered(self, store):
        buffer = AppendBuffer(store)
        with pytest.raises(IngestError, match="already exists"):
            buffer.append(Rating(1, 1, 3.0, 0), new_reviewer(1))

    def test_score_outside_scale_is_rejected(self, store):
        buffer = AppendBuffer(store)
        with pytest.raises(IngestError, match="scale"):
            buffer.append(Rating(1, 1, 9.0, 0))

    def test_new_reviewer_location_is_resolved_from_zipcode(self, store):
        buffer = AppendBuffer(store)
        buffer.append(Rating(1, 500_000, 3.0, 0), new_reviewer(zipcode="94105"))
        _, reviewers = buffer.drain()
        assert reviewers[0].state == "CA"
        assert reviewers[0].city != ""

    def test_batch_error_names_the_offending_index(self, store):
        buffer = AppendBuffer(store)
        pairs = [
            (Rating(1, 1, 3.0, 0), None),
            (Rating(10**9, 1, 3.0, 1), None),
        ]
        with pytest.raises(IngestError, match="batch entry 1"):
            buffer.extend(pairs)
        assert len(buffer) == 1  # best-effort: the valid prefix stays buffered

    def test_duplicates_are_absorbed_across_drains(self, store):
        buffer = AppendBuffer(store)
        rating = Rating(1, 1, 5.0, 123)
        assert buffer.append(rating) == "accepted"
        assert buffer.append(rating) == "duplicate"
        buffer.drain()
        assert buffer.append(rating) == "duplicate"  # drained rows stay seen


class TestPayloadParsing:
    def test_rating_from_dict_requires_core_fields(self):
        with pytest.raises(IngestError, match="'score'"):
            rating_from_dict({"item_id": 1, "reviewer_id": 2})
        with pytest.raises(IngestError, match="timestamp"):
            rating_from_dict(
                {"item_id": 1, "reviewer_id": 2, "score": 3, "timestamp": "later"}
            )
        rating = rating_from_dict({"item_id": "1", "reviewer_id": "2", "score": "4.5"})
        assert (rating.item_id, rating.reviewer_id, rating.score) == (1, 2, 4.5)

    def test_reviewer_from_dict_requires_demographics(self):
        with pytest.raises(IngestError, match="'zipcode'"):
            reviewer_from_dict(
                {"gender": "F", "age": 25, "occupation": "artist"}, reviewer_id=9
            )
        reviewer = reviewer_from_dict(
            {"gender": "F", "age": "25", "occupation": "artist", "zipcode": "94105"},
            reviewer_id=9,
        )
        assert reviewer.reviewer_id == 9


class TestVocabularyGrowth:
    """The latent bug class: values unseen at snapshot build must work end to end."""

    def test_new_zipcode_grows_vocabulary_and_remaps_codes(self, store):
        zipcode = "94105"
        assert zipcode not in set(store.vocabulary_for("zipcode").tolist())
        live = LiveStore(store)
        live.ingest(Rating(1, 500_000, 4.0, 7), new_reviewer(zipcode=zipcode))
        snapshot = live.compact().store
        vocabulary = snapshot.vocabulary_for("zipcode")
        assert zipcode in set(vocabulary.tolist())
        assert list(vocabulary.tolist()) == sorted(vocabulary.tolist())
        # The new value is maskable and the old rows still decode correctly.
        rating_slice = snapshot.slice_all()
        mask = rating_slice.mask_for("zipcode", zipcode)
        assert int(mask.sum()) == 1
        assert np.array_equal(
            snapshot.codes_for("gender")[: len(store)] >= 0,
            np.ones(len(store), dtype=bool),
        )
        # Untouched rows kept their decoded values despite the remap.
        old_decoded = store.slice_all().attribute_values("zipcode")[:50]
        new_decoded = rating_slice.attribute_values("zipcode")[:50]
        assert np.array_equal(old_decoded, new_decoded)

    def test_reviewer_without_stored_rating_still_grows_vocabulary(self, store):
        """A registered reviewer whose only rating was a duplicate must still
        contribute vocabulary — exactly as a from-scratch rebuild would."""
        ratings = list(store.dataset.ratings())
        duplicate = ratings[0]
        live_inc = LiveStore(store, use_incremental=True)
        live_ref = LiveStore(store, use_incremental=False)
        for live in (live_inc, live_ref):
            reviewer = new_reviewer(600_000, zipcode="99501")
            assert (
                live.ingest(Rating(duplicate.item_id, 600_000, 2.0, 11), reviewer)
                == "accepted"
            )
            assert live.ingest(duplicate) == "duplicate"
            live.compact()
        for name in store.grouping_attributes:
            assert np.array_equal(
                live_inc.snapshot.vocabulary_for(name),
                live_ref.snapshot.vocabulary_for(name),
            ), name

    def test_empty_buffer_compaction_returns_same_snapshot(self, store):
        live = LiveStore(store)
        result = live.compact()
        assert result.mode == "noop"
        assert result.store is store
        assert live.epoch == store.epoch == 0


class TestAttributeIndex:
    def test_positions_match_code_column(self, store):
        index = store.attribute_index("state")
        codes = store.codes_for("state")
        vocabulary = store.vocabulary_for("state")
        for code in range(min(5, vocabulary.shape[0])):
            assert np.array_equal(
                index.positions_for(code), np.flatnonzero(codes == code)
            )

    def test_aggregates_match_bincounts(self, store):
        index = store.attribute_index("state")
        codes = store.codes_for("state")
        scores = store.slice_all().scores
        n = store.vocabulary_for("state").shape[0]
        assert np.array_equal(index.counts, np.bincount(codes, minlength=n))
        assert np.array_equal(
            index.sums, np.bincount(codes, weights=scores, minlength=n)
        )

    def test_delta_update_spanning_byte_boundary(self, tiny_dataset):
        """Appends that straddle the packed-bitset byte boundary stay exact."""
        store = RatingStore(tiny_dataset)
        store.attribute_index("state")
        live = LiveStore(store)
        reviewer = next(tiny_dataset.reviewers())
        # Append 13 rows (not a multiple of 8) in two compactions.
        for step in range(13):
            live.ingest(Rating(1, reviewer.reviewer_id, 3.0, 10_000 + step))
            if step == 4:
                live.compact()
        snapshot = live.compact().store
        updated = snapshot.built_indexes()["state"]
        rebuilt = RatingStore(
            snapshot.dataset, grouping_attributes=snapshot.grouping_attributes
        ).attribute_index("state")
        for field in ("counts", "sums", "positives", "negatives", "joint", "bits"):
            assert np.array_equal(getattr(updated, field), getattr(rebuilt, field)), field

    def test_unknown_attribute_raises(self, store):
        from repro.errors import DataError

        with pytest.raises(DataError):
            store.attribute_index("shoe_size")
