"""Wire-format unit battery: frames, messages, store shipping, the ring.

Covers the fleet transport layer in isolation (no coordinator, no workers):
frame roundtrips over real socket pairs for fuzzing payload sizes including
0 and beyond-max, torn frames and CRC corruption surfacing as typed
:class:`~repro.errors.WireProtocolError`, packed-store shipping reproducing
the exact mining inputs, and the consistent-hash ring's distinctness,
stability (adding one worker to N moves ≲ 1/N of the keys, and only to the
newcomer) and ``PYTHONHASHSEED`` independence.
"""

from __future__ import annotations

import json
import pickle
import socket
import subprocess
import sys
import threading
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.config import MiningConfig
from repro.core.cube import enumerate_candidates
from repro.data.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    FRAME_HEADER,
    HashRing,
    pack_store_bytes,
    recv_frame,
    recv_message,
    send_frame,
    send_message,
    stable_hash,
    store_from_bytes,
)
from repro.errors import WireProtocolError

MINING = MiningConfig(min_group_support=3, min_coverage=0.2, rhe_restarts=2)


@pytest.fixture()
def pair():
    """A connected socket pair with sane timeouts; both ends closed after."""
    left, right = socket.socketpair()
    left.settimeout(5)
    right.settimeout(5)
    yield left, right
    left.close()
    right.close()


class TestFrames:
    @pytest.mark.parametrize(
        "size", [0, 1, 7, 64, 1023, 1 << 12, (1 << 17) + 13]
    )
    def test_roundtrip_exact_bytes(self, pair, size):
        left, right = pair
        rng = np.random.default_rng(size)
        payload = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        send_frame(left, payload)
        assert recv_frame(right) == payload

    def test_fuzz_random_sizes_back_to_back(self, pair):
        """Many frames of random sizes on one stream, order preserved."""
        left, right = pair
        rng = np.random.default_rng(2012)
        payloads = [
            rng.integers(0, 256, size=int(size), dtype=np.uint8).tobytes()
            for size in rng.integers(0, 4096, size=25)
        ]

        def write_all():
            for payload in payloads:
                send_frame(left, payload)
            left.shutdown(socket.SHUT_WR)

        # A writer thread keeps draining possible: the byte volume exceeds
        # the socket-pair buffer, exactly like a real segment ship.
        writer = threading.Thread(target=write_all)
        writer.start()
        try:
            for payload in payloads:
                assert recv_frame(right) == payload
            assert recv_frame(right) is None  # clean end-of-stream at the end
        finally:
            writer.join(timeout=10)

    def test_clean_eof_between_frames_reads_as_none(self, pair):
        left, right = pair
        left.close()
        assert recv_frame(right) is None

    def test_frame_beyond_max_is_rejected_unread(self, pair):
        left, right = pair
        send_frame(left, b"x" * 1024)
        with pytest.raises(WireProtocolError, match="exceeds"):
            recv_frame(right, max_frame_bytes=512)

    def test_torn_frame_is_a_typed_error(self, pair):
        left, right = pair
        left.sendall(FRAME_HEADER.pack(100, 0) + b"short")
        left.close()
        with pytest.raises(WireProtocolError, match="mid-frame"):
            recv_frame(right)

    def test_torn_header_is_a_typed_error(self, pair):
        left, right = pair
        left.sendall(b"\x01\x02\x03")  # less than one header
        left.close()
        with pytest.raises(WireProtocolError, match="mid-frame"):
            recv_frame(right)

    def test_crc_corruption_is_detected(self, pair):
        left, right = pair
        payload = b"the-bytes-that-were-sent"
        header = FRAME_HEADER.pack(len(payload), zlib.crc32(payload) ^ 0xBAD)
        left.sendall(header + payload)
        with pytest.raises(WireProtocolError, match="checksum"):
            recv_frame(right)

    def test_single_flipped_payload_bit_is_detected(self, pair):
        left, right = pair
        payload = bytearray(b"a" * 256)
        header = FRAME_HEADER.pack(len(payload), zlib.crc32(bytes(payload)))
        payload[128] ^= 0x01  # corrupt one bit after checksumming
        left.sendall(header + bytes(payload))
        with pytest.raises(WireProtocolError, match="checksum"):
            recv_frame(right)


class TestMessages:
    def test_message_roundtrip(self, pair):
        left, right = pair
        message = ("task", ("cells", 3, 1, (1, 2), None, "CA", (), (), 3))
        send_message(left, message)
        assert recv_message(right) == message

    def test_non_tuple_payload_is_a_typed_error(self, pair):
        left, right = pair
        send_frame(left, pickle.dumps(["not", "a", "tuple"]))
        with pytest.raises(WireProtocolError, match="tuple"):
            recv_message(right)

    def test_unpicklable_garbage_is_a_typed_error(self, pair):
        left, right = pair
        send_frame(left, b"\x00\x01\x02 definitely not a pickle")
        with pytest.raises(WireProtocolError, match="undecodable"):
            recv_message(right)

    def test_eof_reads_as_none(self, pair):
        left, right = pair
        left.close()
        assert recv_message(right) is None


class TestStoreShipping:
    def test_packed_store_reproduces_the_mining_inputs(self, tiny_store):
        """A shipped store enumerates the identical candidate cube."""
        manifest, blob = pack_store_bytes(tiny_store, name="wire-test")
        assert manifest.segment == "wire-test"
        assert manifest.epoch == tiny_store.epoch
        shipped = store_from_bytes(manifest, blob)
        assert shipped.epoch == tiny_store.epoch
        item_id = next(
            iter(sorted(item.item_id for item in tiny_store.dataset.items()))
        )
        original = enumerate_candidates(
            tiny_store.slice_for_items([item_id]), MINING
        )
        remote = enumerate_candidates(
            shipped.slice_for_items([item_id]), MINING
        )
        assert len(remote) == len(original)
        for ours, theirs in zip(remote, original):
            assert ours.descriptor == theirs.descriptor
            assert np.array_equal(ours.positions, theirs.positions)
            assert ours.mean == theirs.mean  # float-==, not approx
            assert ours.error == theirs.error

    def test_packed_store_survives_the_wire(self, pair, tiny_store):
        """Manifest + blob framed over a real socket, reattached bitwise."""
        left, right = pair
        manifest, blob = pack_store_bytes(tiny_store)

        def ship():
            send_message(left, ("attach", tiny_store.epoch, 0, manifest))
            send_frame(left, blob)

        writer = threading.Thread(target=ship)
        writer.start()
        tag, epoch, shard_id, shipped_manifest = recv_message(right)
        received = recv_frame(right)
        writer.join(timeout=10)
        assert (tag, epoch, shard_id) == ("attach", tiny_store.epoch, 0)
        assert received == blob
        shipped = store_from_bytes(shipped_manifest, received)
        assert shipped.epoch == tiny_store.epoch


class TestHashRing:
    def test_lookup_returns_distinct_workers_in_stable_order(self):
        ring = HashRing([f"w{i}" for i in range(5)])
        for key in ("shard-0", "shard-1", "anything"):
            order = ring.lookup(key, 3)
            assert len(order) == 3
            assert len(set(order)) == 3
            assert order == ring.lookup(key, 3)  # deterministic

    def test_lookup_caps_at_ring_size_and_empty_ring_is_empty(self):
        ring = HashRing(["a", "b"])
        assert len(ring.lookup("k", 10)) == 2
        assert HashRing().lookup("k") == []

    def test_add_remove_idempotent(self):
        ring = HashRing()
        ring.add("w0")
        ring.add("w0")
        assert len(ring) == 1
        ring.remove("w0")
        ring.remove("w0")
        assert len(ring) == 0

    def test_adding_one_worker_moves_about_one_nth_and_only_to_it(self):
        """The classic minimal-reshuffle property, measured over 1000 keys."""
        workers = [f"w{i}" for i in range(5)]
        keys = [f"shard-{i}" for i in range(1000)]
        ring = HashRing(workers)
        before = {key: ring.lookup(key, 1)[0] for key in keys}
        ring.add("w-new")
        after = {key: ring.lookup(key, 1)[0] for key in keys}
        moved = [key for key in keys if before[key] != after[key]]
        # Ideal: 1/(N+1) = 1/6 of the keys; allow vnode-variance headroom.
        assert len(moved) / len(keys) <= (1 / 6) * 1.8
        assert len(moved) > 0  # the newcomer does take ownership of keys
        # Minimal reshuffle: a key either kept its owner or moved to the
        # *new* worker — never from one old worker to another.
        assert all(after[key] == "w-new" for key in moved)
        # Removing the newcomer restores the original map exactly.
        ring.remove("w-new")
        assert {key: ring.lookup(key, 1)[0] for key in keys} == before

    def test_routing_is_pythonhashseed_independent(self):
        """The same lookups in subprocesses with different hash seeds."""
        script = (
            "import json, sys\n"
            "sys.path.insert(0, sys.argv[1])\n"
            "from repro.data.wire import HashRing\n"
            "ring = HashRing(['w%d' % i for i in range(4)])\n"
            "print(json.dumps([ring.lookup('shard-%d' % k, 2)"
            " for k in range(64)]))\n"
        )
        src = str(Path(__file__).resolve().parents[2] / "src")
        routings = []
        for seed in ("0", "1", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", script, src],
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
                capture_output=True,
                text=True,
                timeout=60,
                check=True,
            )
            routings.append(json.loads(result.stdout))
        assert routings[0] == routings[1] == routings[2]

    def test_stable_hash_known_values_never_drift(self):
        """Pin two digests: a drift here would silently remap every fleet."""
        assert stable_hash("w0#0") == stable_hash("w0#0")
        assert stable_hash("w0#0") != stable_hash("w0#1")
        assert 0 <= stable_hash("anything") < 1 << 64

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_default_max_frame_holds_a_packed_shard(self, tiny_store):
        """Sanity: real packed segments fit the default frame bound."""
        _, blob = pack_store_bytes(tiny_store)
        assert len(blob) < DEFAULT_MAX_FRAME_BYTES
