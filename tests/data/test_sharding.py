"""Data sharding: stable assignment, lossless partitioning, shard manifests."""

from __future__ import annotations

import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.data.sharding import (
    SHARD_SCHEMES,
    ShardManifest,
    export_shards,
    partition_store,
    region_bucket,
    region_shards,
    reviewer_shards,
    slice_shards,
    store_shards,
)
from repro.data.shm import attach_store, detach_store
from repro.data.storage import RatingStore
from repro.errors import DataError


class TestReviewerAssignment:
    def test_assignment_is_deterministic_and_in_range(self):
        ids = np.arange(0, 5_000, dtype=np.int64)
        for shards in (1, 2, 3, 7):
            first = reviewer_shards(ids, shards)
            second = reviewer_shards(ids, shards)
            assert np.array_equal(first, second)
            assert first.min() >= 0 and first.max() < shards

    def test_unknown_future_reviewer_ids_hash_into_the_same_space(self):
        # Ids never seen at partition time (post-ingest reviewers) must land
        # in a well-defined bucket without any membership table.
        fresh = np.array([900_000, 900_001, 10**12, 2**62], dtype=np.int64)
        assignment = reviewer_shards(fresh, 3)
        assert assignment.shape == (4,)
        assert set(assignment.tolist()) <= {0, 1, 2}
        assert np.array_equal(assignment, reviewer_shards(fresh, 3))

    def test_assignment_is_independent_of_pythonhashseed(self):
        # The whole point of the avalanche mix: never Python's salted hash().
        script = (
            "import numpy as np; from repro.data.sharding import reviewer_shards; "
            "print(reviewer_shards(np.arange(64, dtype=np.int64), 7).tolist())"
        )
        outputs = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONHASHSEED": seed, "PYTHONPATH": "src"},
            ).stdout
            for seed in ("0", "1", "424242")
        }
        assert len(outputs) == 1

    def test_hash_spreads_across_shards(self):
        assignment = reviewer_shards(np.arange(10_000, dtype=np.int64), 7)
        counts = np.bincount(assignment, minlength=7)
        assert (counts > 0).all()  # no shard starves on uniform ids
        assert counts.max() < 2 * counts.min()  # and the spread is sane

    def test_single_shard_assigns_everything_to_zero(self):
        assignment = reviewer_shards(np.arange(100, dtype=np.int64), 1)
        assert not assignment.any()

    def test_invalid_shard_count_raises_data_error(self):
        with pytest.raises(DataError, match="at least 1"):
            reviewer_shards(np.arange(4, dtype=np.int64), 0)


class TestRegionAssignment:
    def test_each_state_is_pinned_to_exactly_one_shard(self, tiny_store):
        assignment = store_shards(tiny_store, 3, scheme="region")
        codes = tiny_store.codes_for("state")
        for code in np.unique(codes):
            assert len(set(assignment[codes == code].tolist())) == 1

    def test_region_bucket_survives_vocabulary_growth(self, tiny_store):
        # Compaction may insert new states and shift integer codes; hashing
        # the string value keeps every existing state on its shard.
        vocabulary = tiny_store.vocabulary_for("state")
        grown = np.concatenate([np.array(["AA"], dtype=vocabulary.dtype), vocabulary])
        codes = tiny_store.codes_for("state")
        before = region_shards(codes, vocabulary, 5)
        after = region_shards(codes + 1, grown, 5)
        assert np.array_equal(before, after)

    def test_region_bucket_matches_row_assignment(self, tiny_store):
        assignment = store_shards(tiny_store, 4, scheme="region")
        codes = tiny_store.codes_for("state")
        vocabulary = tiny_store.vocabulary_for("state")
        for row in (0, 17, len(tiny_store) - 1):
            value = str(vocabulary[codes[row]])
            assert assignment[row] == region_bucket(value, 4)

    def test_empty_codes_yield_empty_assignment(self, tiny_store):
        empty = region_shards(
            np.zeros(0, dtype=np.int64), tiny_store.vocabulary_for("state"), 3
        )
        assert empty.shape == (0,)

    def test_unknown_scheme_raises_data_error(self, tiny_store):
        with pytest.raises(DataError, match="unknown shard scheme"):
            store_shards(tiny_store, 2, scheme="zipcode")
        with pytest.raises(DataError, match="unknown shard scheme"):
            slice_shards(tiny_store.slice_all(), 2, scheme="zipcode")


class TestPartitionStore:
    @pytest.mark.parametrize("scheme", SHARD_SCHEMES)
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_partition_is_a_lossless_ordered_split(self, tiny_store, shards, scheme):
        parts = partition_store(tiny_store, shards, scheme)
        assert len(parts) == shards
        assert sum(len(part) for part in parts) == len(tiny_store)
        assignment = store_shards(tiny_store, shards, scheme)
        for shard_id, part in enumerate(parts):
            rows = np.flatnonzero(assignment == shard_id)
            # Relative store-row order is preserved — the merge invariant.
            assert np.array_equal(part._item_ids, tiny_store._item_ids[rows])
            assert np.array_equal(part._reviewer_ids, tiny_store._reviewer_ids[rows])
            assert np.array_equal(part._scores, tiny_store._scores[rows])
            assert np.array_equal(part._timestamps, tiny_store._timestamps[rows])

    def test_vocabularies_are_shared_so_codes_stay_comparable(self, tiny_store):
        parts = partition_store(tiny_store, 3)
        for part in parts:
            for name in tiny_store.grouping_attributes:
                assert part.vocabulary_for(name) is tiny_store.vocabulary_for(name)
        assignment = store_shards(tiny_store, 3)
        for shard_id, part in enumerate(parts):
            rows = np.flatnonzero(assignment == shard_id)
            for name in tiny_store.grouping_attributes:
                assert np.array_equal(
                    part.codes_for(name), tiny_store.codes_for(name)[rows]
                )

    def test_single_shard_degenerate_partition_is_the_whole_store(self, tiny_store):
        (only,) = partition_store(tiny_store, 1)
        assert len(only) == len(tiny_store)
        assert np.array_equal(only._item_ids, tiny_store._item_ids)
        assert only.epoch == tiny_store.epoch
        # Same code path as K>1: slicing works, per-item index intact.
        item_id = int(tiny_store._item_ids[0])
        ours = only.slice_for_items([item_id])
        theirs = tiny_store.slice_for_items([item_id])
        assert np.array_equal(ours.scores, theirs.scores)

    def test_empty_shards_are_valid_zero_row_stores(self, tiny_dataset):
        store = RatingStore(tiny_dataset)
        # More shards than reviewers guarantees at least one empty bucket.
        parts = partition_store(store, 997)
        sizes = [len(part) for part in parts]
        assert sum(sizes) == len(store)
        assert 0 in sizes
        empty = parts[sizes.index(0)]
        assert empty.slice_for_items([1], allow_empty=True).is_empty()

    def test_shard_epoch_matches_the_parent(self, tiny_store):
        for part in partition_store(tiny_store, 2):
            assert part.epoch == tiny_store.epoch

    def test_invalid_shard_count_raises_data_error(self, tiny_store):
        with pytest.raises(DataError, match="at least 1"):
            partition_store(tiny_store, 0)


class TestShardManifest:
    def test_manifest_pickle_round_trip(self, tiny_store):
        exports, manifest = export_shards(partition_store(tiny_store, 3), "reviewer")
        try:
            clone = pickle.loads(pickle.dumps(manifest))
            assert clone == manifest
            assert clone.scheme == "reviewer"
            assert clone.num_shards == 3
            assert clone.epoch == tiny_store.epoch
            assert len(clone.shards) == 3
            assert clone.total_rows == len(tiny_store)
        finally:
            for export in exports:
                export.release()

    def test_any_shard_attaches_through_the_manifest(self, tiny_store):
        exports, manifest = export_shards(partition_store(tiny_store, 3), "reviewer")
        try:
            for shard_id in range(manifest.num_shards):
                attached = attach_store(manifest.shards[shard_id])
                try:
                    assert len(attached) == manifest.row_counts[shard_id]
                finally:
                    detach_store(attached)
        finally:
            for export in exports:
                export.release()

    def test_empty_shard_exports_and_attaches(self, tiny_dataset):
        store = RatingStore(tiny_dataset)
        parts = partition_store(store, 997)
        sizes = [len(part) for part in parts]
        shard_id = sizes.index(0)
        exports, manifest = export_shards(parts, "reviewer")
        try:
            assert manifest.row_counts[shard_id] == 0
            attached = attach_store(manifest.shards[shard_id])
            try:
                assert len(attached) == 0
            finally:
                detach_store(attached)
        finally:
            for export in exports:
                export.release()

    def test_export_requires_at_least_one_shard(self):
        with pytest.raises(DataError, match="at least one shard"):
            export_shards([], "reviewer")

    def test_manifest_is_frozen(self, tiny_store):
        manifest = ShardManifest(
            scheme="reviewer", num_shards=1, epoch=0, shards=(), row_counts=(0,)
        )
        with pytest.raises(AttributeError):
            manifest.num_shards = 2
