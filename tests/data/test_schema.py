"""Tests for attribute schemas and the MovieLens coding tables."""

import pytest

from repro.data.schema import (
    AGE_GROUPS,
    GENDERS,
    GENRES,
    OCCUPATIONS,
    AttributeSchema,
    DatasetSchema,
    age_group_for,
    default_schema,
)
from repro.errors import SchemaError


class TestAgeGroups:
    def test_movielens_codes_map_to_their_band(self):
        assert age_group_for(1) == "Under 18"
        assert age_group_for(18) == "18-24"
        assert age_group_for(25) == "25-34"
        assert age_group_for(56) == "56+"

    def test_exact_ages_fold_into_enclosing_band(self):
        assert age_group_for(17) == "Under 18"
        assert age_group_for(22) == "18-24"
        assert age_group_for(40) == "35-44"
        assert age_group_for(70) == "56+"

    def test_non_positive_age_rejected(self):
        with pytest.raises(SchemaError):
            age_group_for(0)
        with pytest.raises(SchemaError):
            age_group_for(-5)

    def test_band_boundaries_are_inclusive_lower_bounds(self):
        assert age_group_for(45) == "45-49"
        assert age_group_for(49) == "45-49"
        assert age_group_for(50) == "50-55"


class TestCodingTables:
    def test_movielens_has_seven_age_bands(self):
        assert len(AGE_GROUPS) == 7

    def test_movielens_has_twenty_one_occupations(self):
        assert len(OCCUPATIONS) == 21
        assert OCCUPATIONS[0] == "other"
        assert OCCUPATIONS[12] == "programmer"

    def test_movielens_has_eighteen_genres(self):
        assert len(GENRES) == 18
        assert "Animation" in GENRES
        assert "Film-Noir" in GENRES

    def test_two_genders(self):
        assert set(GENDERS) == {"M", "F"}


class TestAttributeSchema:
    def test_closed_domain_accepts_member_values(self):
        schema = AttributeSchema("gender", "reviewer", ("M", "F"))
        assert schema.validate("M") == "M"

    def test_closed_domain_rejects_unknown_values(self):
        schema = AttributeSchema("gender", "reviewer", ("M", "F"))
        with pytest.raises(SchemaError):
            schema.validate("X")

    def test_open_domain_accepts_anything(self):
        schema = AttributeSchema("title", "item")
        assert schema.is_open_domain()
        assert schema.validate("Any Movie Whatsoever") == "Any Movie Whatsoever"


class TestDatasetSchema:
    def test_default_schema_knows_reviewer_and_item_attributes(self):
        schema = default_schema()
        assert "gender" in schema.reviewer_attribute_names()
        assert "state" in schema.reviewer_attribute_names()
        assert "genre" in schema.item_attribute_names()
        assert "director" in schema.item_attribute_names()

    def test_attribute_lookup_by_name(self):
        schema = default_schema()
        assert schema.attribute("occupation").entity == "reviewer"
        assert schema.has_attribute("actor")
        assert not schema.has_attribute("shoe_size")

    def test_unknown_attribute_raises(self):
        schema = default_schema()
        with pytest.raises(SchemaError):
            schema.attribute("shoe_size")

    def test_rating_scale_validation(self):
        schema = default_schema()
        assert schema.validate_rating(3) == 3
        with pytest.raises(SchemaError):
            schema.validate_rating(0)
        with pytest.raises(SchemaError):
            schema.validate_rating(6)

    def test_state_domain_can_be_closed(self):
        schema = default_schema(states=("CA", "NY"))
        assert schema.attribute("state").validate("CA") == "CA"
        with pytest.raises(SchemaError):
            schema.attribute("state").validate("ZZ")
