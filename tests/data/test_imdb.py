"""Tests for the synthetic IMDB enrichment."""

from repro.data.imdb import KNOWN_CREDITS, SyntheticImdbCatalog, enrich_with_imdb
from repro.data.model import Item, Rating, RatingDataset, Reviewer


class TestCredits:
    def test_known_titles_get_their_real_credits(self):
        catalog = SyntheticImdbCatalog()
        item = Item(1, "Saving Private Ryan", 1998)
        actors, directors = catalog.credits_for(item)
        assert "Tom Hanks" in actors
        assert directors == ("Steven Spielberg",)

    def test_unknown_titles_get_deterministic_pool_credits(self):
        catalog = SyntheticImdbCatalog()
        item = Item(42, "Synthetic Movie 0042", 2001)
        first = catalog.credits_for(item)
        second = catalog.credits_for(item)
        assert first == second
        assert len(first[0]) == 2 and len(first[1]) == 1

    def test_different_items_generally_get_different_credits(self):
        catalog = SyntheticImdbCatalog()
        credits = {
            catalog.credits_for(Item(item_id, f"Movie {item_id}")) for item_id in range(1, 30)
        }
        assert len(credits) > 5

    def test_enrich_preserves_existing_credits(self):
        catalog = SyntheticImdbCatalog()
        item = Item(5, "Custom", actors=("Someone",), directors=("Someone Else",))
        assert catalog.enrich(item) is item

    def test_enrich_fills_missing_credits(self):
        catalog = SyntheticImdbCatalog()
        enriched = catalog.enrich(Item(5, "Custom"))
        assert enriched.actors and enriched.directors

    def test_catalog_listings(self):
        catalog = SyntheticImdbCatalog()
        items = [Item(i, f"Movie {i}") for i in range(1, 10)]
        assert catalog.directors_in_catalog(items)
        assert catalog.actors_in_catalog(items)


class TestDatasetEnrichment:
    def test_enrich_with_imdb_returns_new_dataset_with_credits(self):
        reviewers = [Reviewer(1, "M", 25, "programmer", "94110", state="CA", city="SF")]
        items = [Item(1, "Jurassic Park", 1993), Item(2, "Some Indie Film", 2001)]
        ratings = [Rating(1, 1, 4.0), Rating(2, 1, 3.0)]
        dataset = RatingDataset(reviewers, items, ratings)
        enriched = enrich_with_imdb(dataset)
        assert enriched.item(1).directors == ("Steven Spielberg",)
        assert enriched.item(2).actors
        # The original dataset is untouched.
        assert dataset.item(2).actors == ()

    def test_every_known_credit_title_has_actor_and_director(self):
        for title, (actors, directors) in KNOWN_CREDITS.items():
            assert actors, title
            assert directors, title
