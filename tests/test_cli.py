"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


def _run(argv):
    """Run the CLI capturing stdout; return (exit_code, output)."""
    buffer = io.StringIO()
    code = main(argv, out=buffer)
    return code, buffer.getvalue()


BASE = ["--scale", "tiny", "--coverage", "0.2", "--min-support", "3"]


class TestParser:
    def test_all_subcommands_are_registered(self):
        parser = build_parser()
        actions = {
            action.dest: action
            for action in parser._subparsers._group_actions  # noqa: SLF001 - introspection in tests
        }
        assert set(actions["command"].choices) == {
            "generate",
            "explain",
            "explore",
            "timeline",
            "serve",
            "fleet-worker",
        }

    def test_missing_subcommand_exits_with_usage_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scale_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "--scale", "galactic", "--query", "x"])


class TestGenerate:
    def test_generate_writes_a_movielens_directory(self, tmp_path):
        output = tmp_path / "ml"
        code, text = _run(["generate", "--scale", "tiny", "--output", str(output)])
        assert code == 0
        assert (output / "ratings.dat").exists()
        assert "wrote" in text

        from repro.data.movielens import load_movielens_directory

        dataset = load_movielens_directory(output)
        assert dataset.num_reviewers == 150


class TestExplain:
    def test_text_output_lists_both_interpretations(self):
        code, text = _run(["explain", *BASE, "--query", 'title:"Toy Story"'])
        assert code == 0
        assert "Similarity Mining" in text
        assert "Diversity Mining" in text

    def test_json_output_is_valid_json(self):
        code, text = _run(["explain", *BASE, "--json", "--query", 'title:"Toy Story"'])
        assert code == 0
        payload = json.loads(text[: text.rindex("}") + 1])
        assert payload["query"]["item_titles"] == ["Toy Story"]

    def test_html_report_is_written(self, tmp_path):
        path = tmp_path / "fig2.html"
        code, text = _run(
            ["explain", *BASE, "--query", 'title:"Toy Story"', "--html", str(path)]
        )
        assert code == 0
        assert path.exists()
        assert "Similarity Mining" in path.read_text(encoding="utf-8")

    def test_unmatched_query_is_an_error_exit(self, capsys):
        code, _ = _run(["explain", *BASE, "--query", 'title:"No Such Movie"'])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_year_restriction_is_applied(self):
        code, text = _run(
            [
                "explain",
                *BASE,
                "--query",
                'title:"Toy Story"',
                "--start-year",
                "2001",
                "--end-year",
                "2001",
            ]
        )
        assert code == 0
        full_code, full_text = _run(["explain", *BASE, "--query", 'title:"Toy Story"'])
        restricted = int(text.split("Ratings: ")[1].split()[0])
        full = int(full_text.split("Ratings: ")[1].split()[0])
        assert restricted < full

    def test_no_geo_anchor_flag(self):
        code, text = _run(
            ["explain", *BASE, "--no-geo-anchor", "--query", 'title:"Toy Story"']
        )
        assert code == 0
        assert "Similarity Mining" in text


class TestExploreAndTimeline:
    def test_explore_prints_statistics_and_drilldown(self):
        code, text = _run(["explore", *BASE, "--query", 'title:"Toy Story"', "--group", "0"])
        assert code == 0
        assert "group:" in text
        assert "city drill-down:" in text

    def test_explore_writes_the_html_page(self, tmp_path):
        path = tmp_path / "fig3.html"
        code, _ = _run(
            ["explore", *BASE, "--query", 'title:"Toy Story"', "--html", str(path)]
        )
        assert code == 0
        assert "Rating distribution" in path.read_text(encoding="utf-8")

    def test_timeline_prints_one_line_per_year(self):
        code, text = _run(
            ["timeline", *BASE, "--query", 'title:"Toy Story"', "--min-ratings", "10"]
        )
        assert code == 0
        years = [line.split(":")[0] for line in text.strip().splitlines()]
        assert set(years) <= {"2000", "2001", "2002", "2003"}
        assert len(years) >= 2
