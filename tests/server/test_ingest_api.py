"""Serving-layer behaviour of the live-ingestion subsystem.

Covers the epoch wiring the tentpole demands: cache keys die with their
snapshot, untouched entries are carried forward without recomputation,
invalidated anchors are re-warmed against the new snapshot, and the
auto-compaction threshold drives the write path end to end.
"""

from __future__ import annotations

import pytest

from repro.config import MiningConfig, PipelineConfig, ServerConfig
from repro.errors import IngestError, ServerError
from repro.server.api import JsonApi, MapRat


@pytest.fixture()
def system(tiny_dataset, mining_config):
    return MapRat.for_dataset(tiny_dataset, PipelineConfig(mining=mining_config))


def ingest_probe_rating(system, item_id, timestamp):
    """One valid new rating for ``item_id`` by an existing reviewer."""
    reviewer = next(system.dataset.reviewers())
    return system.ingest(item_id, reviewer.reviewer_id, 5.0, timestamp=timestamp)


class TestEpochWiring:
    def test_compaction_bumps_epoch_and_row_count(self, system):
        assert system.epoch == 0
        rows = len(system.store)
        ingest_probe_rating(system, 1, timestamp=1)
        assert len(system.store) == rows  # readers still on the old snapshot
        payload = system.compact()
        assert payload["compacted"] is True
        assert payload["epoch"] == 1 == system.epoch
        assert len(system.store) == rows + 1

    def test_post_ingest_explain_reflects_newest_snapshot(self, system):
        before = system.explain_items([1])
        ingest_probe_rating(system, 1, timestamp=2)
        system.compact(rewarm=False)
        after = system.explain_items([1])
        assert after.query.num_ratings == before.query.num_ratings + 1
        # And the cached entry serves the *new* epoch from now on.
        again = system.explain_items([1])
        assert again.query.num_ratings == after.query.num_ratings

    def test_untouched_entries_are_carried_forward(self, system):
        untouched = system.explain_items([2])
        misses_before = system.cache.stats.misses
        ingest_probe_rating(system, 1, timestamp=3)  # touches item 1 only
        payload = system.compact(rewarm=False)
        assert payload["carried_entries"] >= 1
        served = system.explain_items([2])
        # A carried entry is a hit at the new epoch: no recomputation ran.
        assert system.cache.stats.misses == misses_before
        assert served.to_dict() == untouched.to_dict()
        # The carried value matches a from-scratch compute on the new store.
        fresh = system.explain_items([2], use_cache=False)
        assert served.query.num_ratings == fresh.query.num_ratings

    def test_touched_anchor_is_rewarmed(self, system):
        system.explain_items([1])
        ingest_probe_rating(system, 1, timestamp=4)
        payload = system.compact(rewarm=True)
        assert payload["invalidated_entries"] >= 1
        assert payload["rewarmed"] >= 1
        hits_before = system.cache.stats.hits
        served = system.explain_items([1])
        assert system.cache.stats.hits == hits_before + 1  # pre-warmed entry
        assert served.query.num_ratings == len(system.miner.slice_for_items([1]))

    def test_whole_store_geo_summary_invalidates_on_compact(self, system):
        before = system.geo_summary()
        ingest_probe_rating(system, 1, timestamp=5)
        system.compact(rewarm=False)
        after = system.geo_summary()
        assert after["num_ratings"] == before["num_ratings"] + 1

    def test_noop_compact_keeps_epoch_and_cache(self, system):
        system.explain_items([1])
        entries = len(system.cache)
        payload = system.compact()
        assert payload["compacted"] is False
        assert system.epoch == 0
        assert len(system.cache) == entries


class TestAutoCompaction:
    def test_threshold_triggers_compaction_during_ingest(self, tiny_dataset, mining_config):
        config = PipelineConfig(
            mining=mining_config, server=ServerConfig(auto_compact_threshold=2)
        )
        system = MapRat.for_dataset(tiny_dataset, config)
        reviewer = next(system.dataset.reviewers())
        first = system.ingest(1, reviewer.reviewer_id, 4.0, timestamp=10)
        assert first["auto_compacted"] is False and first["epoch"] == 0
        second = system.ingest(2, reviewer.reviewer_id, 4.0, timestamp=11)
        assert second["auto_compacted"] is True
        assert second["epoch"] == 1 == system.epoch
        assert second["buffered"] == 0

    def test_batch_size_limit_is_enforced(self, tiny_dataset, mining_config):
        config = PipelineConfig(
            mining=mining_config, server=ServerConfig(ingest_batch_size=2)
        )
        system = MapRat.for_dataset(tiny_dataset, config)
        reviewer = next(system.dataset.reviewers())
        entries = [
            {"item_id": 1, "reviewer_id": reviewer.reviewer_id, "score": 3, "timestamp": t}
            for t in range(3)
        ]
        with pytest.raises(IngestError, match="ingest_batch_size"):
            system.ingest_batch(entries)
        assert system.ingest_batch(entries[:2])["accepted"] == 2


class TestIngestEndpoints:
    @pytest.fixture()
    def api(self, system):
        return JsonApi(system)

    def test_ingest_endpoint_roundtrip(self, api):
        payload = api.dispatch(
            "ingest",
            {"item_id": "1", "reviewer_id": "1", "score": "5", "timestamp": "77"},
        )
        assert payload["status"] == "accepted"
        stats = api.dispatch("store_stats", {})
        assert stats["buffered"] == 1
        compacted = api.dispatch("compact", {})
        assert compacted["epoch"] == 1
        assert api.dispatch("store_stats", {})["buffered"] == 0

    def test_failed_batch_still_counts_its_buffered_prefix(self, api):
        entries = [
            {"item_id": 1, "reviewer_id": 1, "score": 3, "timestamp": 900},
            {"item_id": 1, "reviewer_id": 1, "score": 3, "timestamp": 901},
            {"item_id": 999999, "reviewer_id": 1, "score": 3},  # fails here
        ]
        import json as json_module

        with pytest.raises(ServerError, match="batch entry 2"):
            api.dispatch("ingest_batch", {"ratings": json_module.dumps(entries)})
        stats = api.dispatch("store_stats", {})
        # The valid prefix was buffered AND counted: totals never drift from
        # the rows that will reach the next snapshot.
        assert stats["buffered"] == 2
        assert stats["accepted_total"] == 2

    def test_nested_reviewer_record_registers_via_ingest(self, api):
        """The POST-body shape: a nested reviewer object on the ingest endpoint."""
        payload = api.dispatch(
            "ingest",
            {
                "item_id": 1,
                "reviewer_id": 88001,
                "score": 4,
                "reviewer": {
                    "gender": "F",
                    "age": 25,
                    "occupation": "artist",
                    "zipcode": "90210",
                },
            },
        )
        assert payload["status"] == "accepted"
        api.dispatch("compact", {})
        assert api.system.dataset.reviewer(88001).state == "CA"

    def test_new_reviewer_registration_resolves_location(self, api):
        api.dispatch(
            "ingest",
            {
                "item_id": "1",
                "reviewer_id": "77001",
                "score": "4",
                "gender": "F",
                "age": "25",
                "occupation": "artist",
                "zipcode": "94105",
            },
        )
        api.dispatch("compact", {})
        reviewer = api.system.dataset.reviewer(77001)
        assert reviewer.state == "CA"
        assert reviewer.city

    def test_validation_errors_are_400s(self, api):
        for params in (
            {"item_id": "1", "reviewer_id": "1"},  # missing score
            {"item_id": "x", "reviewer_id": "1", "score": "3"},
            {"item_id": "999999", "reviewer_id": "1", "score": "3"},
            {"item_id": "1", "reviewer_id": "555555", "score": "3"},
            {"item_id": "1", "reviewer_id": "1", "score": "11"},
        ):
            with pytest.raises(ServerError) as excinfo:
                api.dispatch("ingest", params)
            assert excinfo.value.status == 400

    def test_summary_reports_epoch_and_ingest_counters(self, api):
        api.dispatch("ingest", {"item_id": "1", "reviewer_id": "1", "score": "5"})
        info = api.dispatch("summary", {})
        assert info["serving"]["epoch"] == 0
        assert info["serving"]["ingest"]["buffered"] == 1
        api.dispatch("compact", {})
        info = api.dispatch("summary", {})
        assert info["serving"]["epoch"] == 1
        assert info["ratings"] == len(api.system.store)
