"""Data-sharded mining backend: equivalence, epochs, faults, reclamation.

The contract under test (ISSUE 8): the sharded backend's scatter-gather
merge is **bit-identical** to the serial/thread/process paths on the same
selections; the PR 5 epoch protocol carries over (publish-before-swap,
drain-then-retire of all K shard segments, stale-epoch retry); and shard
faults fail typed and bounded — a killed shard worker raises
:class:`~repro.errors.PoolError` and a stuck one trips the
``mining_timeout_s`` deadline, never a hang.

As in ``test_procpool.py``, the inline pool (``workers<=1``) exercises the
full scatter/merge/replay path without process startup, so the wide
equivalence matrix is cheap; spawn checks and the kill battery run against
real workers.
"""

from __future__ import annotations

import json
import os
import signal
import time
from multiprocessing import shared_memory

import pytest

from repro.config import MiningConfig, PipelineConfig, ServerConfig
from repro.core.miner import RatingMiner
from repro.errors import (
    ConstraintError,
    EmptyRatingSetError,
    MiningTimeoutError,
    PoolError,
    StaleEpochError,
)
from repro.geo.explorer import GeoExplorer
from repro.server.api import MapRat
from repro.server.shardpool import ShardedMiningPool

#: A spec that is valid but trivially empty: no attributes → no cells.  The
#: kill battery uses it because only the routing fields matter for a task
#: that is never (or vacuously) executed.
def noop_spec(epoch: int, shard_id: int) -> tuple:
    return ("cells", epoch, shard_id, (1,), None, None, (), (), 1)


def _resume(process) -> None:
    """SIGCONT a parked worker, shrugging off one that already exited.

    Used in ``finally`` blocks: a worker the monitor already reaped raises
    ``ProcessLookupError`` on the signal, and letting that propagate would
    skip the remaining resumes and the pool shutdown — a red test would
    then leave SIGSTOPped processes behind and wedge CI.
    """
    try:
        os.kill(process.pid, signal.SIGCONT)
    except (ProcessLookupError, OSError):
        pass


def normalized(payload) -> dict:
    """JSON round-trip with every (volatile) elapsed_seconds removed."""
    payload = json.loads(json.dumps(payload))

    def strip(node):
        if isinstance(node, dict):
            return {k: strip(v) for k, v in node.items() if k != "elapsed_seconds"}
        if isinstance(node, list):
            return [strip(v) for v in node]
        return node

    return strip(payload)


def build_system(dataset, mining_config, workers, **server_kwargs) -> MapRat:
    config = PipelineConfig(
        mining=mining_config,
        server=ServerConfig(
            mining_backend="sharded", mining_workers=workers, **server_kwargs
        ),
    )
    return MapRat.for_dataset(dataset, config)


@pytest.fixture(scope="module")
def spawned_system(tiny_dataset, mining_config):
    """One spawned-worker sharded system shared by the read-only checks."""
    system = build_system(tiny_dataset, mining_config, 2, mining_shards=3)
    yield system
    system.close()


class TestShardedBackendEquivalence:
    """Serial == sharded for every K and scheme, bit for bit."""

    @pytest.fixture(scope="class")
    def reference(self, tiny_dataset, mining_config):
        system = MapRat.for_dataset(
            tiny_dataset, PipelineConfig(mining=mining_config)
        )
        payloads = {
            "explain": normalized(system.explain('title:"Toy Story"').to_dict()),
            "geo": normalized(
                system.geo_explain('title:"Toy Story"', "CA").to_dict()
            ),
        }
        system.close()
        return payloads

    @pytest.mark.parametrize("scheme", ["reviewer", "region"])
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_inline_sharded_backend_matches_serial(
        self, tiny_dataset, mining_config, reference, shards, scheme
    ):
        system = build_system(
            tiny_dataset,
            mining_config,
            0,
            mining_shards=shards,
            mining_shard_scheme=scheme,
        )
        try:
            assert (
                normalized(system.explain('title:"Toy Story"').to_dict())
                == reference["explain"]
            )
            assert (
                normalized(system.geo_explain('title:"Toy Story"', "CA").to_dict())
                == reference["geo"]
            )
        finally:
            system.close()

    def test_spawned_sharded_backend_matches_serial(self, spawned_system, reference):
        assert (
            normalized(spawned_system.explain('title:"Toy Story"').to_dict())
            == reference["explain"]
        )
        assert (
            normalized(
                spawned_system.geo_explain('title:"Toy Story"', "CA").to_dict()
            )
            == reference["geo"]
        )

    def test_region_fanout_matches_serial(self, tiny_miner, mining_config):
        explorer = GeoExplorer(tiny_miner)
        serial = [
            normalized(result.to_dict())
            for result in explorer.explain_top_regions(limit=2)
        ]
        pool = ShardedMiningPool(workers=0, shards=3)
        try:
            pool.publish(tiny_miner.store)
            fanned = [
                normalized(result.to_dict())
                for result in explorer.explain_top_regions(limit=2, pool=pool)
            ]
        finally:
            pool.shutdown()
        assert fanned == serial

    def test_whole_store_geo_matches_serial(self, tiny_miner):
        # Whole-store regional mining takes the explorer's fast path on the
        # coordinator; the scatter itself still goes through the shards.
        explorer = GeoExplorer(tiny_miner)
        serial = normalized(explorer.explain_region(None, "CA").to_dict())
        pool = ShardedMiningPool(workers=0, shards=2)
        try:
            pool.publish(tiny_miner.store)
            sharded = normalized(
                explorer.explain_region(None, "CA", pool=pool).to_dict()
            )
        finally:
            pool.shutdown()
        assert sharded == serial

    def test_mining_error_types_cross_the_shard_boundary(self, spawned_system):
        # WY has no ratings for this selection in the tiny dataset; the
        # sharded path must surface the same typed error as the serial one
        # so the JSON layer keeps mapping it to the same 400 payload.
        with pytest.raises(EmptyRatingSetError):
            spawned_system.geo_explain('title:"Toy Story"', "WY")


class TestEpochLifecycle:
    """Publish-before-swap, drain-then-retire of K segments, stale epochs."""

    def test_publish_retires_drained_epochs(
        self, tiny_dataset, tiny_store, mining_config
    ):
        pool = ShardedMiningPool(workers=1, shards=2)
        try:
            pool.publish(tiny_store)
            miner = RatingMiner(tiny_store, mining_config)
            item_ids = [
                item.item_id for item in tiny_dataset.items_by_title("Toy Story")
            ]
            first = miner.explain_items(item_ids, pool=pool)
            from repro.data.ingest import compact_snapshot

            rating = next(iter(tiny_dataset.ratings()))
            bumped, _ = compact_snapshot(tiny_store, [rating], use_incremental=False)
            pool.publish(bumped)
            assert pool.current_epoch == bumped.epoch
            assert pool.to_dict()["live_epochs"] == [bumped.epoch]
            with pytest.raises(StaleEpochError):
                miner.explain_items(item_ids, pool=pool)
            second = RatingMiner(bumped, mining_config).explain_items(
                item_ids, pool=pool
            )
            assert normalized(second.to_dict()) == normalized(first.to_dict())
        finally:
            pool.shutdown()

    def test_publish_without_retire_keeps_old_epoch_until_retire_older(
        self, tiny_dataset, tiny_store, mining_config
    ):
        pool = ShardedMiningPool(workers=1, shards=2)
        try:
            pool.publish(tiny_store)
            from repro.data.ingest import compact_snapshot

            rating = next(iter(tiny_dataset.ratings()))
            bumped, _ = compact_snapshot(tiny_store, [rating], use_incremental=False)
            pool.publish(bumped, retire_previous=False)
            assert sorted(pool.to_dict()["live_epochs"]) == [
                tiny_store.epoch, bumped.epoch
            ]
            old_miner = RatingMiner(tiny_store, mining_config)
            item_ids = [
                item.item_id for item in tiny_dataset.items_by_title("Toy Story")
            ]
            old_miner.explain_items(item_ids, pool=pool)  # old epoch still live
            pool.retire_older(bumped.epoch)
            assert pool.to_dict()["live_epochs"] == [bumped.epoch]
            with pytest.raises(StaleEpochError):
                old_miner.explain_items(item_ids, pool=pool)
        finally:
            pool.shutdown()

    def test_facade_retries_stale_serving_state(self, tiny_dataset, mining_config):
        system = build_system(tiny_dataset, mining_config, 1, mining_shards=2)
        try:
            stale = system.serving  # grabbed before the compaction
            system.ingest(item_id=1, reviewer_id=1, score=5, timestamp=424242)
            assert system.compact()["compacted"]
            assert system.pool.to_dict()["live_epochs"] == [system.epoch]
            with pytest.raises(StaleEpochError):
                stale.miner.explain_items([1], pool=system.pool)
            result = system.explain_items([1], use_cache=False)
            assert result.query.num_ratings >= 1
        finally:
            system.close()

    def test_ingest_and_compact_while_spawned_pool_is_live(
        self, tiny_dataset, mining_config
    ):
        system = build_system(tiny_dataset, mining_config, 2, mining_shards=2)
        try:
            before = system.explain('title:"Toy Story"', use_cache=False)
            epochs = [system.epoch]
            for step in range(2):
                system.ingest(
                    item_id=before.query.item_ids[0],
                    reviewer_id=1 + step,
                    score=5,
                    timestamp=1_700_000_000 + step,
                )
                assert system.compact()["compacted"]
                epochs.append(system.epoch)
                after = system.explain('title:"Toy Story"', use_cache=False)
                assert after.query.num_ratings == before.query.num_ratings + step + 1
                assert system.pool.to_dict()["live_epochs"] == [system.epoch]
            assert epochs == sorted(epochs) and len(set(epochs)) == 3  # monotone
        finally:
            system.close()

    def test_manifest_describes_the_published_epoch(self, tiny_store):
        pool = ShardedMiningPool(workers=2, shards=3)
        try:
            pool.publish(tiny_store)
            manifest = pool.manifest_for(tiny_store.epoch)
            assert manifest is not None
            assert manifest.num_shards == 3
            assert manifest.scheme == "reviewer"
            assert manifest.epoch == tiny_store.epoch
            assert manifest.total_rows == len(tiny_store)
        finally:
            pool.shutdown()
        # Inline pools export no segments; there is nothing to describe.
        inline = ShardedMiningPool(workers=0, shards=2)
        try:
            inline.publish(tiny_store)
            assert inline.manifest_for(tiny_store.epoch) is None
        finally:
            inline.shutdown()


class TestShardFaults:
    """A dead or stuck shard fails typed and bounded — never a hang."""

    def test_killed_shard_worker_fails_gather_with_pool_error(self, tiny_store):
        pool = ShardedMiningPool(workers=2, shards=2, timeout_s=60)
        try:
            pool.publish(tiny_store)
            victim = pool._procs[0]  # shard 0's affine worker (0 % 2)
            os.kill(victim.pid, signal.SIGSTOP)  # park it so the task queues
            try:
                future = pool.submit(noop_spec(tiny_store.epoch, 0))
            finally:
                try:
                    os.kill(victim.pid, signal.SIGKILL)
                except (ProcessLookupError, OSError):
                    pass  # already dead is exactly what we wanted anyway
            # The monitor must fail the outstanding future long before the
            # 60s deadline — PoolError, not MiningTimeoutError, not a hang.
            started = time.monotonic()
            with pytest.raises(PoolError, match="died unexpectedly"):
                pool.gather(future)
            assert time.monotonic() - started < 30
            # The pool is broken: later submissions fail fast and say why.
            assert "died unexpectedly" in pool.to_dict()["broken"]
            with pytest.raises(PoolError, match="died unexpectedly"):
                pool.submit(noop_spec(tiny_store.epoch, 1))
        finally:
            pool.shutdown()

    def test_stuck_shard_worker_trips_the_gather_deadline(self, tiny_store):
        pool = ShardedMiningPool(workers=2, shards=2, timeout_s=0.2)
        stopped = []
        try:
            pool.publish(tiny_store)
            for process in pool._procs:
                os.kill(process.pid, signal.SIGSTOP)
                stopped.append(process)
            future = pool.submit(noop_spec(tiny_store.epoch, 0))
            with pytest.raises(MiningTimeoutError, match="0.2s deadline"):
                pool.gather(future)
        finally:
            # Resume every parked worker even if one signal fails, and shut
            # the pool down regardless — a red assertion above must not
            # leave SIGSTOPped processes behind.
            try:
                for process in stopped:
                    _resume(process)
            finally:
                pool.shutdown()

    def test_server_config_timeout_reaches_the_pool(self, tiny_dataset, mining_config):
        system = build_system(
            tiny_dataset, mining_config, 0, mining_shards=2, mining_timeout_s=7.5
        )
        try:
            assert system.pool.timeout_s == 7.5
        finally:
            system.close()

    def test_superseded_segments_unlink_only_after_drain(
        self, tiny_dataset, tiny_store
    ):
        # Retire-while-inflight: epoch 0's K segments must survive until its
        # last task resolves, then all unlink (drain-then-retire, as PR 5).
        from repro.data.ingest import compact_snapshot

        pool = ShardedMiningPool(workers=2, shards=2)
        try:
            pool.publish(tiny_store)
            old_segments = pool.segment_names()
            assert len(old_segments) == 2
            victim = pool._procs[0]
            os.kill(victim.pid, signal.SIGSTOP)  # hold shard 0's task inflight
            try:
                future = pool.submit(noop_spec(tiny_store.epoch, 0))
                rating = next(iter(tiny_dataset.ratings()))
                bumped, _ = compact_snapshot(
                    tiny_store, [rating], use_incremental=False
                )
                pool.publish(bumped)  # retires epoch 0 — but it must not drop yet
                assert pool.to_dict()["retiring_epochs"] == [tiny_store.epoch]
                assert set(old_segments) <= set(pool.segment_names())
                for name in old_segments:  # segments still linked while inflight
                    shared_memory.SharedMemory(name=name).close()
            finally:
                _resume(victim)
            pool.gather(future)  # drain: the collector retires epoch 0 first
            assert pool.to_dict()["retiring_epochs"] == []
            assert set(pool.segment_names()).isdisjoint(old_segments)
            for name in old_segments:
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=name)
        finally:
            pool.shutdown()


class TestShutdownAndReclamation:
    def test_close_reclaims_every_segment(self, tiny_dataset, mining_config):
        system = build_system(tiny_dataset, mining_config, 2, mining_shards=3)
        system.explain('title:"Toy Story"', use_cache=False)
        segments = set(system.pool.segment_names())
        assert len(segments) == 3  # one segment per shard
        system.ingest(item_id=1, reviewer_id=1, score=4, timestamp=99)
        system.compact()
        segments |= set(system.pool.segment_names())
        assert len(segments) == 6  # both epochs' exports existed
        system.close()
        for name in segments:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_submit_after_shutdown_raises_pool_error(self, tiny_store):
        pool = ShardedMiningPool(workers=1, shards=2)
        pool.publish(tiny_store)
        pool.shutdown()
        with pytest.raises(PoolError):
            pool.submit(noop_spec(tiny_store.epoch, 0))

    def test_close_is_idempotent(self, tiny_dataset, mining_config):
        system = build_system(tiny_dataset, mining_config, 1, mining_shards=2)
        system.close()
        system.close()

    def test_invalid_arguments_rejected(self):
        with pytest.raises(PoolError):
            ShardedMiningPool(workers=-1)
        with pytest.raises(PoolError):
            ShardedMiningPool(shards=0)
        with pytest.raises(PoolError):
            ShardedMiningPool(scheme="zipcode")
        with pytest.raises(PoolError):
            ShardedMiningPool(timeout_s=0)

    def test_server_config_validates_sharding_fields(self):
        with pytest.raises(ConstraintError):
            ServerConfig(mining_shards=0)
        with pytest.raises(ConstraintError):
            ServerConfig(mining_shard_scheme="zipcode")
        with pytest.raises(ConstraintError):
            ServerConfig(mining_backend="threaded")
