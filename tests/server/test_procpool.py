"""Process-parallel mining backend: equivalence, epochs, lifecycle.

The contract under test (ISSUE 5): the process backend is **bit-identical**
to the serial and thread paths on the same selections; compactions publish a
new shared-memory epoch and retire the superseded one only after its
in-flight tasks drain (no stale-epoch reads, monotone epochs); and closing
the system reclaims every shared-memory segment.

The inline pool (``workers<=1``) exercises the exact spec-executor path
without process startup, so most equivalence checks are cheap; a smaller set
of checks runs against real spawned workers.
"""

from __future__ import annotations

import json
from multiprocessing import shared_memory

import pytest

from repro.config import MiningConfig, PipelineConfig, ServerConfig
from repro.core.miner import RatingMiner
from repro.errors import EmptyRatingSetError, PoolError, StaleEpochError
from repro.geo.explorer import GeoExplorer
from repro.server.api import MapRat
from repro.server.procpool import ProcessMiningPool


def normalized(payload) -> dict:
    """JSON round-trip with every (volatile) elapsed_seconds removed."""
    payload = json.loads(json.dumps(payload))

    def strip(node):
        if isinstance(node, dict):
            return {k: strip(v) for k, v in node.items() if k != "elapsed_seconds"}
        if isinstance(node, list):
            return [strip(v) for v in node]
        return node

    return strip(payload)


def build_system(dataset, mining_config, backend, workers, **server_kwargs) -> MapRat:
    config = PipelineConfig(
        mining=mining_config,
        server=ServerConfig(
            mining_backend=backend, mining_workers=workers, **server_kwargs
        ),
    )
    return MapRat.for_dataset(dataset, config)


@pytest.fixture(scope="module")
def spawned_system(tiny_dataset, mining_config):
    """One spawned-worker system shared by the read-only spawn checks."""
    system = build_system(tiny_dataset, mining_config, "process", 2)
    yield system
    system.close()


class TestProcessBackendEquivalence:
    """Serial == thread == process (inline and spawned), bit for bit."""

    @pytest.fixture(scope="class")
    def reference(self, tiny_dataset, mining_config):
        system = build_system(tiny_dataset, mining_config, "thread", 0)
        payloads = {
            "explain": normalized(system.explain('title:"Toy Story"').to_dict()),
            "geo": normalized(
                system.geo_explain('title:"Toy Story"', "CA").to_dict()
            ),
        }
        system.close()
        return payloads

    def test_inline_process_backend_matches_serial(
        self, tiny_dataset, mining_config, reference
    ):
        system = build_system(tiny_dataset, mining_config, "process", 1)
        try:
            assert (
                normalized(system.explain('title:"Toy Story"').to_dict())
                == reference["explain"]
            )
            assert (
                normalized(system.geo_explain('title:"Toy Story"', "CA").to_dict())
                == reference["geo"]
            )
        finally:
            system.close()

    def test_spawned_process_backend_matches_serial(self, spawned_system, reference):
        assert (
            normalized(spawned_system.explain('title:"Toy Story"').to_dict())
            == reference["explain"]
        )
        assert (
            normalized(
                spawned_system.geo_explain('title:"Toy Story"', "CA").to_dict()
            )
            == reference["geo"]
        )

    def test_region_fanout_matches_serial(self, tiny_miner, mining_config):
        explorer = GeoExplorer(tiny_miner)
        serial = [
            normalized(result.to_dict())
            for result in explorer.explain_top_regions(limit=2)
        ]
        pool = ProcessMiningPool(workers=1)
        try:
            pool.publish(tiny_miner.store)
            fanned = [
                normalized(result.to_dict())
                for result in explorer.explain_top_regions(limit=2, pool=pool)
            ]
        finally:
            pool.shutdown()
        assert fanned == serial

    def test_mining_error_types_cross_the_process_boundary(self, spawned_system):
        # WY has no ratings for this selection in the tiny dataset; the
        # worker-side EmptyRatingSetError must reach the caller as-is so the
        # JSON layer keeps mapping it to the same 400 payload.
        with pytest.raises(EmptyRatingSetError):
            spawned_system.geo_explain('title:"Toy Story"', "WY")


class TestEpochLifecycle:
    """Publish-before-swap, drain-then-retire, stale-epoch handling."""

    def test_publish_retires_drained_epochs(self, tiny_dataset, tiny_store, mining_config):
        pool = ProcessMiningPool(workers=1)
        try:
            pool.publish(tiny_store)
            config = mining_config
            miner = RatingMiner(tiny_store, config)
            item_ids = [
                item.item_id for item in tiny_dataset.items_by_title("Toy Story")
            ]
            first = miner.explain_items(item_ids, pool=pool)
            # A "new epoch": same rows re-tagged via the compaction entry point.
            from repro.data.ingest import compact_snapshot

            rating = next(iter(tiny_dataset.ratings()))
            bumped, _ = compact_snapshot(tiny_store, [rating], use_incremental=False)
            assert bumped.epoch == tiny_store.epoch + 1
            pool.publish(bumped)
            assert pool.current_epoch == bumped.epoch
            assert pool.to_dict()["live_epochs"] == [bumped.epoch]
            # The retired epoch refuses new submissions...
            with pytest.raises(StaleEpochError):
                miner.explain_items(item_ids, pool=pool)
            # ...while the published epoch serves the same selection.
            second = RatingMiner(bumped, config).explain_items(item_ids, pool=pool)
            assert normalized(second.to_dict()) == normalized(first.to_dict())
        finally:
            pool.shutdown()

    def test_publish_without_retire_keeps_old_epoch_until_retire_older(
        self, tiny_dataset, tiny_store, mining_config
    ):
        # The compaction protocol: publish(retire_previous=False) must leave
        # the previous epoch submittable (the serving state still points at
        # it until the swap); retire_older() then closes it.
        pool = ProcessMiningPool(workers=1)
        try:
            pool.publish(tiny_store)
            from repro.data.ingest import compact_snapshot

            rating = next(iter(tiny_dataset.ratings()))
            bumped, _ = compact_snapshot(tiny_store, [rating], use_incremental=False)
            pool.publish(bumped, retire_previous=False)
            assert sorted(pool.to_dict()["live_epochs"]) == [
                tiny_store.epoch, bumped.epoch
            ]
            old_miner = RatingMiner(tiny_store, mining_config)
            item_ids = [
                item.item_id for item in tiny_dataset.items_by_title("Toy Story")
            ]
            old_miner.explain_items(item_ids, pool=pool)  # old epoch still live
            pool.retire_older(bumped.epoch)
            assert pool.to_dict()["live_epochs"] == [bumped.epoch]
            with pytest.raises(StaleEpochError):
                old_miner.explain_items(item_ids, pool=pool)
        finally:
            pool.shutdown()

    def test_facade_retries_stale_serving_state(self, tiny_dataset, mining_config):
        system = build_system(tiny_dataset, mining_config, "process", 1)
        try:
            stale = system.serving  # grabbed before the compaction
            system.ingest(item_id=1, reviewer_id=1, score=5, timestamp=424242)
            assert system.compact()["compacted"]
            assert system.pool.to_dict()["live_epochs"] == [system.epoch]
            # Direct mining against the stale bundle fails fast...
            with pytest.raises(StaleEpochError):
                stale.miner.explain_items([1], pool=system.pool)
            # ...but the façade's retry serves the request from the current
            # epoch (this is the narrow race a compaction can expose).
            result = system.explain_items([1], use_cache=False)
            assert result.query.num_ratings >= 1
        finally:
            system.close()

    def test_worker_survives_attach_of_already_retired_epoch(
        self, tiny_dataset, tiny_store, mining_config
    ):
        # Two publishes in quick succession: epoch 0's attach is still queued
        # behind worker startup when epoch 1 retires and unlinks it.  The
        # stale attach must be skipped in the worker (its segment is gone),
        # never crash it — a dead worker would mark the whole pool broken.
        from repro.data.ingest import compact_snapshot

        pool = ProcessMiningPool(workers=2)
        try:
            pool.publish(tiny_store)
            rating = next(iter(tiny_dataset.ratings()))
            bumped, _ = compact_snapshot(tiny_store, [rating], use_incremental=False)
            pool.publish(bumped)  # retires + unlinks epoch 0 immediately
            item_ids = [
                item.item_id for item in tiny_dataset.items_by_title("Toy Story")
            ]
            result = RatingMiner(bumped, mining_config).explain_items(
                item_ids, pool=pool
            )
            assert result.query.num_ratings > 0
            assert pool.to_dict()["broken"] is None
        finally:
            pool.shutdown()

    def test_ingest_and_compact_while_spawned_pool_is_live(
        self, tiny_dataset, mining_config
    ):
        system = build_system(tiny_dataset, mining_config, "process", 2)
        try:
            before = system.explain('title:"Toy Story"', use_cache=False)
            epochs = [system.epoch]
            for step in range(2):
                system.ingest(
                    item_id=before.query.item_ids[0],
                    reviewer_id=1 + step,
                    score=5,
                    timestamp=1_700_000_000 + step,
                )
                assert system.compact()["compacted"]
                epochs.append(system.epoch)
                after = system.explain('title:"Toy Story"', use_cache=False)
                # No stale-epoch read: each post-compaction explain sees the
                # appended rows of *its* epoch.
                assert after.query.num_ratings == before.query.num_ratings + step + 1
                assert system.pool.to_dict()["live_epochs"] == [system.epoch]
            assert epochs == sorted(epochs) and len(set(epochs)) == 3  # monotone
        finally:
            system.close()


class TestShutdownAndReclamation:
    def test_close_reclaims_every_segment(self, tiny_dataset, mining_config):
        system = build_system(tiny_dataset, mining_config, "process", 2)
        system.explain('title:"Toy Story"', use_cache=False)
        segments = set(system.pool.segment_names())
        system.ingest(item_id=1, reviewer_id=1, score=4, timestamp=99)
        system.compact()
        segments |= set(system.pool.segment_names())
        assert segments  # at least the two epochs' exports existed
        system.close()
        for name in segments:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_submit_after_shutdown_raises_pool_error(self, tiny_store):
        pool = ProcessMiningPool(workers=1)
        pool.publish(tiny_store)
        pool.shutdown()
        with pytest.raises(PoolError):
            pool.submit(("similarity", tiny_store.epoch, (1,), None, None, None))

    def test_close_is_idempotent(self, tiny_dataset, mining_config):
        system = build_system(tiny_dataset, mining_config, "process", 1)
        system.close()
        system.close()

    def test_negative_workers_rejected(self):
        with pytest.raises(PoolError):
            ProcessMiningPool(workers=-1)
