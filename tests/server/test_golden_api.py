"""Golden-request regression suite for the JSON API.

Replays a fixed-seed corpus of requests through :class:`~repro.server.api.JsonApi`
and compares the **full response dicts** against checked-in golden files under
``tests/server/golden/``.  Mining is deterministic for a fixed seed, so any
drift in a response is a behaviour change that must be reviewed — rerun with

    pytest tests/server/test_golden_api.py --update-golden

to rewrite the golden files after an intentional change, and commit the diff.

Volatile fields (wall-clock timings, cache/pool counters) are normalised
before comparison so the suite is stable across machines and replay order;
everything else — group selections, objectives, coverages, histograms, error
payloads — is compared exactly.

The suite is also the **backend differential**: setting
``MAPRAT_MINING_BACKEND=process`` (the dedicated CI lane does) replays the
same corpus through the process-parallel mining backend against the *same*
golden files, proving the shared-memory worker path byte-identical to the
thread path.  Likewise, setting ``MAPRAT_GOLDEN_DATA_DIR=1`` (the durability
CI lane) gives every replayed system a temporary data directory, proving
that WAL-backed ingest and recovery-enabled startup leave every public
response byte-identical to the in-memory path.  The durability endpoints
themselves (``snapshot``/``recovery_info``) replay against a dedicated
durable system through :data:`DURABLE_CORPUS`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.config import PipelineConfig, ServerConfig
from repro.errors import ServerError
from repro.server.api import JsonApi, MapRat

#: Mining backend the corpus replays under ("thread" unless the CI lane
#: overrides it); golden files are backend-independent by construction.
BACKEND = os.environ.get("MAPRAT_MINING_BACKEND", "thread")

#: Worker count for the replayed systems (the fleet lane pins 2 localhost
#: workers; every backend is bit-identical at any count, so the golden
#: files never depend on it).
WORKERS = int(os.environ.get("MAPRAT_MINING_WORKERS", "4"))

#: When truthy, the ``api``/``ingest_api`` systems get a temporary data
#: directory — the durability differential lane.  Golden files must not
#: change: durability is a recovery guarantee, never a response change.
GOLDEN_DATA_DIR = os.environ.get("MAPRAT_GOLDEN_DATA_DIR", "") not in ("", "0")

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: The replayed corpus: (name, endpoint, params).  Covers every public
#: endpoint of ``JsonApi.routes()`` at least once, plus the error paths.
CORPUS = [
    ("summary", "summary", {}),
    ("suggest_toy", "suggest", {"prefix": "Toy"}),
    ("suggest_jur_limit_3", "suggest", {"prefix": "Jur", "limit": "3"}),
    ("suggest_no_match", "suggest", {"prefix": "zzz-nothing"}),
    ("explain_toy_story", "explain", {"q": 'title:"Toy Story"'}),
    ("explain_toy_story_lowercase", "explain", {"q": 'title:"toy story"'}),
    ("explain_forrest_gump", "explain", {"q": 'title:"Forrest Gump"'}),
    (
        "explain_year_2001",
        "explain",
        {"q": 'title:"Toy Story"', "start_year": "2001", "end_year": "2001"},
    ),
    (
        "explain_genre_and_director",
        "explain",
        {"q": 'genre:Thriller AND director:"Steven Spielberg"'},
    ),
    (
        "statistics_similarity_g0",
        "statistics",
        {"q": 'title:"Toy Story"', "task": "similarity", "group": "0"},
    ),
    (
        "statistics_diversity_g0",
        "statistics",
        {"q": 'title:"Toy Story"', "task": "diversity", "group": "0"},
    ),
    (
        "drilldown_similarity_g0",
        "drilldown",
        {"q": 'title:"Toy Story"', "task": "similarity", "group": "0"},
    ),
    (
        "drilldown_diversity_g0",
        "drilldown",
        {"q": 'title:"Forrest Gump"', "task": "diversity", "group": "0"},
    ),
    ("timeline_toy_story", "timeline", {"q": 'title:"Toy Story"', "min_ratings": "10"}),
    (
        "timeline_forrest_gump",
        "timeline",
        {"q": 'title:"Forrest Gump"', "min_ratings": "10"},
    ),
    ("warmup_limit_2", "warmup", {"limit": "2"}),
    ("warmup_with_regions", "warmup", {"limit": "1", "regions": "2"}),
    ("geo_summary_country", "geo_summary", {}),
    ("geo_summary_toy_story", "geo_summary", {"q": 'title:"Toy Story"'}),
    (
        "geo_summary_min_size_20",
        "geo_summary",
        {"q": 'title:"Toy Story"', "min_size": "20"},
    ),
    ("geo_drilldown_states", "geo_drilldown", {"q": 'title:"Toy Story"'}),
    ("geo_drilldown_ca_cities", "geo_drilldown", {"region": "CA"}),
    (
        "geo_drilldown_ca_zipcodes",
        "geo_drilldown",
        {"region": "CA", "by": "zipcode"},
    ),
    (
        "geo_drilldown_lowercase_region",
        "geo_drilldown",
        {"region": "ca", "q": 'title:"Toy Story"'},
    ),
    (
        "geo_explain_toy_story_ca",
        "geo_explain",
        {"q": 'title:"Toy Story"', "region": "CA"},
    ),
    ("choropleth_toy_story", "choropleth", {"q": 'title:"Toy Story"'}),
    (
        "choropleth_toy_story_diversity",
        "choropleth",
        {"q": 'title:"Toy Story"', "task": "diversity"},
    ),
    ("error_geo_unknown_region", "geo_drilldown", {"region": "ZZ"}),
    ("error_geo_bad_min_size", "geo_summary", {"min_size": "abc"}),
    ("error_geo_bad_by", "geo_drilldown", {"region": "CA", "by": "county"}),
    ("error_geo_explain_missing_region", "geo_explain", {"q": 'title:"Toy Story"'}),
    (
        "error_geo_explain_empty_region",
        "geo_explain",
        {"q": 'title:"Toy Story"', "region": "WY"},
    ),
    (
        "error_choropleth_bad_task",
        "choropleth",
        {"q": 'title:"Toy Story"', "task": "nonsense"},
    ),
    ("error_missing_query", "explain", {}),
    ("error_unmatched_query", "explain", {"q": 'title:"No Such Movie"'}),
    ("error_bad_year", "explain", {"q": "Toy", "start_year": "not-a-year"}),
    ("error_bad_group_index", "statistics", {"q": 'title:"Toy Story"', "group": "99"}),
    ("error_unknown_endpoint", "nonsense", {}),
]

#: The live-ingestion corpus replays against its **own** system (ingest
#: mutates the store, and the frozen-store corpus above must stay
#: byte-identical).  Order matters and is part of the contract: each entry
#: documents the epoch/buffer state the previous entries left behind.
INGEST_CORPUS = [
    ("ingest_store_stats_initial", "store_stats", {}),
    (
        "ingest_accept",
        "ingest",
        {"item_id": "1", "reviewer_id": "1", "score": "5", "timestamp": "123"},
    ),
    (
        "ingest_duplicate",
        "ingest",
        {"item_id": "1", "reviewer_id": "1", "score": "5", "timestamp": "123"},
    ),
    (
        "ingest_new_reviewer",
        "ingest",
        {
            "item_id": "2",
            "reviewer_id": "9001",
            "score": "4",
            "timestamp": "456",
            "gender": "F",
            "age": "25",
            "occupation": "artist",
            "zipcode": "90210",
        },
    ),
    (
        # Brings the buffer to the auto_compact_threshold of the fixture:
        # the response embeds the compaction summary for epoch 1.
        "ingest_batch_compacts",
        "ingest_batch",
        {
            "ratings": json.dumps(
                [
                    {"item_id": 3, "reviewer_id": 2, "score": 2, "timestamp": 789},
                    {"item_id": 3, "reviewer_id": 9001, "score": 1, "timestamp": 790},
                ]
            )
        },
    ),
    ("ingest_store_stats_after_compaction", "store_stats", {}),
    ("ingest_compact_noop", "compact", {}),
    ("error_ingest_unknown_item", "ingest", {"item_id": "999999", "reviewer_id": "1", "score": "3"}),
    (
        "error_ingest_unknown_reviewer",
        "ingest",
        {"item_id": "1", "reviewer_id": "424242", "score": "3"},
    ),
    ("error_ingest_bad_score", "ingest", {"item_id": "1", "reviewer_id": "1", "score": "9"}),
    (
        "error_ingest_score_not_number",
        "ingest",
        {"item_id": "1", "reviewer_id": "1", "score": "five"},
    ),
    ("error_ingest_missing_fields", "ingest", {"reviewer_id": "1", "score": "3"}),
    (
        "error_ingest_existing_reviewer_record",
        "ingest",
        {
            "item_id": "1",
            "reviewer_id": "1",
            "score": "3",
            "gender": "M",
            "age": "35",
            "occupation": "lawyer",
            "zipcode": "10001",
        },
    ),
    ("error_ingest_batch_missing", "ingest_batch", {}),
    ("error_ingest_batch_malformed_json", "ingest_batch", {"ratings": "not-json"}),
    ("error_ingest_batch_not_array", "ingest_batch", {"ratings": '{"item_id": 1}'}),
    (
        "error_ingest_batch_bad_entry",
        "ingest_batch",
        {"ratings": '[{"item_id": 1, "score": 3}]'},
    ),
    (
        "error_ingest_batch_too_large",
        "ingest_batch",
        {
            "ratings": json.dumps(
                [
                    {"item_id": 1, "reviewer_id": 1, "score": 3, "timestamp": t}
                    for t in range(9)
                ]
            )
        },
    ),
]

#: The durability corpus replays against its own WAL-backed system (the
#: endpoints only exist with a data directory, and ingest mutates state).
#: Order matters: each entry documents the WAL/snapshot state the previous
#: entries left behind.
DURABLE_CORPUS = [
    ("durable_recovery_info_fresh", "recovery_info", {}),
    (
        "durable_ingest_new_reviewer",
        "ingest",
        {
            "item_id": "2",
            "reviewer_id": "9001",
            "score": "4",
            "timestamp": "456",
            "gender": "F",
            "age": "25",
            "occupation": "artist",
            "zipcode": "90210",
        },
    ),
    ("durable_compact_epoch_1", "compact", {}),
    ("durable_snapshot_on_demand", "snapshot", {}),
    (
        "durable_ingest_buffered",
        "ingest",
        {"item_id": "1", "reviewer_id": "9001", "score": "3", "timestamp": "500"},
    ),
    ("durable_recovery_info_active", "recovery_info", {}),
    ("durable_store_stats", "store_stats", {}),
]

#: Keys whose values depend on wall-clock or replay order, never on behaviour.
#: ``description`` is replay-order-dependent by design: equivalent requests
#: share one canonical cache entry, which keeps the description of whichever
#: request populated it (first-writer-wins), e.g. a title's case variants.
#: ``path``/``data_dir``/``bytes`` are durability-payload fields tied to the
#: temporary directory (and to pickle/platform details) of one run.
VOLATILE_KEYS = {
    "elapsed_seconds",
    "cache",
    "cache_entries",
    "serving",
    "description",
    "path",
    "data_dir",
    "bytes",
}


def normalize(payload):
    """Replace volatile values so responses compare stably across runs."""
    if isinstance(payload, dict):
        return {
            key: ("<volatile>" if key in VOLATILE_KEYS else normalize(value))
            for key, value in payload.items()
        }
    if isinstance(payload, list):
        return [normalize(value) for value in payload]
    return payload


def _maybe_data_dir(tmp_path_factory, label):
    """A temporary data_dir under the durability lane, None otherwise."""
    if not GOLDEN_DATA_DIR:
        return None
    return str(tmp_path_factory.mktemp(label))


@pytest.fixture(scope="module")
def api(tiny_dataset, mining_config, tmp_path_factory):
    """A fresh deterministic system; the corpus replays against one instance."""
    config = PipelineConfig(
        mining=mining_config,
        server=ServerConfig(
            mining_backend=BACKEND,
            mining_workers=WORKERS,
            data_dir=_maybe_data_dir(tmp_path_factory, "golden-frozen"),
        ),
    )
    system = MapRat.for_dataset(tiny_dataset, config)
    yield JsonApi(system)
    system.close()  # the process backend owns worker procs + shm segments


@pytest.fixture(scope="module")
def ingest_api(tiny_dataset, mining_config, tmp_path_factory):
    """A dedicated mutable system for the ingestion corpus.

    ``auto_compact_threshold=4`` makes the batch entry of the corpus trigger
    the epoch-1 compaction deterministically; the tiny ``ingest_batch_size``
    keeps the oversized-batch error shape small.
    """
    config = PipelineConfig(
        mining=mining_config,
        server=ServerConfig(
            auto_compact_threshold=4,
            ingest_batch_size=8,
            mining_backend=BACKEND,
            mining_workers=WORKERS,
            data_dir=_maybe_data_dir(tmp_path_factory, "golden-ingest"),
        ),
    )
    system = MapRat.for_dataset(tiny_dataset, config)
    yield JsonApi(system)
    system.close()


@pytest.fixture(scope="module")
def durable_api(tiny_dataset, mining_config, tmp_path_factory):
    """A WAL-backed system for the durability corpus (always has a data_dir)."""
    config = PipelineConfig(
        mining=mining_config,
        server=ServerConfig(
            mining_backend=BACKEND,
            mining_workers=WORKERS,
            data_dir=str(tmp_path_factory.mktemp("golden-durable")),
        ),
    )
    system = MapRat.for_dataset(tiny_dataset, config)
    yield JsonApi(system)
    system.close()


def replay(api, endpoint, params):
    """One request through the dispatcher; error responses become payloads."""
    try:
        return api.dispatch(endpoint, params)
    except ServerError as exc:
        return {"error": str(exc), "status": exc.status}


def assert_matches_golden(request, name, payload):
    """Compare one normalised payload against its checked-in golden file."""
    payload = json.loads(json.dumps(payload))
    golden_path = GOLDEN_DIR / f"{name}.json"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return
    if not golden_path.exists():
        pytest.fail(
            f"golden file {golden_path} is missing; run "
            "pytest tests/server/test_golden_api.py --update-golden and commit it"
        )
    assert payload == json.loads(golden_path.read_text())


class TestGoldenRequests:
    def test_corpus_covers_every_public_endpoint(self, api):
        exercised = {endpoint for _, endpoint, _ in CORPUS}
        exercised |= {endpoint for _, endpoint, _ in INGEST_CORPUS}
        exercised |= {endpoint for _, endpoint, _ in DURABLE_CORPUS}
        assert exercised >= set(api.routes().keys())

    def test_corpus_names_are_unique(self):
        names = [name for name, _, _ in CORPUS + INGEST_CORPUS + DURABLE_CORPUS]
        assert len(names) == len(set(names))

    @pytest.mark.parametrize(
        "name,endpoint,params", CORPUS, ids=[name for name, _, _ in CORPUS]
    )
    def test_response_matches_golden(self, api, request, name, endpoint, params):
        # json round-trip: tuples become lists, exactly as the HTTP layer
        # would serialise them, so golden comparison matches the wire format.
        assert_matches_golden(request, name, normalize(replay(api, endpoint, params)))


class TestGoldenIngestRequests:
    """The ingestion corpus: success and validation-error shapes.

    Runs against its own system (see :func:`ingest_api`) in corpus order —
    the frozen-store corpus above must never observe ingest mutations, and
    ``git diff`` over ``tests/server/golden/`` after a regeneration proves
    the pre-existing mining/geo goldens stayed byte-identical.
    """

    @pytest.mark.parametrize(
        "name,endpoint,params",
        INGEST_CORPUS,
        ids=[name for name, _, _ in INGEST_CORPUS],
    )
    def test_response_matches_golden(self, ingest_api, request, name, endpoint, params):
        assert_matches_golden(
            request, name, normalize(replay(ingest_api, endpoint, params))
        )


class TestGoldenDurableRequests:
    """The durability corpus: snapshot / recovery_info response shapes.

    Runs against its own WAL-backed system in corpus order — every entry's
    golden file documents the exact durability state (active WAL epoch,
    snapshot chain, buffered rows) the preceding entries established.
    """

    @pytest.mark.parametrize(
        "name,endpoint,params",
        DURABLE_CORPUS,
        ids=[name for name, _, _ in DURABLE_CORPUS],
    )
    def test_response_matches_golden(self, durable_api, request, name, endpoint, params):
        assert_matches_golden(
            request, name, normalize(replay(durable_api, endpoint, params))
        )
