"""Golden-request regression suite for the JSON API.

Replays a fixed-seed corpus of requests through :class:`~repro.server.api.JsonApi`
and compares the **full response dicts** against checked-in golden files under
``tests/server/golden/``.  Mining is deterministic for a fixed seed, so any
drift in a response is a behaviour change that must be reviewed — rerun with

    pytest tests/server/test_golden_api.py --update-golden

to rewrite the golden files after an intentional change, and commit the diff.

Volatile fields (wall-clock timings, cache/pool counters) are normalised
before comparison so the suite is stable across machines and replay order;
everything else — group selections, objectives, coverages, histograms, error
payloads — is compared exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.config import PipelineConfig
from repro.errors import ServerError
from repro.server.api import JsonApi, MapRat

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: The replayed corpus: (name, endpoint, params).  Covers every public
#: endpoint of ``JsonApi.routes()`` at least once, plus the error paths.
CORPUS = [
    ("summary", "summary", {}),
    ("suggest_toy", "suggest", {"prefix": "Toy"}),
    ("suggest_jur_limit_3", "suggest", {"prefix": "Jur", "limit": "3"}),
    ("suggest_no_match", "suggest", {"prefix": "zzz-nothing"}),
    ("explain_toy_story", "explain", {"q": 'title:"Toy Story"'}),
    ("explain_toy_story_lowercase", "explain", {"q": 'title:"toy story"'}),
    ("explain_forrest_gump", "explain", {"q": 'title:"Forrest Gump"'}),
    (
        "explain_year_2001",
        "explain",
        {"q": 'title:"Toy Story"', "start_year": "2001", "end_year": "2001"},
    ),
    (
        "explain_genre_and_director",
        "explain",
        {"q": 'genre:Thriller AND director:"Steven Spielberg"'},
    ),
    (
        "statistics_similarity_g0",
        "statistics",
        {"q": 'title:"Toy Story"', "task": "similarity", "group": "0"},
    ),
    (
        "statistics_diversity_g0",
        "statistics",
        {"q": 'title:"Toy Story"', "task": "diversity", "group": "0"},
    ),
    (
        "drilldown_similarity_g0",
        "drilldown",
        {"q": 'title:"Toy Story"', "task": "similarity", "group": "0"},
    ),
    (
        "drilldown_diversity_g0",
        "drilldown",
        {"q": 'title:"Forrest Gump"', "task": "diversity", "group": "0"},
    ),
    ("timeline_toy_story", "timeline", {"q": 'title:"Toy Story"', "min_ratings": "10"}),
    (
        "timeline_forrest_gump",
        "timeline",
        {"q": 'title:"Forrest Gump"', "min_ratings": "10"},
    ),
    ("warmup_limit_2", "warmup", {"limit": "2"}),
    ("warmup_with_regions", "warmup", {"limit": "1", "regions": "2"}),
    ("geo_summary_country", "geo_summary", {}),
    ("geo_summary_toy_story", "geo_summary", {"q": 'title:"Toy Story"'}),
    (
        "geo_summary_min_size_20",
        "geo_summary",
        {"q": 'title:"Toy Story"', "min_size": "20"},
    ),
    ("geo_drilldown_states", "geo_drilldown", {"q": 'title:"Toy Story"'}),
    ("geo_drilldown_ca_cities", "geo_drilldown", {"region": "CA"}),
    (
        "geo_drilldown_ca_zipcodes",
        "geo_drilldown",
        {"region": "CA", "by": "zipcode"},
    ),
    (
        "geo_drilldown_lowercase_region",
        "geo_drilldown",
        {"region": "ca", "q": 'title:"Toy Story"'},
    ),
    (
        "geo_explain_toy_story_ca",
        "geo_explain",
        {"q": 'title:"Toy Story"', "region": "CA"},
    ),
    ("choropleth_toy_story", "choropleth", {"q": 'title:"Toy Story"'}),
    (
        "choropleth_toy_story_diversity",
        "choropleth",
        {"q": 'title:"Toy Story"', "task": "diversity"},
    ),
    ("error_geo_unknown_region", "geo_drilldown", {"region": "ZZ"}),
    ("error_geo_bad_min_size", "geo_summary", {"min_size": "abc"}),
    ("error_geo_bad_by", "geo_drilldown", {"region": "CA", "by": "county"}),
    ("error_geo_explain_missing_region", "geo_explain", {"q": 'title:"Toy Story"'}),
    (
        "error_geo_explain_empty_region",
        "geo_explain",
        {"q": 'title:"Toy Story"', "region": "WY"},
    ),
    (
        "error_choropleth_bad_task",
        "choropleth",
        {"q": 'title:"Toy Story"', "task": "nonsense"},
    ),
    ("error_missing_query", "explain", {}),
    ("error_unmatched_query", "explain", {"q": 'title:"No Such Movie"'}),
    ("error_bad_year", "explain", {"q": "Toy", "start_year": "not-a-year"}),
    ("error_bad_group_index", "statistics", {"q": 'title:"Toy Story"', "group": "99"}),
    ("error_unknown_endpoint", "nonsense", {}),
]

#: Keys whose values depend on wall-clock or replay order, never on behaviour.
#: ``description`` is replay-order-dependent by design: equivalent requests
#: share one canonical cache entry, which keeps the description of whichever
#: request populated it (first-writer-wins), e.g. a title's case variants.
VOLATILE_KEYS = {"elapsed_seconds", "cache", "cache_entries", "serving", "description"}


def normalize(payload):
    """Replace volatile values so responses compare stably across runs."""
    if isinstance(payload, dict):
        return {
            key: ("<volatile>" if key in VOLATILE_KEYS else normalize(value))
            for key, value in payload.items()
        }
    if isinstance(payload, list):
        return [normalize(value) for value in payload]
    return payload


@pytest.fixture(scope="module")
def api(tiny_dataset, mining_config):
    """A fresh deterministic system; the corpus replays against one instance."""
    return JsonApi(MapRat.for_dataset(tiny_dataset, PipelineConfig(mining=mining_config)))


def replay(api, endpoint, params):
    """One request through the dispatcher; error responses become payloads."""
    try:
        return api.dispatch(endpoint, params)
    except ServerError as exc:
        return {"error": str(exc), "status": exc.status}


class TestGoldenRequests:
    def test_corpus_covers_every_public_endpoint(self, api):
        exercised = {endpoint for _, endpoint, _ in CORPUS}
        assert exercised >= set(api.routes().keys())

    def test_corpus_names_are_unique(self):
        names = [name for name, _, _ in CORPUS]
        assert len(names) == len(set(names))

    @pytest.mark.parametrize(
        "name,endpoint,params", CORPUS, ids=[name for name, _, _ in CORPUS]
    )
    def test_response_matches_golden(self, api, request, name, endpoint, params):
        # json round-trip: tuples become lists, exactly as the HTTP layer
        # would serialise them, so golden comparison matches the wire format.
        payload = json.loads(json.dumps(normalize(replay(api, endpoint, params))))
        golden_path = GOLDEN_DIR / f"{name}.json"
        if request.config.getoption("--update-golden"):
            GOLDEN_DIR.mkdir(exist_ok=True)
            golden_path.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
            return
        if not golden_path.exists():
            pytest.fail(
                f"golden file {golden_path} is missing; run "
                "pytest tests/server/test_golden_api.py --update-golden and commit it"
            )
        assert payload == json.loads(golden_path.read_text())
