"""Golden-corpus replay over real sockets: the HTTP edges change nothing.

Replays the exact corpora of ``test_golden_api.py`` through a **running HTTP
server** — request line, headers, JSON bodies, keep-alive sockets — and
compares against the *same* golden files with the same normalisation.  Both
edges reuse ``JsonApi.dispatch`` unchanged, so every payload must come back
byte-identical whether it was computed in-process or across a TCP connection.

The replayed edge defaults to the asyncio tier and follows
``MAPRAT_HTTP_BACKEND`` (the CI golden-over-HTTP lane pins it), mirroring how
``MAPRAT_MINING_BACKEND`` selects the mining backend differential:

    MAPRAT_HTTP_BACKEND=async pytest tests/server/test_golden_http.py
    MAPRAT_HTTP_BACKEND=sync  pytest tests/server/test_golden_http.py

The read-only corpus replays as GET requests with query strings; the
ingestion corpus replays as POST requests with JSON bodies (the realistic
write path); the durability corpus posts to the write endpoints of a
WAL-backed system.  Error responses are reconstructed into the
``{"error", "status"}`` shape the in-process replay produces, so the error
golden files are shared too.
"""

from __future__ import annotations

import http.client
import json
import os
from urllib.parse import urlencode

import pytest

from repro.config import PipelineConfig, ServerConfig
from repro.server.api import MapRat
from repro.server.app import MapRatHttpServer
from repro.server.asyncapi import AsyncMapRatHttpServer
from repro.server.http_common import WRITE_ENDPOINTS

from test_golden_api import (
    BACKEND,
    WORKERS,
    CORPUS,
    DURABLE_CORPUS,
    INGEST_CORPUS,
    assert_matches_golden,
    normalize,
)

#: Which edge replays the corpus ("async" unless the CI lane overrides it).
HTTP_BACKEND = os.environ.get("MAPRAT_HTTP_BACKEND", "async")

EDGES = {"sync": MapRatHttpServer, "async": AsyncMapRatHttpServer}


def _serve(system):
    server = EDGES[HTTP_BACKEND](system, host="127.0.0.1", port=0, owns_system=True)
    server.start()
    return server


@pytest.fixture(scope="module")
def frozen_server(tiny_dataset, mining_config):
    """HTTP server over the same system config as the in-process ``api``."""
    config = PipelineConfig(
        mining=mining_config,
        server=ServerConfig(mining_backend=BACKEND, mining_workers=WORKERS),
    )
    server = _serve(MapRat.for_dataset(tiny_dataset, config))
    yield server
    server.stop()


@pytest.fixture(scope="module")
def ingest_server(tiny_dataset, mining_config):
    """HTTP server mirroring the in-process ``ingest_api`` fixture exactly."""
    config = PipelineConfig(
        mining=mining_config,
        server=ServerConfig(
            auto_compact_threshold=4,
            ingest_batch_size=8,
            mining_backend=BACKEND,
            mining_workers=WORKERS,
        ),
    )
    server = _serve(MapRat.for_dataset(tiny_dataset, config))
    yield server
    server.stop()


@pytest.fixture(scope="module")
def durable_server(tiny_dataset, mining_config, tmp_path_factory):
    """HTTP server over a WAL-backed system for the durability corpus."""
    config = PipelineConfig(
        mining=mining_config,
        server=ServerConfig(
            mining_backend=BACKEND,
            mining_workers=WORKERS,
            data_dir=str(tmp_path_factory.mktemp("golden-http-durable")),
        ),
    )
    server = _serve(MapRat.for_dataset(tiny_dataset, config))
    yield server
    server.stop()


@pytest.fixture(scope="module")
def frozen_conn(frozen_server):
    """One keep-alive connection replaying the whole read-only corpus."""
    conn = http.client.HTTPConnection(
        frozen_server.host, frozen_server.port, timeout=60
    )
    yield conn
    conn.close()


@pytest.fixture(scope="module")
def ingest_conn(ingest_server):
    conn = http.client.HTTPConnection(
        ingest_server.host, ingest_server.port, timeout=60
    )
    yield conn
    conn.close()


@pytest.fixture(scope="module")
def durable_conn(durable_server):
    conn = http.client.HTTPConnection(
        durable_server.host, durable_server.port, timeout=60
    )
    yield conn
    conn.close()


def replay_get(conn, endpoint, params):
    """One GET request; error responses become {"error", "status"} payloads."""
    target = f"/api/{endpoint}"
    if params:
        target += "?" + urlencode(params)
    conn.request("GET", target)
    return _payload(conn.getresponse())


def replay_post(conn, endpoint, params):
    """One POST request with a JSON body (the realistic write path)."""
    conn.request(
        "POST",
        f"/api/{endpoint}",
        body=json.dumps(params).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    return _payload(conn.getresponse())


def _payload(response):
    body = json.loads(response.read().decode("utf-8"))
    if response.status != 200:
        return {"error": body["error"], "status": response.status}
    return body


class TestGoldenOverHttp:
    """The read-only corpus over GET + query strings, one keep-alive socket."""

    @pytest.mark.parametrize(
        "name,endpoint,params", CORPUS, ids=[name for name, _, _ in CORPUS]
    )
    def test_response_matches_golden(
        self, frozen_conn, request, name, endpoint, params
    ):
        payload = replay_get(frozen_conn, endpoint, params)
        assert_matches_golden(request, name, normalize(payload))


class TestGoldenIngestOverHttp:
    """The ingestion corpus over POST + JSON bodies, in corpus order."""

    @pytest.mark.parametrize(
        "name,endpoint,params",
        INGEST_CORPUS,
        ids=[name for name, _, _ in INGEST_CORPUS],
    )
    def test_response_matches_golden(
        self, ingest_conn, request, name, endpoint, params
    ):
        payload = replay_post(ingest_conn, endpoint, params)
        assert_matches_golden(request, name, normalize(payload))


class TestGoldenDurableOverHttp:
    """The durability corpus: writes POSTed, reads GETed, in corpus order."""

    @pytest.mark.parametrize(
        "name,endpoint,params",
        DURABLE_CORPUS,
        ids=[name for name, _, _ in DURABLE_CORPUS],
    )
    def test_response_matches_golden(
        self, durable_conn, request, name, endpoint, params
    ):
        if endpoint in WRITE_ENDPOINTS:
            payload = replay_post(durable_conn, endpoint, params)
        else:
            payload = replay_get(durable_conn, endpoint, params)
        assert_matches_golden(request, name, normalize(payload))


class TestEdgeParity:
    """Spot-check that sync and async answer byte-identical JSON bodies."""

    def test_both_edges_serialise_identically(self, tiny_system):
        samples = [
            "/api/summary",
            "/api/explain?" + urlencode({"q": 'title:"Toy Story"'}),
            "/api/geo_summary",
            "/api/suggest?prefix=Toy",
        ]
        bodies = {}
        for edge, cls in sorted(EDGES.items()):
            with cls(tiny_system, host="127.0.0.1", port=0) as server:
                conn = http.client.HTTPConnection(
                    server.host, server.port, timeout=60
                )
                try:
                    for target in samples:
                        conn.request("GET", target)
                        response = conn.getresponse()
                        assert response.status == 200
                        bodies.setdefault(target, {})[edge] = response.read()
                finally:
                    conn.close()
        for target, by_edge in bodies.items():
            # elapsed_seconds and cache counters differ run-to-run; compare
            # with the golden normalisation, byte-identical otherwise.
            sync_payload = normalize(json.loads(by_edge["sync"]))
            async_payload = normalize(json.loads(by_edge["async"]))
            assert sync_payload == async_payload, target
