"""Tests for the mining worker pool and deterministic seed-splitting."""

import threading
import time

import pytest

from repro.errors import MiningError, PoolError
from repro.server.pool import MiningWorkerPool, split_seed, split_seeds


class TestConstruction:
    def test_workers_zero_and_one_run_inline(self):
        for workers in (0, 1):
            pool = MiningWorkerPool(workers)
            assert pool.parallel is False
            assert pool.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_negative_workers_raise(self):
        with pytest.raises(PoolError):
            MiningWorkerPool(-1)

    def test_context_manager_shuts_down(self):
        with MiningWorkerPool(2) as pool:
            assert pool.parallel is True
            assert pool.map(lambda x: x + 1, range(5)) == [1, 2, 3, 4, 5]
        # shutdown is idempotent
        pool.shutdown()


class TestSubmission:
    def test_results_come_back_in_submission_order(self):
        def slow_for_small(value):
            time.sleep(0.02 if value < 2 else 0.0)  # later tasks finish first
            return value

        with MiningWorkerPool(4) as pool:
            assert pool.map(slow_for_small, range(6)) == list(range(6))

    def test_inline_submit_returns_a_resolved_future(self):
        pool = MiningWorkerPool(0)
        future = pool.submit(lambda: 7)
        assert future.done() and future.result() == 7
        failing = pool.submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            failing.result()

    def test_map_propagates_the_first_error(self):
        def maybe_fail(value):
            if value == 2:
                raise MiningError("boom")
            return value

        for workers in (0, 4):
            with MiningWorkerPool(workers) as pool:
                with pytest.raises(MiningError):
                    pool.map(maybe_fail, range(5))

    def test_map_outcomes_captures_errors_per_task(self):
        def maybe_fail(value):
            if value % 2:
                raise MiningError(f"bad {value}")
            return value

        with MiningWorkerPool(3) as pool:
            outcomes = pool.map_outcomes(maybe_fail, range(4))
        assert [value for value, _ in outcomes] == [0, None, 2, None]
        assert [type(error) for _, error in outcomes] == [
            type(None), MiningError, type(None), MiningError,
        ]

    def test_tasks_actually_run_on_worker_threads(self):
        seen = set()
        with MiningWorkerPool(4, thread_name_prefix="probe") as pool:
            pool.map(lambda _: seen.add(threading.current_thread().name), range(8))
        assert all(name.startswith("probe") for name in seen)

    def test_submit_after_shutdown_raises_a_clean_pool_error(self):
        for workers in (0, 1, 2):  # inline pools honour the same contract
            pool = MiningWorkerPool(workers)
            pool.shutdown()
            with pytest.raises(PoolError):
                pool.submit(lambda: 1)

    def test_map_outcomes_after_shutdown_yields_cancelled_skips(self):
        from concurrent.futures import CancelledError

        pool = MiningWorkerPool(2)
        pool.shutdown()
        outcomes = pool.map_outcomes(lambda x: x, range(3))
        assert all(value is None for value, _ in outcomes)
        assert all(isinstance(error, CancelledError) for _, error in outcomes)

    def test_tasks_submitted_counter(self):
        with MiningWorkerPool(2) as pool:
            pool.map(lambda x: x, range(5))
            assert pool.tasks_submitted == 5
            assert pool.to_dict()["tasks_submitted"] == 5


class TestSeedSplitting:
    def test_split_seed_is_deterministic(self):
        assert split_seed(2012, 3) == split_seed(2012, 3)

    def test_split_seed_depends_on_base_and_index(self):
        seeds = {split_seed(base, index) for base in (0, 1, 2012) for index in range(8)}
        assert len(seeds) == 24  # no collisions across this tiny grid

    def test_split_seeds_prefix_stability(self):
        # Growing a batch never changes the seeds of earlier tasks, so a
        # resharded or extended batch replays its prefix bit-identically.
        assert split_seeds(7, 4) == split_seeds(7, 8)[:4]

    def test_split_seeds_are_plain_ints(self):
        assert all(isinstance(seed, int) for seed in split_seeds(5, 4))
