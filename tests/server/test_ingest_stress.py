"""Concurrency stress: writers ingest + compact while readers keep serving.

The serving contract under live ingestion:

* **no torn snapshots** — every response is computed against exactly one
  epoch's store (a mining result's rating count always matches a store state
  that actually existed),
* **monotone epochs** — a reader never observes the store going backwards,
* **zero stale-epoch reads** — once the final compaction lands, cached reads
  reflect the newest snapshot exactly,
* the cache invariant ``hits + misses == requests`` survives the churn.

The tier-1 variant keeps the thread counts and iteration budgets small; the
``slow`` variant scales them up for the long-haul lane.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.config import MiningConfig, PipelineConfig, ServerConfig
from repro.server.api import MapRat

#: The item every reader mines and every writer touches.
PROBE_ITEM = 1

MINING = MiningConfig(
    min_group_support=3, min_coverage=0.2, rhe_restarts=2, rhe_max_iterations=40
)


def build_system(tiny_dataset, workers: int = 2) -> MapRat:
    config = PipelineConfig(
        mining=MINING,
        server=ServerConfig(mining_workers=workers, cache_capacity=512),
    )
    return MapRat.for_dataset(tiny_dataset, config)


def run_stress(system, writers, readers, writes_per_writer, reads_per_reader,
               compact_every):
    reviewer_ids = [r.reviewer_id for r in system.dataset.reviewers()]
    item_ids = [i.item_id for i in system.dataset.items()][:10]
    errors = []
    # Per-epoch ground truth, recorded under a lock right after each swap.
    # ``compact_lock`` serialises the writers' compact-then-record sequence,
    # so every committed epoch is recorded before the next one can land
    # (compactions are serialised inside MapRat anyway).
    history_lock = threading.Lock()
    compact_lock = threading.Lock()
    probe_counts = {0: len(system.miner.slice_for_items([PROBE_ITEM]))}
    epochs_seen = [0]

    def writer(writer_index: int) -> None:
        try:
            for step in range(writes_per_writer):
                item = item_ids[(writer_index + step) % len(item_ids)]
                reviewer = reviewer_ids[(writer_index * 7 + step) % len(reviewer_ids)]
                # Distinct timestamps per (writer, step): no accidental dups.
                timestamp = 3_000_000_000 + writer_index * 1_000_000 + step
                system.ingest(item, reviewer, float(1 + step % 5), timestamp=timestamp)
                if (step + 1) % compact_every == 0:
                    with compact_lock:
                        payload = system.compact(rewarm=False)
                        if payload["compacted"]:
                            serving = system.serving
                            with history_lock:
                                epochs_seen.append(serving.epoch)
                                probe_counts[serving.epoch] = len(
                                    serving.miner.slice_for_items([PROBE_ITEM])
                                )
        except Exception as exc:  # pragma: no cover - surfaced by the assert
            errors.append(exc)

    def reader(reader_index: int) -> None:
        try:
            last_epoch = -1
            last_count = -1
            for step in range(reads_per_reader):
                if step % 3 == 0:
                    stats = system.store_stats()
                    assert stats["epoch"] >= last_epoch, "epoch went backwards"
                    last_epoch = stats["epoch"]
                elif step % 3 == 1:
                    result = system.explain_items([PROBE_ITEM])
                    count = result.query.num_ratings
                    # A freshly swapped epoch may be observed a beat before
                    # the writer records it in the history map; give the
                    # recording a bounded moment before declaring a tear.
                    for _ in range(200):
                        with history_lock:
                            known = set(probe_counts.values())
                        if count in known:
                            break
                        time.sleep(0.005)
                    assert count in known, (
                        f"torn snapshot: observed {count} ratings for the probe "
                        f"item, never a committed epoch state {sorted(known)}"
                    )
                    assert count >= last_count, "reader observed the store shrinking"
                    last_count = count
                else:
                    payload = system.geo_drilldown(region="CA")
                    assert payload["by"] == "city"
        except Exception as exc:  # pragma: no cover - surfaced by the assert
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(index,)) for index in range(writers)
    ] + [
        threading.Thread(target=reader, args=(index,)) for index in range(readers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors

    # Monotone epochs overall, and a final compaction drains the buffer.
    assert epochs_seen == sorted(epochs_seen)
    system.compact(rewarm=False)
    final_epoch = system.epoch
    assert system.live.pending == 0

    # Zero stale-epoch reads: the cached post-ingest read reflects the newest
    # compacted snapshot bit-exactly (same count as an uncached recompute).
    cached = system.explain_items([PROBE_ITEM])
    fresh = system.explain_items([PROBE_ITEM], use_cache=False)
    assert cached.query.num_ratings == fresh.query.num_ratings
    assert cached.query.num_ratings == len(system.miner.slice_for_items([PROBE_ITEM]))
    assert system.epoch == final_epoch

    # Every request landed in exactly one of hits/misses.
    stats = system.cache.stats
    assert stats.hits + stats.misses == stats.requests


class TestIngestStress:
    def test_writers_and_readers_share_the_system(self, tiny_dataset):
        system = build_system(tiny_dataset)
        run_stress(
            system,
            writers=2,
            readers=2,
            writes_per_writer=18,
            reads_per_reader=15,
            compact_every=6,
        )

    @pytest.mark.slow
    def test_long_haul_stress(self, tiny_dataset):
        system = build_system(tiny_dataset, workers=4)
        run_stress(
            system,
            writers=4,
            readers=4,
            writes_per_writer=120,
            reads_per_reader=90,
            compact_every=10,
        )
