"""Tests for the single-flight LRU + TTL result cache and its canonical keys."""

import random
import threading
import time

import pytest

from repro.config import MiningConfig
from repro.errors import CacheError
from repro.server.cache import ResultCache, canonical_explain_key


class TestBasicOperations:
    def test_get_after_put(self):
        cache = ResultCache(capacity=4)
        cache.put("key", "value")
        assert cache.get("key") == "value"
        assert "key" in cache
        assert len(cache) == 1

    def test_miss_returns_the_default(self):
        cache = ResultCache(capacity=4)
        assert cache.get("absent") is None
        assert cache.get("absent", default=42) == 42

    def test_put_refreshes_an_existing_key(self):
        cache = ResultCache(capacity=4)
        cache.put("key", 1)
        cache.put("key", 2)
        assert cache.get("key") == 2
        assert len(cache) == 1

    def test_invalidate_and_clear(self):
        cache = ResultCache(capacity=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        cache.clear()
        assert len(cache) == 0

    def test_invalid_configuration(self):
        with pytest.raises(CacheError):
            ResultCache(capacity=0)
        with pytest.raises(CacheError):
            ResultCache(capacity=4, ttl_seconds=0)


class TestLruEviction:
    def test_capacity_is_never_exceeded(self):
        cache = ResultCache(capacity=3)
        for index in range(10):
            cache.put(index, index)
        assert len(cache) == 3
        assert cache.stats.evictions == 7

    def test_least_recently_used_entry_is_evicted_first(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a" so "b" becomes the LRU entry
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3

    def test_keys_reflect_insertion_and_access_order(self):
        cache = ResultCache(capacity=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert cache.keys() == ["b", "a"]


class TestTtl:
    def test_entries_expire_after_the_ttl(self):
        cache = ResultCache(capacity=4, ttl_seconds=0.05)
        cache.put("key", "value")
        assert cache.get("key") == "value"
        time.sleep(0.08)
        assert cache.get("key") is None
        assert cache.stats.expirations == 1

    def test_entries_survive_within_the_ttl(self):
        cache = ResultCache(capacity=4, ttl_seconds=10)
        cache.put("key", "value")
        assert cache.get("key") == "value"


class TestStatsAndCompute:
    def test_hit_and_miss_counters(self):
        cache = ResultCache(capacity=4)
        cache.get("absent")
        cache.put("key", 1)
        cache.get("key")
        stats = cache.stats
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.requests == 2
        assert stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.to_dict()["hit_rate"] == pytest.approx(0.5)

    def test_get_or_compute_only_computes_on_miss(self):
        cache = ResultCache(capacity=4)
        calls = []

        def compute():
            calls.append(1)
            return "expensive"

        assert cache.get_or_compute("key", compute) == "expensive"
        assert cache.get_or_compute("key", compute) == "expensive"
        assert len(calls) == 1

    def test_contains_does_not_inflate_the_statistics(self):
        cache = ResultCache(capacity=4)
        cache.put("key", 1)
        _ = "key" in cache
        assert cache.stats.requests == 0


class TestThreadSafety:
    def test_concurrent_puts_and_gets_do_not_corrupt_the_cache(self):
        cache = ResultCache(capacity=64)

        def worker(offset):
            for index in range(200):
                cache.put((offset, index % 32), index)
                cache.get((offset, (index + 1) % 32))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 64


def _run_threads(workers, timeout=30.0):
    """Start, then join with a bound; any thread still alive is a deadlock."""
    threads = [threading.Thread(target=worker, daemon=True) for worker in workers]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + timeout
    for thread in threads:
        thread.join(max(0.0, deadline - time.monotonic()))
    assert not any(thread.is_alive() for thread in threads), "threads deadlocked"


class TestSingleFlight:
    def test_concurrent_misses_on_one_key_run_one_computation(self):
        cache = ResultCache(capacity=8)
        calls = []
        results = []
        results_lock = threading.Lock()
        clients = 6
        barrier = threading.Barrier(clients)

        def compute():
            calls.append(1)
            time.sleep(0.05)
            return "expensive"

        def worker():
            barrier.wait()
            value = cache.get_or_compute("key", compute)
            with results_lock:
                results.append(value)

        _run_threads([worker] * clients)
        assert len(calls) == 1
        assert results == ["expensive"] * clients
        stats = cache.stats
        assert stats.misses == 1
        assert stats.hits == clients - 1
        assert stats.coalesced == clients - 1
        assert stats.requests == clients
        assert cache.inflight_count() == 0

    def test_disabling_single_flight_duplicates_the_computation(self):
        cache = ResultCache(capacity=8, single_flight=False)
        calls = []
        clients = 6
        barrier = threading.Barrier(clients)

        def compute():
            calls.append(1)
            time.sleep(0.05)
            return "expensive"

        def worker():
            barrier.wait()
            cache.get_or_compute("key", compute)

        _run_threads([worker] * clients)
        assert len(calls) >= 2  # the stampede the single-flight mode prevents

    def test_leader_error_propagates_to_coalesced_waiters(self):
        cache = ResultCache(capacity=8)
        clients = 4
        barrier = threading.Barrier(clients)
        errors = []
        errors_lock = threading.Lock()

        def compute():
            time.sleep(0.05)
            raise CacheError("boom")

        def worker():
            barrier.wait()
            try:
                cache.get_or_compute("key", compute)
            except CacheError as exc:
                with errors_lock:
                    errors.append(exc)

        _run_threads([worker] * clients)
        assert len(errors) == clients
        # One counter increment per caller: the leader's miss plus one miss
        # per waiter whose flight failed (requests is the derived sum).
        assert cache.stats.requests == clients
        assert cache.stats.hits == 0
        assert cache.inflight_count() == 0
        # The failure left nothing cached; the next call recomputes cleanly.
        assert cache.get_or_compute("key", lambda: "recovered") == "recovered"

    def test_sequential_get_or_compute_still_counts_hits(self):
        cache = ResultCache(capacity=8)
        assert cache.get_or_compute("key", lambda: 41) == 41
        assert cache.get_or_compute("key", lambda: 42) == 41
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.coalesced == 0


class TestSingleFlightStress:
    """N threads hammering overlapping keys, TTL expiry + eviction on.

    Invariants under single-flight, whatever the interleaving:
    * every computation corresponds to exactly one counted miss
      (no duplicated work within one freshness window),
    * every request increments exactly one of hits/misses — checked as
      ``requests == clients × iterations`` since ``requests`` is the
      derived sum of the two counters,
    * every value returned belongs to the requested key,
    * the run finishes within the join bound (no deadlocks).
    """

    @staticmethod
    def _hammer(clients, iterations, keyspace, ttl):
        cache = ResultCache(capacity=keyspace - 2, ttl_seconds=ttl)
        compute_counts = {key: 0 for key in range(keyspace)}
        counts_lock = threading.Lock()
        mismatches = []

        def compute_for(key):
            with counts_lock:
                compute_counts[key] += 1
            time.sleep(0.001)
            return ("value", key)

        def worker(worker_id):
            rng = random.Random(worker_id)
            for _ in range(iterations):
                key = rng.randrange(keyspace)
                value = cache.get_or_compute(key, lambda k=key: compute_for(k))
                if value != ("value", key):
                    mismatches.append((key, value))

        _run_threads([lambda i=i: worker(i) for i in range(clients)])
        assert not mismatches
        stats = cache.stats
        # requests is derived (hits + misses), so this checks that every
        # call incremented exactly one counter — no double/zero counting.
        assert stats.requests == clients * iterations
        total_computations = sum(compute_counts.values())
        assert total_computations == stats.misses
        assert stats.hits > 0  # the workload overlaps heavily
        assert total_computations < stats.requests
        assert cache.inflight_count() == 0
        assert len(cache) <= cache.capacity

    def test_hammering_overlapping_keys_with_ttl_and_eviction(self):
        self._hammer(clients=8, iterations=120, keyspace=8, ttl=0.04)

    @pytest.mark.slow
    def test_sustained_high_contention_hammering(self):
        """Longer, wider run of the same invariants (tier-2: ``-m slow``)."""
        self._hammer(clients=16, iterations=500, keyspace=12, ttl=0.02)


class TestCanonicalKeys:
    def test_item_order_and_duplicates_do_not_change_the_key(self):
        config = MiningConfig()
        assert canonical_explain_key([3, 1, 2], None, config) == canonical_explain_key(
            (2, 3, 1, 1), None, config
        )

    def test_interval_forms_normalise(self):
        config = MiningConfig()
        assert canonical_explain_key([1], (10, 20), config) == canonical_explain_key(
            [1], [10, 20], config
        )
        assert canonical_explain_key([1], (10, 20), config) != canonical_explain_key(
            [1], None, config
        )

    def test_equal_configs_share_a_key_and_different_configs_do_not(self):
        base = MiningConfig()
        twin = MiningConfig()  # distinct instance, identical fields
        other = MiningConfig(max_groups=2)
        assert canonical_explain_key([1], None, base) == canonical_explain_key(
            [1], None, twin
        )
        assert canonical_explain_key([1], None, base) != canonical_explain_key(
            [1], None, other
        )

    def test_key_is_hashable(self):
        key = canonical_explain_key([5, 3], (0, 1), MiningConfig())
        assert key in {key}


class _FakeClock:
    """Deterministic monotonic clock injectable into :class:`ResultCache`."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTtlExpiryAccounting:
    """Regression tests for the ISSUE 9 TTL expiry accounting bugs.

    All of them use the injectable clock, so expiry is exact and the suite
    never sleeps.  The invariant under test: ``requests == hits + misses``
    always, and every entry death is visible in exactly one of
    ``evictions``/``expirations`` (explicit ``invalidate``/``clear`` aside).
    """

    def _cache(self, **kwargs):
        clock = _FakeClock()
        cache = ResultCache(capacity=4, ttl_seconds=10.0, clock=clock, **kwargs)
        return cache, clock

    def test_injected_clock_drives_expiry_exactly(self):
        cache, clock = self._cache()
        cache.put("key", "value")
        clock.advance(10.0)  # exactly the TTL: still fresh (expiry is strict >)
        assert cache.get("key") == "value"
        clock.advance(0.001)
        assert cache.get("key") is None
        assert cache.stats.expirations == 1
        assert cache.stats.requests == cache.stats.hits + cache.stats.misses == 2

    def test_put_over_an_expired_entry_counts_the_expiration(self):
        # The leader-recompute race: the entry expires while a computation is
        # in flight and the recompute's put silently replaced it without any
        # counter recording the death.
        cache, clock = self._cache()
        cache.put("key", "stale")
        clock.advance(11.0)
        cache.put("key", "fresh")       # no lookup ever observed the expiry
        assert cache.stats.expirations == 1
        assert cache.stats.evictions == 0
        assert cache.get("key") == "fresh"
        assert cache.stats.requests == cache.stats.hits + cache.stats.misses == 1

    def test_put_over_a_live_entry_counts_nothing(self):
        cache, clock = self._cache()
        cache.put("key", 1)
        clock.advance(5.0)
        cache.put("key", 2)
        assert cache.stats.expirations == 0
        assert cache.stats.evictions == 0

    def test_expiry_during_get_or_compute_keeps_the_invariant(self):
        cache, clock = self._cache()
        assert cache.get_or_compute("key", lambda: "v1") == "v1"
        clock.advance(11.0)
        assert cache.get_or_compute("key", lambda: "v2") == "v2"
        stats = cache.stats
        assert stats.requests == stats.hits + stats.misses == 2
        assert stats.misses == 2            # both calls computed
        assert stats.expirations == 1       # the v1 entry died of TTL, once

    def test_untracked_scans_never_mutate_the_statistics(self):
        # __contains__ and the epoch-migration pass use record_stats=False;
        # they must not bump any counter — not even expirations — while still
        # dropping the dead entry.
        cache, clock = self._cache()
        cache.put("key", "value")
        clock.advance(11.0)
        assert "key" not in cache
        assert cache.get("key", record_stats=False) is None
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.expirations) == (0, 0, 0)
        assert len(cache) == 0

    def test_invariant_sweep_over_interleaved_operations(self):
        cache, clock = self._cache()
        deaths_seen = 0
        for step in range(200):
            key = step % 6
            if step % 3 == 0:
                cache.put(key, step)
            elif step % 3 == 1:
                cache.get(key)
            else:
                cache.get_or_compute(key, lambda: step)
            clock.advance(3.7)
            stats = cache.stats
            assert stats.requests == stats.hits + stats.misses
            assert stats.expirations + stats.evictions >= deaths_seen
            deaths_seen = stats.expirations + stats.evictions

    def test_default_clock_is_time_monotonic(self):
        cache = ResultCache(capacity=2, ttl_seconds=30.0)
        cache.put("key", "value")
        assert cache.get("key") == "value"  # real clock: nowhere near the TTL
        assert cache.stats.expirations == 0
