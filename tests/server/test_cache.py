"""Tests for the LRU + TTL result cache."""

import threading
import time

import pytest

from repro.errors import CacheError
from repro.server.cache import ResultCache


class TestBasicOperations:
    def test_get_after_put(self):
        cache = ResultCache(capacity=4)
        cache.put("key", "value")
        assert cache.get("key") == "value"
        assert "key" in cache
        assert len(cache) == 1

    def test_miss_returns_the_default(self):
        cache = ResultCache(capacity=4)
        assert cache.get("absent") is None
        assert cache.get("absent", default=42) == 42

    def test_put_refreshes_an_existing_key(self):
        cache = ResultCache(capacity=4)
        cache.put("key", 1)
        cache.put("key", 2)
        assert cache.get("key") == 2
        assert len(cache) == 1

    def test_invalidate_and_clear(self):
        cache = ResultCache(capacity=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        cache.clear()
        assert len(cache) == 0

    def test_invalid_configuration(self):
        with pytest.raises(CacheError):
            ResultCache(capacity=0)
        with pytest.raises(CacheError):
            ResultCache(capacity=4, ttl_seconds=0)


class TestLruEviction:
    def test_capacity_is_never_exceeded(self):
        cache = ResultCache(capacity=3)
        for index in range(10):
            cache.put(index, index)
        assert len(cache) == 3
        assert cache.stats.evictions == 7

    def test_least_recently_used_entry_is_evicted_first(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a" so "b" becomes the LRU entry
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3

    def test_keys_reflect_insertion_and_access_order(self):
        cache = ResultCache(capacity=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert cache.keys() == ["b", "a"]


class TestTtl:
    def test_entries_expire_after_the_ttl(self):
        cache = ResultCache(capacity=4, ttl_seconds=0.05)
        cache.put("key", "value")
        assert cache.get("key") == "value"
        time.sleep(0.08)
        assert cache.get("key") is None
        assert cache.stats.expirations == 1

    def test_entries_survive_within_the_ttl(self):
        cache = ResultCache(capacity=4, ttl_seconds=10)
        cache.put("key", "value")
        assert cache.get("key") == "value"


class TestStatsAndCompute:
    def test_hit_and_miss_counters(self):
        cache = ResultCache(capacity=4)
        cache.get("absent")
        cache.put("key", 1)
        cache.get("key")
        stats = cache.stats
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.requests == 2
        assert stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.to_dict()["hit_rate"] == pytest.approx(0.5)

    def test_get_or_compute_only_computes_on_miss(self):
        cache = ResultCache(capacity=4)
        calls = []

        def compute():
            calls.append(1)
            return "expensive"

        assert cache.get_or_compute("key", compute) == "expensive"
        assert cache.get_or_compute("key", compute) == "expensive"
        assert len(calls) == 1

    def test_contains_does_not_inflate_the_statistics(self):
        cache = ResultCache(capacity=4)
        cache.put("key", 1)
        _ = "key" in cache
        assert cache.stats.requests == 0


class TestThreadSafety:
    def test_concurrent_puts_and_gets_do_not_corrupt_the_cache(self):
        cache = ResultCache(capacity=64)

        def worker(offset):
            for index in range(200):
                cache.put((offset, index % 32), index)
                cache.get((offset, (index + 1) % 32))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 64
