"""Live-socket regression suite for both HTTP edges (sync and async).

Every test runs over a real TCP connection with hand-written HTTP/1.1, so the
four historic front-door bugs are exercised exactly the way a client saw them:

1. an unexpected exception inside a handler **dropped the connection** with no
   response — now a sanitized JSON 500 (proven by fault injection into
   ``JsonApi.dispatch``),
2. a malformed ``Content-Length`` header killed the socket — now a 400 (and a
   hostile length over the body limit is a 413, rejected before any read),
3. the sync edge spoke HTTP/1.0 — both edges now keep connections alive and
   serve multiple requests per socket,
4. numpy scalars/arrays in a payload crashed serialisation — both edges now
   use the shared numpy-aware encoder.

Plus the malformed-HTTP suite: non-dict JSON bodies, invalid JSON, unknown
paths/endpoints, repeated query parameters, unsupported methods.
"""

from __future__ import annotations

import json
import socket

import numpy as np
import pytest

from repro.server.app import MapRatHttpServer
from repro.server.asyncapi import AsyncMapRatHttpServer

EDGES = {"sync": MapRatHttpServer, "async": AsyncMapRatHttpServer}


@pytest.fixture(scope="module", params=sorted(EDGES), ids=sorted(EDGES))
def server(request, tiny_system):
    """One running server per edge; the whole suite runs against both."""
    with EDGES[request.param](tiny_system, host="127.0.0.1", port=0) as running:
        yield running


class RawClient:
    """A raw keep-alive HTTP/1.1 client (no urllib retry/close magic)."""

    def __init__(self, server):
        self.sock = socket.create_connection((server.host, server.port), timeout=30)
        self.file = self.sock.makefile("rb")

    def close(self):
        try:
            self.file.close()
        finally:
            self.sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def send(self, raw: bytes) -> None:
        self.sock.sendall(raw)

    def request(self, method: str, target: str, headers=None, body: bytes = b""):
        lines = [f"{method} {target} HTTP/1.1", "Host: test"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        if body or method == "POST":
            lines.append(f"Content-Length: {len(body)}")
        raw = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        self.send(raw)
        return self.read_response()

    def read_response(self):
        """Parse one response: (status, headers dict, body bytes)."""
        status_line = self.file.readline()
        if not status_line:
            raise ConnectionError("server closed the connection without a response")
        parts = status_line.decode("latin-1").split(None, 2)
        assert parts[0].startswith("HTTP/1."), status_line
        status = int(parts[1])
        headers = {}
        while True:
            line = self.file.readline().decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = self.file.read(length) if length else b""
        return status, headers, body


def _json(body: bytes):
    return json.loads(body.decode("utf-8"))


class TestBugCatchAll500:
    """Bug 1: unexpected exceptions used to drop the connection silently."""

    def test_fault_injected_dispatch_yields_json_500_not_a_drop(
        self, server, monkeypatch
    ):
        def boom(endpoint, params):
            raise RuntimeError("kaboom: secret stack detail")

        monkeypatch.setattr(server.router.api, "dispatch", boom)
        with RawClient(server) as client:
            status, headers, body = client.request("GET", "/api/summary")
            assert status == 500
            assert headers["content-type"].startswith("application/json")
            payload = _json(body)
            assert payload == {"error": "internal server error"}
            assert "kaboom" not in body.decode("utf-8")  # sanitized
            # The connection survived: the next request on the SAME socket
            # works once the fault is lifted.
            monkeypatch.undo()
            status, _, body = client.request("GET", "/api/summary")
            assert status == 200
            assert _json(body)["ratings"] > 0

    def test_every_request_of_a_faulty_burst_gets_a_response(
        self, server, monkeypatch
    ):
        monkeypatch.setattr(
            server.router.api,
            "dispatch",
            lambda e, p: (_ for _ in ()).throw(TypeError("np.int64 strikes")),
        )
        with RawClient(server) as client:
            for _ in range(5):
                status, _, body = client.request("GET", "/api/store_stats")
                assert status == 500
                assert _json(body) == {"error": "internal server error"}


class TestBugMalformedContentLength:
    """Bug 2: a bad Content-Length used to raise an uncaught ValueError."""

    @pytest.mark.parametrize("value", ["banana", "12abc", "1.5"])
    def test_malformed_content_length_is_a_400(self, server, value):
        with RawClient(server) as client:
            client.send(
                (
                    "POST /api/store_stats HTTP/1.1\r\n"
                    "Host: test\r\n"
                    f"Content-Length: {value}\r\n\r\n"
                ).encode("latin-1")
            )
            status, _, body = client.read_response()
            assert status == 400
            assert "Content-Length" in _json(body)["error"]

    def test_negative_content_length_is_a_400(self, server):
        with RawClient(server) as client:
            client.send(
                b"POST /api/store_stats HTTP/1.1\r\n"
                b"Host: test\r\nContent-Length: -5\r\n\r\n"
            )
            status, _, body = client.read_response()
            assert status == 400

    def test_oversized_body_is_a_413_before_any_read(self, server):
        hostile = server.router.max_body_bytes + 1
        with RawClient(server) as client:
            # Only the head is sent — the server must answer from the header
            # alone instead of waiting to buffer a body that never comes.
            client.send(
                (
                    "POST /api/ingest HTTP/1.1\r\n"
                    "Host: test\r\n"
                    f"Content-Length: {hostile}\r\n\r\n"
                ).encode("latin-1")
            )
            status, _, body = client.read_response()
            assert status == 413
            assert "exceeds" in _json(body)["error"]


class TestBugKeepAlive:
    """Bug 3: the sync edge spoke HTTP/1.0 — one TCP connection per request."""

    def test_connection_reuse_across_sequential_requests(self, server):
        with RawClient(server) as client:
            for _ in range(3):
                status, headers, body = client.request("GET", "/api/summary")
                assert status == 200
                assert headers.get("connection", "keep-alive") != "close"
                assert _json(body)["ratings"] > 0

    def test_mixed_get_and_post_on_one_socket(self, server):
        with RawClient(server) as client:
            status, _, _ = client.request("GET", "/health")
            assert status == 200
            status, _, body = client.request(
                "POST",
                "/api/store_stats",
                headers={"Content-Type": "application/json"},
                body=b"{}",
            )
            assert status == 200
            assert "epoch" in _json(body)

    def test_connection_close_is_honoured(self, server):
        with RawClient(server) as client:
            status, headers, _ = client.request(
                "GET", "/api/summary", headers={"Connection": "close"}
            )
            assert status == 200
            # The server must actually close: the next read hits EOF.
            assert client.file.readline() == b""


class TestBugNumpyPayloads:
    """Bug 4: numpy scalars anywhere in a payload crashed _send_json."""

    def test_numpy_payload_serialises_over_the_wire(self, server, monkeypatch):
        monkeypatch.setattr(
            server.router.api,
            "dispatch",
            lambda endpoint, params: {
                "count": np.int64(42),
                "mean": np.float64(3.5),
                "flag": np.bool_(True),
                "hist": np.array([1, 2, 3], dtype=np.int32),
                "nan": np.float64("nan"),
            },
        )
        with RawClient(server) as client:
            status, _, body = client.request("GET", "/api/summary")
            assert status == 200
            assert _json(body) == {
                "count": 42,
                "mean": 3.5,
                "flag": True,
                "hist": [1, 2, 3],
                "nan": None,
            }


class TestMalformedRequests:
    def test_non_dict_json_body_is_a_400(self, server):
        with RawClient(server) as client:
            status, _, body = client.request(
                "POST", "/api/store_stats", body=b"[1, 2, 3]"
            )
            assert status == 400
            assert "JSON object" in _json(body)["error"]

    def test_invalid_json_body_is_a_400(self, server):
        with RawClient(server) as client:
            status, _, body = client.request(
                "POST", "/api/store_stats", body=b"{not json"
            )
            assert status == 400

    def test_unknown_path_is_a_404(self, server):
        with RawClient(server) as client:
            status, _, body = client.request("GET", "/definitely/not/here")
            assert status == 404
            assert "error" in _json(body)

    def test_unknown_endpoint_is_a_404(self, server):
        with RawClient(server) as client:
            status, _, body = client.request("GET", "/api/nonsense")
            assert status == 404

    def test_repeated_query_params_keep_the_first(self, server):
        with RawClient(server) as client:
            status, _, body = client.request(
                "GET", "/api/suggest?prefix=Toy&prefix=Jur"
            )
            assert status == 200
            titles = _json(body)["titles"]
            assert any(title.startswith("Toy") for title in titles)
            assert not any(title.startswith("Jur") for title in titles)

    def test_unsupported_method_is_rejected_with_a_response(self, server):
        with RawClient(server) as client:
            client.send(b"DELETE /api/summary HTTP/1.1\r\nHost: test\r\n\r\n")
            status, _, _ = client.read_response()
            assert status == 501

    def test_empty_post_body_falls_back_to_query_params(self, server):
        with RawClient(server) as client:
            status, _, body = client.request("POST", "/api/suggest?prefix=Toy")
            assert status == 200
            assert "Toy Story" in _json(body)["titles"]


class TestOpsEndpointsOverSockets:
    def test_health_version_metrics(self, server):
        with RawClient(server) as client:
            status, _, body = client.request("GET", "/health")
            assert status == 200
            assert _json(body)["status"] == "ok"
            status, _, body = client.request("GET", "/version")
            assert status == 200
            assert _json(body)["http_backend"] in ("sync", "async")
            status, headers, body = client.request("GET", "/metrics")
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            assert b"maprat_http_requests_total" in body

    def test_metrics_count_the_requests_that_hit_this_edge(self, server):
        with RawClient(server) as client:
            client.request("GET", "/api/summary")
            _, _, body = client.request("GET", "/metrics")
        page = body.decode("utf-8")
        assert 'route="summary"' in page
