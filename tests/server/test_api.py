"""Tests for the MapRat façade and the JSON endpoint handlers."""

import pytest

from repro.config import MiningConfig
from repro.errors import ExplorationError, QueryError, ServerError
from repro.query.engine import TimeInterval
from repro.server.api import JsonApi, MapRat


class TestExplain:
    def test_explain_returns_both_interpretations(self, tiny_system):
        result = tiny_system.explain('title:"Toy Story"')
        assert result.similarity.groups
        assert result.diversity.groups

    def test_results_are_cached_per_query(self, fresh_system):
        first = fresh_system.explain('title:"Toy Story"')
        second = fresh_system.explain('title:"Toy Story"')
        assert second is first
        assert fresh_system.cache.stats.hits == 1

    def test_cache_distinguishes_different_queries(self, fresh_system):
        toy = fresh_system.explain('title:"Toy Story"')
        gump = fresh_system.explain('title:"Forrest Gump"')
        assert toy is not gump
        assert len(fresh_system.cache) == 2

    def test_cache_distinguishes_mining_configs(self, fresh_system):
        default = fresh_system.explain('title:"Toy Story"')
        smaller = fresh_system.explain(
            'title:"Toy Story"',
            config=MiningConfig(max_groups=2, min_group_support=3, min_coverage=0.1),
        )
        assert default is not smaller
        assert len(smaller.similarity.groups) <= 2

    def test_cache_can_be_bypassed(self, fresh_system):
        first = fresh_system.explain('title:"Toy Story"', use_cache=False)
        second = fresh_system.explain('title:"Toy Story"', use_cache=False)
        assert first is not second

    def test_unmatched_query_raises(self, tiny_system):
        with pytest.raises(QueryError):
            tiny_system.explain('title:"No Such Movie"')

    def test_time_interval_changes_the_result(self, fresh_system):
        full = fresh_system.explain('title:"Toy Story"')
        restricted = fresh_system.explain(
            'title:"Toy Story"', time_interval=TimeInterval.for_year(2001)
        )
        assert restricted.query.num_ratings < full.query.num_ratings

    def test_query_case_variants_share_one_cache_entry(self, fresh_system):
        upper = fresh_system.explain('title:"Toy Story"')
        lower = fresh_system.explain('title:"toy story"')
        assert lower is upper
        assert len(fresh_system.cache) == 1
        assert fresh_system.cache.stats.hits == 1

    def test_explain_items_shares_the_cache_with_equivalent_queries(self, fresh_system):
        items = fresh_system.dataset.items_by_title("Toy Story")
        precomputed = fresh_system.explain_items(
            [item.item_id for item in items], 'title:"Toy Story"'
        )
        queried = fresh_system.explain('title:"Toy Story"')
        assert queried is precomputed
        assert len(fresh_system.cache) == 1

    def test_duplicate_item_ids_do_not_poison_the_cache(self, fresh_system):
        items = fresh_system.dataset.items_by_title("Toy Story")
        item_id = items[0].item_id
        doubled = fresh_system.explain_items([item_id, item_id], 'title:"Toy Story"')
        clean = fresh_system.explain_items([item_id], 'title:"Toy Story"')
        assert clean is doubled  # one canonical entry ...
        slice_size = len(fresh_system.miner.slice_for_items([item_id]))
        assert doubled.query.num_ratings == slice_size  # ... mined on clean ids

    def test_warmed_items_serve_query_traffic(self, fresh_system):
        fresh_system.warm_up(limit=3)
        top = fresh_system.precomputer.top_items(limit=1)[0]
        items = fresh_system.dataset.items_by_title(top.title)
        if len(items) != 1:  # pragma: no cover - synthetic titles are unique
            pytest.skip("top title is ambiguous in this dataset")
        hits_before = fresh_system.cache.stats.hits
        fresh_system.explain(f'title:"{top.title}"')
        assert fresh_system.cache.stats.hits == hits_before + 1


class TestExploration:
    def test_search_returns_catalogue_items(self, tiny_system):
        items = tiny_system.search('genre:Thriller AND director:"Steven Spielberg"')
        assert {item.title for item in items} >= {"Jurassic Park", "Jaws"}

    def test_group_statistics_of_a_mined_group(self, tiny_system):
        result = tiny_system.explain('title:"Toy Story"')
        stats = tiny_system.group_statistics('title:"Toy Story"', "similarity", 0)
        assert stats.label == result.similarity.groups[0].label
        assert stats.size == result.similarity.groups[0].size

    def test_drill_down_of_a_mined_group(self, tiny_system):
        aggregates = tiny_system.drill_down('title:"Toy Story"', "similarity", 0)
        assert aggregates
        assert all(agg.statistics.size > 0 for agg in aggregates)

    def test_out_of_range_group_index_raises(self, tiny_system):
        with pytest.raises(ExplorationError):
            tiny_system.group_statistics('title:"Toy Story"', "similarity", 99)

    def test_unknown_task_raises_server_error(self, tiny_system):
        with pytest.raises(ServerError):
            tiny_system.group_statistics('title:"Toy Story"', "serendipity", 0)

    def test_timeline_and_group_trend(self, tiny_system):
        slices = tiny_system.timeline('title:"Toy Story"', min_ratings=10)
        assert slices
        trend = tiny_system.group_trend('title:"Toy Story"', {"gender": "M"})
        assert trend

    def test_session_shares_the_miner(self, tiny_system):
        session = tiny_system.session()
        assert session.miner is tiny_system.miner

    def test_suggest_titles(self, tiny_system):
        assert "Toy Story" in tiny_system.suggest_titles("Toy")


class TestRenderingAndWarmup:
    def test_explanation_html_contains_the_query(self, tiny_system):
        html = tiny_system.explanation_html('title:"Toy Story"')
        assert "Toy Story" in html and "<svg" in html

    def test_explanation_text(self, tiny_system):
        text = tiny_system.explanation_text('title:"Toy Story"')
        assert "Similarity Mining" in text

    def test_exploration_html(self, tiny_system):
        html = tiny_system.exploration_html('title:"Toy Story"', "similarity", 0)
        assert "Rating distribution" in html

    def test_warm_up_populates_the_cache(self, fresh_system):
        report = fresh_system.warm_up(limit=3)
        assert report["results_precomputed"] + report["failures"] == 3
        assert len(fresh_system.cache) >= report["results_precomputed"]

    def test_live_requests_during_background_warm_up_do_not_deadlock(
        self, tiny_dataset, mining_config
    ):
        import threading

        from repro.config import PipelineConfig, ServerConfig
        from repro.server.api import MapRat

        # A small pool makes worker starvation easy to hit: the warmer's
        # anchors and the live explains overlap on the same popular items.
        system = MapRat.for_dataset(
            tiny_dataset,
            PipelineConfig(mining=mining_config, server=ServerConfig(mining_workers=2)),
        )
        titles = [agg.title for agg in system.precomputer.top_items(limit=4)]
        system.start_warmer(limit=4)
        threads = [
            threading.Thread(
                target=lambda t=t: system.explain(f'title:"{t}"'), daemon=True
            )
            for t in titles * 2
        ]
        for thread in threads:
            thread.start()
        deadline = 60.0
        for thread in threads:
            thread.join(deadline)
        assert not any(thread.is_alive() for thread in threads), "serving deadlocked"
        assert system.warmer.wait(timeout=60) is not None
        system.close()

    def test_close_shuts_down_the_pools_idempotently(self, tiny_dataset, mining_config):
        from repro.config import PipelineConfig
        from repro.server.api import MapRat

        with MapRat.for_dataset(
            tiny_dataset, PipelineConfig(mining=mining_config)
        ) as system:
            system.explain('title:"Toy Story"')
        system.close()  # idempotent

    def test_background_warmer_fills_the_cache_while_serving(self, fresh_system):
        warmer = fresh_system.start_warmer(limit=3)
        assert fresh_system.warmer is warmer
        report = warmer.wait(timeout=60)
        assert report is not None
        assert report.results_precomputed + report.failures == 3
        assert len(fresh_system.cache) >= report.results_precomputed
        assert fresh_system.summary()["serving"]["warmer"]["done"] is True

    def test_summary_reports_dataset_cache_and_serving(self, tiny_system):
        summary = tiny_system.summary()
        assert summary["ratings"] > 0
        assert "cache" in summary
        serving = summary["serving"]
        assert serving["single_flight"] is True
        assert serving["pool"]["workers"] == tiny_system.config.server.mining_workers


class TestJsonApi:
    @pytest.fixture(scope="class")
    def api(self, tiny_system):
        return JsonApi(tiny_system)

    def test_summary_endpoint(self, api):
        payload = api.dispatch("summary", {})
        assert payload["ratings"] > 0

    def test_suggest_endpoint(self, api):
        payload = api.dispatch("suggest", {"prefix": "Toy"})
        assert "Toy Story" in payload["titles"]

    def test_explain_endpoint(self, api):
        payload = api.dispatch("explain", {"q": 'title:"Toy Story"'})
        assert payload["query"]["item_titles"] == ["Toy Story"]
        assert payload["similarity"]["groups"]

    def test_explain_endpoint_with_year_restriction(self, api):
        payload = api.dispatch(
            "explain", {"q": 'title:"Toy Story"', "start_year": "2001", "end_year": "2001"}
        )
        assert payload["query"]["time_interval"] is not None

    def test_statistics_and_drilldown_endpoints(self, api):
        stats = api.dispatch("statistics", {"q": 'title:"Toy Story"', "group": "0"})
        assert stats["size"] > 0
        drill = api.dispatch("drilldown", {"q": 'title:"Toy Story"', "group": "0"})
        assert drill["aggregates"]

    def test_timeline_endpoint(self, api):
        payload = api.dispatch("timeline", {"q": 'title:"Toy Story"', "min_ratings": "10"})
        assert payload["slices"]

    def test_missing_parameter_is_a_400(self, api):
        with pytest.raises(ServerError) as excinfo:
            api.dispatch("explain", {})
        assert excinfo.value.status == 400

    def test_unknown_endpoint_is_a_404(self, api):
        with pytest.raises(ServerError) as excinfo:
            api.dispatch("nonsense", {})
        assert excinfo.value.status == 404

    def test_bad_query_is_wrapped_into_a_400(self, api):
        with pytest.raises(ServerError) as excinfo:
            api.dispatch("explain", {"q": 'title:"No Such Movie"'})
        assert excinfo.value.status == 400

    def test_bad_year_parameter_is_a_400(self, api):
        with pytest.raises(ServerError) as excinfo:
            api.dispatch("explain", {"q": "Toy", "start_year": "not-a-year"})
        assert excinfo.value.status == 400
