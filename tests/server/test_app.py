"""Integration tests for the HTTP front-end (http.server based)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.server.app import MapRatHttpServer, run_server


@pytest.fixture(scope="module")
def server(tiny_system):
    with MapRatHttpServer(tiny_system, host="127.0.0.1", port=0) as running:
        yield running


def _get(server, path):
    with urllib.request.urlopen(f"{server.url}{path}", timeout=30) as response:
        return response.status, response.read().decode("utf-8")


class TestHtmlPages:
    def test_landing_page_shows_the_dataset_summary(self, server):
        status, body = _get(server, "/")
        assert status == 200
        assert "MapRat" in body
        assert "Explain Ratings" in body

    def test_explain_page_renders_the_report(self, server):
        status, body = _get(server, "/explain?q=title%3A%22Toy%20Story%22")
        assert status == 200
        assert "Similarity Mining" in body
        assert "<svg" in body

    def test_explore_page_renders_the_group_view(self, server):
        status, body = _get(
            server, "/explore?q=title%3A%22Toy%20Story%22&task=similarity&group=0"
        )
        assert status == 200
        assert "Rating distribution" in body

    def test_missing_query_parameter_is_a_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/explain")
        assert excinfo.value.code == 400

    def test_unknown_path_is_a_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/definitely/not/here")
        assert excinfo.value.code == 404


class TestJsonEndpoints:
    def test_summary(self, server):
        status, body = _get(server, "/api/summary")
        assert status == 200
        assert json.loads(body)["ratings"] > 0

    def test_explain(self, server):
        status, body = _get(server, "/api/explain?q=Toy%20Story")
        payload = json.loads(body)
        assert status == 200
        assert payload["similarity"]["groups"]

    def test_suggest(self, server):
        status, body = _get(server, "/api/suggest?prefix=Toy")
        assert "Toy Story" in json.loads(body)["titles"]

    def test_error_payload_is_json(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/api/explain")
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read().decode("utf-8"))

    def test_unknown_endpoint(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/api/nothing")
        assert excinfo.value.code == 404


class TestLifecycle:
    def test_run_server_binds_an_ephemeral_port_and_stops(self, tiny_dataset, mining_config):
        from repro.config import PipelineConfig

        server = run_server(
            tiny_dataset, PipelineConfig(mining=mining_config), port=0, warm_up=0
        )
        try:
            status, _ = _get(server, "/api/summary")
            assert status == 200
            assert server.port != 0
        finally:
            server.stop()

    def test_stop_is_idempotent(self, tiny_system):
        server = MapRatHttpServer(tiny_system, port=0)
        server.start()
        server.stop()
        server.stop()
