"""Tests for per-item aggregates and popular-item pre-computation."""

import pytest

from repro.server.precompute import Precomputer


@pytest.fixture(scope="module")
def precomputer(tiny_store, tiny_miner):
    return Precomputer(tiny_store, tiny_miner)


class TestItemAggregates:
    def test_every_rated_item_gets_an_aggregate(self, precomputer, tiny_store):
        aggregates = precomputer.build_item_aggregates()
        rated_items = {item_id for item_id, count in tiny_store.most_rated_items(limit=10_000)}
        assert set(aggregates) == rated_items

    def test_aggregate_matches_the_store(self, precomputer, tiny_store):
        aggregates = precomputer.build_item_aggregates()
        item_id, count = tiny_store.most_rated_items(limit=1)[0]
        aggregate = aggregates[item_id]
        assert aggregate.count == count
        assert aggregate.average == pytest.approx(tiny_store.item_average(item_id), abs=1e-3)
        assert sum(aggregate.histogram.values()) == count

    def test_aggregate_for_builds_lazily(self, tiny_store, tiny_miner):
        fresh = Precomputer(tiny_store, tiny_miner)
        item_id, _ = tiny_store.most_rated_items(limit=1)[0]
        aggregate = fresh.aggregate_for(item_id)
        assert aggregate is not None
        assert aggregate.item_id == item_id

    def test_aggregate_for_unrated_item_is_none(self, precomputer, tiny_dataset):
        unrated = max(item.item_id for item in tiny_dataset.items()) + 10
        assert precomputer.aggregate_for(unrated) is None

    def test_top_items_sorted_by_count(self, precomputer):
        top = precomputer.top_items(limit=5)
        counts = [aggregate.count for aggregate in top]
        assert counts == sorted(counts, reverse=True)
        assert len(top) == 5

    def test_aggregate_serialisation(self, precomputer):
        aggregate = precomputer.top_items(limit=1)[0]
        payload = aggregate.to_dict()
        assert payload["count"] == aggregate.count
        assert isinstance(payload["histogram"], dict)


class TestWarmUp:
    def test_warm_popular_items_calls_the_explain_callback(self, precomputer):
        explained = []

        def fake_explain(item_ids, description):
            explained.append((tuple(item_ids), description))
            return "result"

        report = precomputer.warm_popular_items(fake_explain, limit=3)
        assert report.results_precomputed == 3
        assert report.failures == 0
        assert len(explained) == 3
        assert all(description.startswith('title:"') for _, description in explained)

    def test_failures_are_counted_not_raised(self, precomputer):
        from repro.errors import MiningError

        def failing_explain(item_ids, description):
            raise MiningError("boom")

        report = precomputer.warm_popular_items(failing_explain, limit=2)
        assert report.failures == 2
        assert report.results_precomputed == 0
        assert report.to_dict()["failures"] == 2


class TestLazyBuildConcurrency:
    def test_concurrent_cold_lookups_build_the_aggregates_once(
        self, tiny_store, tiny_miner
    ):
        import threading
        import time

        precomputer = Precomputer(tiny_store, tiny_miner)
        calls = []
        original = precomputer.build_item_aggregates

        def counting_build(pool=None):
            calls.append(1)
            time.sleep(0.02)  # widen the check-then-act window
            return original(pool)

        precomputer.build_item_aggregates = counting_build
        barrier = threading.Barrier(6)

        def cold_lookup():
            barrier.wait()
            assert precomputer.top_items(limit=1)

        threads = [threading.Thread(target=cold_lookup, daemon=True) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert not any(thread.is_alive() for thread in threads)
        assert len(calls) == 1


class TestPoolSharding:
    def test_sharded_aggregates_equal_serial_ones(self, tiny_store, tiny_miner):
        from repro.server.pool import MiningWorkerPool

        serial = Precomputer(tiny_store, tiny_miner).build_item_aggregates()
        with MiningWorkerPool(4) as pool:
            sharded = Precomputer(tiny_store, tiny_miner).build_item_aggregates(pool=pool)
        assert sharded == serial

    def test_sharded_warm_up_matches_the_serial_report(self, tiny_store, tiny_miner):
        from repro.errors import MiningError
        from repro.server.pool import MiningWorkerPool

        def explain(item_ids, description):
            if item_ids[0] % 2:
                raise MiningError("odd items fail")
            return "ok"

        serial = Precomputer(tiny_store, tiny_miner).warm_popular_items(explain, limit=6)
        with MiningWorkerPool(4) as pool:
            sharded = Precomputer(tiny_store, tiny_miner).warm_popular_items(
                explain, limit=6, pool=pool
            )
        assert (sharded.results_precomputed, sharded.failures) == (
            serial.results_precomputed,
            serial.failures,
        )

    def test_sharded_warm_up_reraises_non_mining_errors(self, tiny_store, tiny_miner):
        from repro.server.pool import MiningWorkerPool

        def explain(item_ids, description):
            raise ValueError("not a mining failure")

        with MiningWorkerPool(2) as pool:
            with pytest.raises(ValueError):
                Precomputer(tiny_store, tiny_miner).warm_popular_items(
                    explain, limit=2, pool=pool
                )


class TestCacheWarmer:
    def test_warmer_runs_in_the_background_and_reports(self, tiny_store, tiny_miner):
        from repro.server.precompute import CacheWarmer

        warmed = []

        def explain(item_ids, description):
            warmed.append(tuple(item_ids))
            return "ok"

        precomputer = Precomputer(tiny_store, tiny_miner)
        warmer = CacheWarmer(precomputer, explain, limit=3).start()
        report = warmer.wait(timeout=30)
        assert report is not None and warmer.done
        assert report.results_precomputed == 3
        assert len(warmed) == 3
        assert warmer.to_dict()["report"]["results_precomputed"] == 3

    def test_warmer_start_is_idempotent(self, tiny_store, tiny_miner):
        from repro.server.precompute import CacheWarmer

        calls = []
        precomputer = Precomputer(tiny_store, tiny_miner)
        warmer = CacheWarmer(precomputer, lambda i, d: calls.append(1), limit=2)
        assert warmer.start() is warmer.start()
        warmer.wait(timeout=30)
        assert len(calls) == 2

    def test_cancel_stops_a_serial_warm_up_between_anchors(self, tiny_store, tiny_miner):
        import threading
        import time

        from repro.server.precompute import CacheWarmer

        started = threading.Event()
        warmed = []

        def slow_explain(item_ids, description):
            started.set()
            time.sleep(0.05)
            warmed.append(tuple(item_ids))

        # No pool: the serial path must honour cancel() between anchors.
        warmer = CacheWarmer(
            Precomputer(tiny_store, tiny_miner), slow_explain, limit=20
        ).start()
        assert started.wait(timeout=30)
        warmer.cancel()
        report = warmer.wait(timeout=30)
        assert report is not None
        assert report.results_precomputed < 20  # the tail was skipped
        assert report.results_precomputed == len(warmed)

    def test_cancel_also_stops_a_pool_sharded_warm_up(self, tiny_store, tiny_miner):
        import threading
        import time

        from repro.server.pool import MiningWorkerPool
        from repro.server.precompute import CacheWarmer

        started = threading.Event()
        warmed = []

        def slow_explain(item_ids, description):
            started.set()
            time.sleep(0.1)
            warmed.append(tuple(item_ids))

        with MiningWorkerPool(2) as pool:
            warmer = CacheWarmer(
                Precomputer(tiny_store, tiny_miner), slow_explain, limit=12, pool=pool
            ).start()
            assert started.wait(timeout=30)
            warmer.cancel()
            report = warmer.wait(timeout=60)
        assert report is not None
        assert report.results_precomputed < 12  # queued anchors were skipped
        assert report.results_precomputed == len(warmed)
        assert report.failures == 0

    def test_shutdown_cancellation_yields_a_partial_report_not_a_failure(
        self, tiny_store, tiny_miner
    ):
        import threading
        import time

        from repro.server.pool import MiningWorkerPool
        from repro.server.precompute import CacheWarmer

        started = threading.Event()

        def slow_explain(item_ids, description):
            started.set()
            time.sleep(0.1)

        pool = MiningWorkerPool(2)
        warmer = CacheWarmer(
            Precomputer(tiny_store, tiny_miner), slow_explain, limit=12, pool=pool
        ).start()
        assert started.wait(timeout=30)
        # The MapRat.close() sequence: cancel, then drain the pool.
        warmer.cancel()
        pool.shutdown(cancel_pending=True)
        report = warmer.wait(timeout=60)
        assert report is not None  # cancelled anchors are skips, not failures
        assert warmer.error is None
        assert report.failures == 0
        assert report.results_precomputed < 12

    def test_warmer_surfaces_fatal_errors_on_wait(self, tiny_store, tiny_miner):
        from repro.server.precompute import CacheWarmer

        def explain(item_ids, description):
            raise RuntimeError("warmer died")

        warmer = CacheWarmer(Precomputer(tiny_store, tiny_miner), explain, limit=1).start()
        with pytest.raises(RuntimeError):
            warmer.wait(timeout=30)
        assert warmer.to_dict()["failed"] is True
