"""Tests for per-item aggregates and popular-item pre-computation."""

import pytest

from repro.server.precompute import Precomputer


@pytest.fixture(scope="module")
def precomputer(tiny_store, tiny_miner):
    return Precomputer(tiny_store, tiny_miner)


class TestItemAggregates:
    def test_every_rated_item_gets_an_aggregate(self, precomputer, tiny_store):
        aggregates = precomputer.build_item_aggregates()
        rated_items = {item_id for item_id, count in tiny_store.most_rated_items(limit=10_000)}
        assert set(aggregates) == rated_items

    def test_aggregate_matches_the_store(self, precomputer, tiny_store):
        aggregates = precomputer.build_item_aggregates()
        item_id, count = tiny_store.most_rated_items(limit=1)[0]
        aggregate = aggregates[item_id]
        assert aggregate.count == count
        assert aggregate.average == pytest.approx(tiny_store.item_average(item_id), abs=1e-3)
        assert sum(aggregate.histogram.values()) == count

    def test_aggregate_for_builds_lazily(self, tiny_store, tiny_miner):
        fresh = Precomputer(tiny_store, tiny_miner)
        item_id, _ = tiny_store.most_rated_items(limit=1)[0]
        aggregate = fresh.aggregate_for(item_id)
        assert aggregate is not None
        assert aggregate.item_id == item_id

    def test_aggregate_for_unrated_item_is_none(self, precomputer, tiny_dataset):
        unrated = max(item.item_id for item in tiny_dataset.items()) + 10
        assert precomputer.aggregate_for(unrated) is None

    def test_top_items_sorted_by_count(self, precomputer):
        top = precomputer.top_items(limit=5)
        counts = [aggregate.count for aggregate in top]
        assert counts == sorted(counts, reverse=True)
        assert len(top) == 5

    def test_aggregate_serialisation(self, precomputer):
        aggregate = precomputer.top_items(limit=1)[0]
        payload = aggregate.to_dict()
        assert payload["count"] == aggregate.count
        assert isinstance(payload["histogram"], dict)


class TestWarmUp:
    def test_warm_popular_items_calls_the_explain_callback(self, precomputer):
        explained = []

        def fake_explain(item_ids, description):
            explained.append((tuple(item_ids), description))
            return "result"

        report = precomputer.warm_popular_items(fake_explain, limit=3)
        assert report.results_precomputed == 3
        assert report.failures == 0
        assert len(explained) == 3
        assert all(description.startswith('title:"') for _, description in explained)

    def test_failures_are_counted_not_raised(self, precomputer):
        from repro.errors import MiningError

        def failing_explain(item_ids, description):
            raise MiningError("boom")

        report = precomputer.warm_popular_items(failing_explain, limit=2)
        assert report.failures == 2
        assert report.results_precomputed == 0
        assert report.to_dict()["failures"] == 2
