"""Behaviour tests of the asyncio production tier.

The cross-edge contract (routing, error mapping, the four bug fixes) is
covered by ``test_http_edge.py``, which runs against both backends.  This
module covers what only the async tier does: HTTP/1.1 pipelining, framing
limits enforced on the event loop, load shedding before the executor hop,
API-key auth and rate limiting over real sockets, lifecycle edge cases, and
keep-alive clients staying healthy while a compaction swaps the epoch
under them.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.config import PipelineConfig, ServerConfig
from repro.server.api import MapRat
from repro.server.asyncapi import AsyncMapRatHttpServer

from test_http_edge import RawClient


@pytest.fixture(scope="module")
def server(tiny_system):
    with AsyncMapRatHttpServer(tiny_system, host="127.0.0.1", port=0) as running:
        yield running


@pytest.fixture(scope="module")
def secured_server(tiny_dataset, mining_config):
    """An async server with API keys, tight rate limits and a tiny gate."""
    config = PipelineConfig(
        mining=mining_config,
        server=ServerConfig(
            api_keys=("sekrit",),
            rate_limits={"store_stats": 0.001},
            max_inflight=2,
        ),
    )
    system = MapRat.for_dataset(tiny_dataset, config)
    server = AsyncMapRatHttpServer(system, host="127.0.0.1", port=0, owns_system=True)
    with server as running:
        yield running


def _json(body: bytes):
    return json.loads(body.decode("utf-8"))


class TestPipelining:
    def test_two_pipelined_requests_get_two_ordered_responses(self, server):
        with RawClient(server) as client:
            client.send(
                b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n"
                b"GET /version HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            status, _, body = client.read_response()
            assert status == 200
            assert _json(body)["status"] == "ok"
            status, _, body = client.read_response()
            assert status == 200
            assert _json(body)["http_backend"] == "async"

    def test_http_10_client_gets_close_per_request(self, server):
        with RawClient(server) as client:
            client.send(b"GET /health HTTP/1.0\r\nHost: t\r\n\r\n")
            status, headers, _ = client.read_response()
            assert status == 200
            assert headers["connection"] == "close"
            assert client.file.readline() == b""

    def test_http_10_keep_alive_opt_in_is_honoured(self, server):
        with RawClient(server) as client:
            client.send(
                b"GET /health HTTP/1.0\r\nHost: t\r\nConnection: keep-alive\r\n\r\n"
            )
            status, headers, _ = client.read_response()
            assert status == 200
            assert headers["connection"] == "keep-alive"
            client.send(b"GET /health HTTP/1.0\r\nHost: t\r\n\r\n")
            status, _, _ = client.read_response()
            assert status == 200


class TestFraming:
    def test_malformed_request_line_is_a_400(self, server):
        with RawClient(server) as client:
            client.send(b"COMPLETE NONSENSE\r\n\r\n")
            status, _, body = client.read_response()
            assert status == 400
            assert "request line" in _json(body)["error"]

    def test_oversized_request_line_is_a_431(self, server):
        with RawClient(server) as client:
            client.send(b"GET /" + b"a" * (32 * 1024) + b" HTTP/1.1\r\n\r\n")
            status, _, _ = client.read_response()
            assert status == 431

    def test_too_many_headers_is_a_431(self, server):
        head = b"GET /health HTTP/1.1\r\nHost: t\r\n"
        head += b"".join(b"X-H%d: v\r\n" % i for i in range(150))
        with RawClient(server) as client:
            client.send(head + b"\r\n")
            status, _, _ = client.read_response()
            assert status == 431

    def test_eof_between_requests_is_a_clean_close(self, server):
        client = RawClient(server)
        status, _, _ = client.request("GET", "/health")
        assert status == 200
        client.close()  # no error on the server side; nothing to assert but
        # the next test's requests must still be served.


class TestLoadShedding:
    def test_gate_full_sheds_with_503_and_retry_after(self, secured_server):
        gate = secured_server.router.admission
        assert gate.try_acquire() and gate.try_acquire()  # fill both slots
        try:
            with RawClient(secured_server) as client:
                status, headers, body = client.request("GET", "/api/summary")
                assert status == 503
                assert headers["retry-after"] == "1"
                assert "overloaded" in _json(body)["error"]
                # Ops endpoints bypass the gate and stay observable.
                status, _, _ = client.request("GET", "/health")
                assert status == 200
                status, _, body = client.request("GET", "/metrics")
                assert b"maprat_http_load_shed_total 1" in body
        finally:
            gate.release()
            gate.release()

    def test_requests_resume_after_the_gate_drains(self, secured_server):
        with RawClient(secured_server) as client:
            status, _, _ = client.request("GET", "/api/summary")
            assert status == 200


class TestAuthOverSockets:
    def test_write_without_key_is_a_401(self, secured_server):
        with RawClient(secured_server) as client:
            status, _, body = client.request("POST", "/api/compact", body=b"{}")
            assert status == 401
            assert "API key" in _json(body)["error"]

    def test_write_with_key_succeeds(self, secured_server):
        with RawClient(secured_server) as client:
            status, _, _ = client.request(
                "POST", "/api/compact", headers={"X-API-Key": "sekrit"}, body=b"{}"
            )
            assert status == 200

    def test_bearer_token_is_accepted(self, secured_server):
        with RawClient(secured_server) as client:
            status, _, _ = client.request(
                "POST",
                "/api/compact",
                headers={"Authorization": "Bearer sekrit"},
                body=b"{}",
            )
            assert status == 200

    def test_reads_stay_open_without_a_key(self, secured_server):
        with RawClient(secured_server) as client:
            status, _, _ = client.request("GET", "/api/summary")
            assert status == 200


class TestRateLimitOverSockets:
    def test_second_request_within_the_window_is_a_429(self, secured_server):
        with RawClient(secured_server) as client:
            first, _, _ = client.request("GET", "/api/store_stats")
            status, headers, body = client.request("GET", "/api/store_stats")
        # Bucket rate 0.001/s, capacity 1: exactly one admission per ~17 min.
        assert first == 200
        assert status == 429
        assert int(headers["retry-after"]) >= 1
        assert "rate limit" in _json(body)["error"]


class TestLifecycle:
    def test_stop_is_idempotent_and_restartable_state_is_clean(
        self, tiny_dataset, mining_config
    ):
        system = MapRat.for_dataset(
            tiny_dataset, PipelineConfig(mining=mining_config)
        )
        try:
            server = AsyncMapRatHttpServer(system, host="127.0.0.1", port=0)
            server.start()
            host, port = server.host, server.port
            assert port != 0
            server.stop()
            server.stop()  # idempotent
            with pytest.raises(OSError):
                socket.create_connection((host, port), timeout=1).close()
        finally:
            system.close()

    def test_bind_failure_surfaces_from_start(self, tiny_system):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            server = AsyncMapRatHttpServer(tiny_system, host="127.0.0.1", port=port)
            with pytest.raises(OSError):
                server.start()
        finally:
            blocker.close()

    def test_url_reflects_the_bound_ephemeral_port(self, server):
        assert server.url == f"http://{server.host}:{server.port}"
        assert server.port != 0


class TestKeepAliveDuringCompaction:
    def test_concurrent_clients_survive_an_epoch_swap(
        self, tiny_dataset, mining_config
    ):
        """Keep-alive readers must not observe errors while ingest triggers
        a compaction (the serve-while-ingest isolation the tier exists for)."""
        config = PipelineConfig(
            mining=mining_config,
            server=ServerConfig(auto_compact_threshold=3, ingest_batch_size=16),
        )
        system = MapRat.for_dataset(tiny_dataset, config)
        server = AsyncMapRatHttpServer(
            system, host="127.0.0.1", port=0, owns_system=True
        )
        with server:
            errors = []
            done = threading.Event()

            def reader():
                try:
                    with RawClient(server) as client:
                        while not done.is_set():
                            status, _, body = client.request("GET", "/api/store_stats")
                            assert status == 200, body
                            _json(body)
                except Exception as exc:  # pragma: no cover - failure capture
                    errors.append(exc)

            threads = [threading.Thread(target=reader) for _ in range(4)]
            for thread in threads:
                thread.start()
            try:
                with RawClient(server) as writer:
                    for t in range(6):  # crosses the auto-compact threshold twice
                        payload = json.dumps(
                            {
                                "item_id": 1,
                                "reviewer_id": 1 + t,
                                "score": 4,
                                "timestamp": 1000 + t,
                            }
                        ).encode("utf-8")
                        status, _, body = writer.request(
                            "POST", "/api/ingest", body=payload
                        )
                        assert status == 200, body
            finally:
                done.set()
                for thread in threads:
                    thread.join(timeout=30)
            assert not errors
            assert system.serving.epoch >= 1  # a compaction really happened
