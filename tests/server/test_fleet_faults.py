"""Network fault-injection battery for the fleet mining backend.

Every fault a distributed pool can meet on one box, injected for real:
workers SIGKILLed mid-flight (replica failover must answer bit-identically),
workers SIGSTOPped (the I/O deadline must surface a typed
:class:`~repro.errors.MiningTimeoutError`, never a hang), peers speaking
garbage (torn frames, corrupt checksums, non-protocol payloads must raise
:class:`~repro.errors.WireProtocolError`), workers joining mid-epoch (lazy
segment re-sync), and a full-system ``close()`` that must leave no socket and
no ``/dev/shm`` segment behind.

The rogue-peer tests run the coordinator against an in-test TCP server that
deliberately violates the protocol; the process-fault tests drive real
spawned ``repro fleet-worker`` subprocesses.
"""

from __future__ import annotations

import os
import pickle
import signal
import socket
import threading

import pytest

from repro.config import MiningConfig, PipelineConfig, ServerConfig
from repro.core.miner import RatingMiner
from repro.data.storage import RatingStore
from repro.data.wire import FRAME_HEADER, recv_frame, recv_message, send_message
from repro.errors import MiningTimeoutError, PoolError, WireProtocolError
from repro.server.api import MapRat
from repro.server.fleet import FleetMiningPool, FleetWorkerServer

MINING = MiningConfig(
    min_group_support=3,
    min_coverage=0.2,
    rhe_restarts=2,
    rhe_max_iterations=60,
)


@pytest.fixture(scope="module")
def base_store(tiny_dataset):
    """One frozen epoch-0 store shared (read-only) by the battery."""
    return RatingStore(tiny_dataset)


@pytest.fixture(scope="module")
def probe_items(tiny_dataset):
    """A selection wide enough that every shard of a 2-way split has rows."""
    return [item.item_id for item in tiny_dataset.items()][:5]


def strip_volatile(payload):
    """Drop wall-clock fields recursively; everything else compares exactly."""
    if isinstance(payload, dict):
        return {
            key: strip_volatile(value)
            for key, value in payload.items()
            if key != "elapsed_seconds"
        }
    if isinstance(payload, list):
        return [strip_volatile(value) for value in payload]
    return payload


def explain_payload(store, item_ids, pool=None):
    result = RatingMiner(store, MINING).explain_items(item_ids, pool=pool)
    return strip_volatile(result.to_dict())


def _resume(process) -> None:
    """SIGCONT a worker, shrugging off one that already exited."""
    try:
        os.kill(process.pid, signal.SIGCONT)
    except (ProcessLookupError, OSError):
        pass


def open_socket_fds():
    """The process's open socket file descriptors (fd -> socket inode)."""
    sockets = []
    for fd in os.listdir("/proc/self/fd"):
        try:
            target = os.readlink(f"/proc/self/fd/{fd}")
        except OSError:
            continue
        if target.startswith("socket:"):
            sockets.append((fd, target))
    return sorted(sockets)


class _RoguePeer:
    """A TCP server that accepts fleet connections and misbehaves on purpose.

    ``behavior(conn)`` runs once per accepted connection; it is expected to
    consume whatever the coordinator sends (so the coordinator's blob write
    never blocks on a full socket buffer) and then answer with something
    protocol-breaking.
    """

    def __init__(self, behavior):
        self._behavior = behavior
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self.address = f"127.0.0.1:{self.port}"
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            try:
                self._behavior(conn)
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self):
        self._listener.close()


def rogue_pool(address):
    """A single-replica coordinator wired to one (rogue) external worker."""
    return FleetMiningPool(
        workers=0,
        shards=2,
        replicas=1,
        addresses=(address,),
        heartbeat_s=60.0,  # keep the heartbeat out of these deterministic tests
        io_timeout_s=10.0,
    )


class TestWorkerDeath:
    def test_sigkill_mid_flight_fails_over_bit_identically(
        self, base_store, probe_items
    ):
        """Killing the preferred replica re-routes to the survivor, same bits."""
        serial = explain_payload(base_store, probe_items)
        pool = FleetMiningPool(
            workers=2, shards=2, replicas=2, heartbeat_s=60.0, respawn=False
        )
        try:
            pool.publish(base_store)
            # Warm both connections first so the kill hits live sockets, as a
            # worker crash mid-request would.
            assert explain_payload(base_store, probe_items, pool=pool) == serial
            with pool._lock:
                victim_name = pool._ring.lookup("shard-0", 1)[0]
                victim = pool._members[victim_name]
            os.kill(victim.proc.pid, signal.SIGKILL)
            victim.proc.wait(timeout=10)
            # Shard 0's first replica is now a corpse: the request must fail
            # over to the surviving worker and still answer bit-identically.
            assert explain_payload(base_store, probe_items, pool=pool) == serial
            status = pool.to_dict()
            assert status["failovers"] >= 1
            by_name = {member["name"]: member for member in status["members"]}
            assert by_name[victim_name]["alive"] is False
            assert status["broken"] is None  # a dead worker never breaks the pool
        finally:
            pool.shutdown()

    def test_sigstopped_fleet_times_out_typed_never_hangs(
        self, base_store, probe_items
    ):
        """With every replica wedged, the I/O deadline surfaces a typed error."""
        pool = FleetMiningPool(
            workers=2,
            shards=2,
            replicas=2,
            heartbeat_s=60.0,
            io_timeout_s=0.8,
            respawn=False,
        )
        stopped = []
        try:
            pool.publish(base_store)
            assert explain_payload(base_store, probe_items, pool=pool) is not None
            try:
                with pool._lock:
                    members = list(pool._members.values())
                for member in members:
                    os.kill(member.proc.pid, signal.SIGSTOP)
                    stopped.append(member.proc)
                with pytest.raises(MiningTimeoutError):
                    explain_payload(base_store, probe_items, pool=pool)
            finally:
                for process in stopped:
                    _resume(process)
        finally:
            pool.shutdown()

    def test_recycled_worker_reconnects_and_resyncs(self, base_store, probe_items):
        """Kill + respawn one worker: it re-syncs segments lazily and serves."""
        serial = explain_payload(base_store, probe_items)
        pool = FleetMiningPool(
            workers=2, shards=2, replicas=1, heartbeat_s=60.0
        )
        try:
            pool.publish(base_store)
            assert explain_payload(base_store, probe_items, pool=pool) == serial
            shipped_before = pool.to_dict()["bytes_shipped"]
            with pool._lock:
                name = next(iter(pool._members))
            pool.recycle_worker(name)
            assert explain_payload(base_store, probe_items, pool=pool) == serial
            # The recycled worker lost its attached segments with its process:
            # serving again required re-shipping them.
            assert pool.to_dict()["bytes_shipped"] > shipped_before
        finally:
            pool.shutdown()


class TestMembership:
    def test_worker_joining_mid_epoch_resyncs_segments(
        self, base_store, probe_items
    ):
        """A joiner that becomes the only route must receive the live epoch."""
        serial = explain_payload(base_store, probe_items)
        pool = FleetMiningPool(
            workers=2, shards=2, replicas=1, heartbeat_s=60.0
        )
        try:
            pool.publish(base_store)
            assert explain_payload(base_store, probe_items, pool=pool) == serial
            originals = list(pool.live_workers())
            joiner = pool.add_worker()
            for name in originals:
                pool.remove_worker(name)
            assert pool.live_workers() == (joiner,)
            # Every shard now routes to the joiner, which was not around at
            # publish time — the lazy attach must ship it the epoch.
            assert explain_payload(base_store, probe_items, pool=pool) == serial
            by_name = {
                member["name"]: member for member in pool.to_dict()["members"]
            }
            assert by_name[joiner]["tasks"] > 0
        finally:
            pool.shutdown()


class TestWireFaults:
    def _consume_attach(self, conn):
        """Read the coordinator's attach message + segment blob frames."""
        recv_frame(conn)  # ("attach", epoch, shard, manifest)
        recv_frame(conn)  # the packed segment bytes

    def test_corrupt_reply_checksum_is_a_typed_wire_error(
        self, base_store, probe_items
    ):
        def bad_crc(conn):
            self._consume_attach(conn)
            conn.sendall(FRAME_HEADER.pack(5, 12345) + b"hello")

        rogue = _RoguePeer(bad_crc)
        pool = rogue_pool(rogue.address)
        try:
            pool.publish(base_store)
            with pytest.raises(WireProtocolError):
                explain_payload(base_store, probe_items, pool=pool)
        finally:
            pool.shutdown()
            rogue.close()

    def test_torn_reply_frame_is_a_typed_wire_error(self, base_store, probe_items):
        def torn(conn):
            self._consume_attach(conn)
            conn.sendall(FRAME_HEADER.pack(100, 0) + b"abc")  # then close

        rogue = _RoguePeer(torn)
        pool = rogue_pool(rogue.address)
        try:
            pool.publish(base_store)
            with pytest.raises(WireProtocolError):
                explain_payload(base_store, probe_items, pool=pool)
        finally:
            pool.shutdown()
            rogue.close()

    def test_non_protocol_reply_payload_is_a_typed_wire_error(
        self, base_store, probe_items
    ):
        def wrong_type(conn):
            self._consume_attach(conn)
            payload = pickle.dumps([1, 2, 3])  # a list is not a message
            import zlib

            conn.sendall(FRAME_HEADER.pack(len(payload), zlib.crc32(payload)))
            conn.sendall(payload)

        rogue = _RoguePeer(wrong_type)
        pool = rogue_pool(rogue.address)
        try:
            pool.publish(base_store)
            with pytest.raises(WireProtocolError):
                explain_payload(base_store, probe_items, pool=pool)
        finally:
            pool.shutdown()
            rogue.close()

    def test_worker_drops_garbage_connection_and_keeps_serving(self):
        """A client speaking garbage loses its connection, nobody else's."""
        server = FleetWorkerServer()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            garbage = socket.create_connection(server.address, timeout=5)
            garbage.settimeout(5)
            garbage.sendall(b"\xff" * 64)  # an absurd length prefix
            try:
                hung_up = garbage.recv(1) == b""
            except ConnectionResetError:
                hung_up = True  # closed with our bytes unread -> RST, same thing
            assert hung_up  # the worker hung up on us...
            garbage.close()
            clean = socket.create_connection(server.address, timeout=5)
            clean.settimeout(5)
            send_message(clean, ("ping",))
            reply = recv_message(clean)
            assert reply is not None and reply[0] == "pong"  # ...but still serves
            clean.close()
        finally:
            server.close()
            thread.join(timeout=5)


class TestCleanShutdown:
    def test_close_leaks_no_sockets_no_shm_and_no_workers(self, tiny_dataset):
        """A full fleet-backed system tears down to exactly where it started."""
        shm_before = sorted(os.listdir("/dev/shm"))
        fds_before = open_socket_fds()
        system = MapRat.for_dataset(
            tiny_dataset,
            PipelineConfig(
                mining=MINING,
                server=ServerConfig(
                    mining_backend="fleet",
                    mining_workers=2,
                    mining_shards=2,
                    fleet_replicas=2,
                    fleet_heartbeat_s=60.0,
                ),
            ),
        )
        item_ids = [item.item_id for item in tiny_dataset.items()][:3]
        system.explain_items(item_ids)
        pool = system.pool
        assert pool.segment_names() == []  # the fleet never creates shm segments
        assert sorted(os.listdir("/dev/shm")) == shm_before
        with pool._lock:
            processes = [
                member.proc
                for member in pool._members.values()
                if member.proc is not None
            ]
        assert processes, "the fleet backend must have spawned workers"
        system.close()
        for process in processes:
            assert process.poll() is not None, "worker survived close()"
        # No *new* socket fd and no new /dev/shm entry may survive close()
        # (fds left over from other tests' teardown may disappear, which is
        # fine — only additions are leaks).
        assert set(open_socket_fds()) - set(fds_before) == set()
        assert set(os.listdir("/dev/shm")) - set(shm_before) == set()

    def test_shutdown_is_idempotent_and_rejects_new_work(self, base_store):
        pool = FleetMiningPool(workers=2, shards=2, heartbeat_s=60.0)
        pool.publish(base_store)
        pool.shutdown()
        pool.shutdown()  # second call is a no-op, not an error
        with pytest.raises(PoolError):
            pool.publish(base_store)
