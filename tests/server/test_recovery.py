"""Integration tests of crash recovery, warm restart and request deadlines."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.config import MiningConfig, PipelineConfig, ServerConfig
from repro.core.miner import RatingMiner
from repro.data.ingest import LiveStore
from repro.data.model import Rating, Reviewer
from repro.errors import (
    ConstraintError,
    MiningTimeoutError,
    RecoveryError,
    ServerError,
)
from repro.server.api import JsonApi, MapRat
from repro.server.recovery import DataDirLayout, DurabilityController


def _reviewer(n):
    return Reviewer(
        reviewer_id=900000 + n,
        gender="F" if n % 2 else "M",
        age=20 + n,
        occupation="artist",
        zipcode="94110",
    )


def _ops(count, items, start=0):
    """A deterministic op sequence: every third rating registers a reviewer."""
    ops = []
    for n in range(start, start + count):
        reviewer = _reviewer(n) if n % 3 == 0 else None
        reviewer_id = 900000 + n if n % 3 == 0 else 1 + (n % 5)
        rating = Rating(
            item_id=items[n % len(items)],
            reviewer_id=reviewer_id,
            score=float(1 + n % 5),
            timestamp=1000 + n,
        )
        ops.append((rating, reviewer))
    return ops


def _scrub(payload):
    """Drop wall-clock fields so payloads compare on behaviour alone."""
    if isinstance(payload, dict):
        return {
            key: _scrub(value)
            for key, value in payload.items()
            if key != "elapsed_seconds"
        }
    if isinstance(payload, list):
        return [_scrub(value) for value in payload]
    return payload


def assert_stores_identical(left, right):
    """Bit-level equality of two stores: columns, codes, vocabs, positions."""
    assert left.epoch == right.epoch
    for name in ("_item_ids", "_reviewer_ids", "_scores", "_timestamps"):
        np.testing.assert_array_equal(getattr(left, name), getattr(right, name))
    assert left.grouping_attributes == right.grouping_attributes
    for attribute in left.grouping_attributes:
        np.testing.assert_array_equal(
            left.codes_for(attribute), right.codes_for(attribute)
        )
        np.testing.assert_array_equal(
            left.vocabulary_for(attribute), right.vocabulary_for(attribute)
        )
    assert set(left._positions_by_item) == set(right._positions_by_item)
    for item_id, positions in left._positions_by_item.items():
        np.testing.assert_array_equal(positions, right._positions_by_item[item_id])


def _build_store(dataset):
    return RatingMiner.build_store(dataset, MiningConfig())


def _reference_live(dataset, ops, compact_at=()):
    """The never-killed run: same ops, same compaction points, no journal."""
    live = LiveStore(_build_store(dataset))
    for index, (rating, reviewer) in enumerate(ops):
        live.ingest(rating, reviewer)
        if index in compact_at:
            live.compact()
    return live


class TestDurabilityController:
    def test_fresh_start(self, tmp_path, tiny_dataset):
        controller = DurabilityController(tmp_path)
        live, report = controller.recover(tiny_dataset, _build_store)
        assert report.mode == "fresh" and report.recovered_epoch == 0
        assert live.epoch == 0 and live.pending == 0
        controller.close()

    def test_crash_with_pending_rows(self, tmp_path, tiny_dataset):
        items = [item.item_id for item in list(tiny_dataset.items())[:4]]
        ops = _ops(6, items)
        controller = DurabilityController(tmp_path, fsync="never")
        live, _ = controller.recover(tiny_dataset, _build_store)
        for rating, reviewer in ops:
            live.ingest(rating, reviewer)
        del live, controller  # simulated crash: no close, no compact

        recovered_ctl = DurabilityController(tmp_path, fsync="never")
        recovered, report = recovered_ctl.recover(tiny_dataset, _build_store)
        assert report.records_replayed == len(ops)
        reference = _reference_live(tiny_dataset, ops)
        assert recovered.pending == reference.pending
        assert_stores_identical(recovered.snapshot, reference.snapshot)
        # The buffers converge too: compacting both yields identical epochs.
        recovered.compact()
        reference.compact()
        assert_stores_identical(recovered.snapshot, reference.snapshot)
        recovered_ctl.close()

    def test_crash_after_compaction_recovers_from_snapshot(
        self, tmp_path, tiny_dataset
    ):
        items = [item.item_id for item in list(tiny_dataset.items())[:4]]
        ops = _ops(8, items)
        controller = DurabilityController(tmp_path)
        live, _ = controller.recover(tiny_dataset, _build_store)
        for index, (rating, reviewer) in enumerate(ops):
            live.ingest(rating, reviewer)
            if index == 4:
                live.compact()
        del live, controller

        recovered_ctl = DurabilityController(tmp_path)
        recovered, report = recovered_ctl.recover(tiny_dataset, _build_store)
        assert report.mode == "snapshot" and report.snapshot_epoch == 1
        reference = _reference_live(tiny_dataset, ops, compact_at={4})
        assert recovered.epoch == 1 and recovered.pending == reference.pending
        assert_stores_identical(recovered.snapshot, reference.snapshot)
        recovered_ctl.close()

    def test_full_log_chain_without_snapshots(self, tmp_path, tiny_dataset):
        items = [item.item_id for item in list(tiny_dataset.items())[:4]]
        ops = _ops(9, items)
        controller = DurabilityController(tmp_path, snapshot_on_compact=False)
        live, _ = controller.recover(tiny_dataset, _build_store)
        for index, (rating, reviewer) in enumerate(ops):
            live.ingest(rating, reviewer)
            if index in (2, 5):
                live.compact()
        assert live.epoch == 2
        del live, controller

        recovered_ctl = DurabilityController(tmp_path, snapshot_on_compact=False)
        recovered, report = recovered_ctl.recover(tiny_dataset, _build_store)
        assert report.mode == "fresh"  # no snapshot existed, only logs
        assert report.compactions_replayed == 2
        reference = _reference_live(tiny_dataset, ops, compact_at={2, 5})
        assert recovered.epoch == 2 and recovered.pending == reference.pending
        assert_stores_identical(recovered.snapshot, reference.snapshot)
        recovered_ctl.close()

    def test_log_chain_gap_fails_loudly(self, tmp_path, tiny_dataset):
        items = [item.item_id for item in list(tiny_dataset.items())[:4]]
        controller = DurabilityController(tmp_path, snapshot_on_compact=False)
        live, _ = controller.recover(tiny_dataset, _build_store)
        for index, (rating, reviewer) in enumerate(_ops(6, items)):
            live.ingest(rating, reviewer)
            if index in (1, 3):
                live.compact()
        del live, controller
        layout = DataDirLayout(tmp_path)
        os.unlink(layout.wal_path(1))
        with pytest.raises(RecoveryError, match="gap"):
            DurabilityController(tmp_path, snapshot_on_compact=False).recover(
                tiny_dataset, _build_store
            )

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ConstraintError):
            DurabilityController(tmp_path, fsync="sometimes")

    def test_close_is_idempotent(self, tmp_path, tiny_dataset):
        controller = DurabilityController(tmp_path)
        controller.recover(tiny_dataset, _build_store)
        controller.close()
        controller.close()


@pytest.fixture()
def durable_config(tmp_path, mining_config):
    return PipelineConfig(
        mining=mining_config,
        server=ServerConfig(
            data_dir=str(tmp_path / "data"),
            mining_workers=0,
            warm_in_background=False,
            precompute_top_items=0,
        ),
    )


class TestMapRatDurability:
    def test_warm_restart_replays_anchors_and_matches_payloads(
        self, tiny_dataset, durable_config
    ):
        items = [item.item_id for item in list(tiny_dataset.items())[:2]]
        with MapRat(tiny_dataset, durable_config) as system:
            system.ingest(
                items[0], 900001, 4.0, timestamp=100,
                reviewer={
                    "reviewer_id": 900001, "gender": "F", "age": 30,
                    "occupation": "artist", "zipcode": "94110",
                },
            )
            system.compact()
            system.ingest(items[1], 900001, 3.0, timestamp=200)
            before = system.explain_items(items).to_dict()
            epoch_before, pending_before = system.epoch, system.live.pending

        restarted = MapRat(tiny_dataset, durable_config)
        try:
            info = restarted.recovery_info()
            assert info["configured"] and info["recovery"]["mode"] == "snapshot"
            assert info["recovery"]["warm_anchors_replayed"] == 1
            assert restarted.epoch == epoch_before
            assert restarted.live.pending == pending_before
            assert len(restarted.cache) == 1  # the anchor set pre-filled it
            after = restarted.explain_items(items).to_dict()
            assert _scrub(json.loads(json.dumps(before))) == _scrub(
                json.loads(json.dumps(after))
            )
        finally:
            restarted.close()

    def test_crash_recovery_without_clean_close(self, tiny_dataset, durable_config):
        items = [item.item_id for item in list(tiny_dataset.items())[:3]]
        system = MapRat(tiny_dataset, durable_config)
        system.ingest(items[0], 1, 5.0, timestamp=50)
        system.ingest(items[1], 2, 2.0, timestamp=60)
        # Simulated crash: abandon the system without close(); the WAL was
        # written ahead of each accepted ingest, so nothing is lost.
        system.pool.shutdown(cancel_pending=True)
        system.warm_pool.shutdown(cancel_pending=True)
        del system

        recovered = MapRat(tiny_dataset, durable_config)
        try:
            assert recovered.live.pending == 2
            assert recovered.store_stats()["accepted_total"] == 2
        finally:
            recovered.close()

    def test_snapshot_endpoint_writes_file(self, tiny_dataset, durable_config):
        with MapRat(tiny_dataset, durable_config) as system:
            api = JsonApi(system)
            payload = api.dispatch("snapshot", {})
            assert payload["epoch"] == 0 and os.path.exists(payload["path"])
            info = api.dispatch("recovery_info", {})
            assert info["snapshot_epochs"] == [0]

    def test_unconfigured_system_surfaces(self, tiny_dataset, mining_config):
        config = PipelineConfig(
            mining=mining_config, server=ServerConfig(mining_workers=0)
        )
        with MapRat(tiny_dataset, config) as system:
            api = JsonApi(system)
            assert api.dispatch("recovery_info", {}) == {"configured": False}
            with pytest.raises(ServerError) as excinfo:
                api.dispatch("snapshot", {})
            assert excinfo.value.status == 400

    def test_close_is_idempotent_and_leaves_no_shm(self, tiny_dataset, mining_config):
        config = PipelineConfig(
            mining=mining_config,
            server=ServerConfig(
                mining_backend="process", mining_workers=2, precompute_top_items=0
            ),
        )
        system = MapRat(tiny_dataset, config)
        segments = system.pool.segment_names()
        assert segments  # the startup publish exported epoch 0
        system.close()
        system.close()  # idempotent
        for name in segments:
            assert not os.path.exists(f"/dev/shm/{name}")

    def test_close_idempotent_with_durability(self, tiny_dataset, durable_config):
        system = MapRat(tiny_dataset, durable_config)
        system.close()
        system.close()


class TestMiningTimeout:
    def test_timeout_maps_to_503(self, tiny_dataset, mining_config, monkeypatch):
        config = PipelineConfig(
            mining=mining_config,
            server=ServerConfig(mining_workers=0, mining_timeout_s=0.001),
        )
        with MapRat(tiny_dataset, config) as system:
            api = JsonApi(system)

            def slow_explain(*args, **kwargs):
                raise MiningTimeoutError("mining task exceeded the 0.001s deadline")

            monkeypatch.setattr(system, "explain", slow_explain)
            with pytest.raises(ServerError) as excinfo:
                api.dispatch("explain", {"q": 'title:"Toy Story"'})
            assert excinfo.value.status == 503
            assert "deadline" in str(excinfo.value)

    def test_pool_timeout_raises_mining_timeout(self):
        import time

        from repro.server.pool import MiningWorkerPool

        pool = MiningWorkerPool(2, timeout_s=0.02)
        try:
            future = pool.submit(time.sleep, 0.5)
            with pytest.raises(MiningTimeoutError):
                pool.gather(future)
        finally:
            pool.shutdown()

    def test_inline_pool_never_times_out(self):
        import time

        from repro.server.pool import MiningWorkerPool

        pool = MiningWorkerPool(0, timeout_s=0.001)
        future = pool.submit(time.sleep, 0.01)
        assert pool.gather(future) is None
        pool.shutdown()

    def test_timeout_validation(self):
        with pytest.raises(ConstraintError):
            ServerConfig(mining_timeout_s=0)
        with pytest.raises(ConstraintError):
            ServerConfig(mining_timeout_s=-1.5)

    def test_wal_fsync_validation(self):
        with pytest.raises(ConstraintError):
            ServerConfig(wal_fsync="sometimes")
