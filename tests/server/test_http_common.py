"""Unit tests of the shared HTTP plumbing (no sockets involved).

Covers the pieces both edges build on: the numpy-aware JSON encoder, the
Content-Length validator, the token bucket, the admission gate, the HTTP
metrics counters and the Prometheus renderer, plus the router-level
behaviours (catch-all 500, API-key auth, rate limiting) driven directly
through :class:`~repro.server.http_common.RequestRouter` with in-memory
:class:`~repro.server.http_common.HttpRequest` objects.
"""

from __future__ import annotations

import json
import logging
import math

import numpy as np
import pytest

from repro.config import ServerConfig
from repro.errors import ConstraintError, ServerError
from repro.server.api import JsonApi
from repro.server.http_common import (
    HttpRequest,
    MapRatJsonEncoder,
    RequestRouter,
    json_dumps,
    parse_content_length,
)
from repro.server.metrics import (
    AdmissionGate,
    HttpMetrics,
    TokenBucket,
    render_metrics,
)


class TestMapRatJsonEncoder:
    """The numpy types the kernels emit must serialise, not TypeError."""

    @pytest.mark.parametrize(
        "scalar",
        [
            np.int8(-3),
            np.int16(-300),
            np.int32(7),
            np.int64(1 << 40),
            np.uint8(255),
            np.uint16(65535),
            np.uint32(7),
            np.uint64(7),
        ],
        ids=lambda s: type(s).__name__,
    )
    def test_integer_dtypes_become_int(self, scalar):
        decoded = json.loads(json_dumps({"v": scalar}))
        assert decoded["v"] == int(scalar)
        assert isinstance(decoded["v"], int)

    @pytest.mark.parametrize(
        "scalar",
        [np.float16(0.5), np.float32(1.25), np.float64(-2.75)],
        ids=lambda s: type(s).__name__,
    )
    def test_float_dtypes_become_float(self, scalar):
        decoded = json.loads(json_dumps({"v": scalar}))
        assert decoded["v"] == pytest.approx(float(scalar))

    @pytest.mark.parametrize(
        "value", [np.float64("nan"), np.float64("inf"), np.float64("-inf")]
    )
    def test_non_finite_floats_become_null(self, value):
        # bare json.dumps would emit NaN/Infinity — invalid JSON that
        # crashes strict clients; the encoder nulls them instead.
        assert json.loads(json_dumps({"v": value}))["v"] is None

    def test_bool_dtype_becomes_bool(self):
        decoded = json.loads(json_dumps({"t": np.bool_(True), "f": np.bool_(False)}))
        assert decoded == {"t": True, "f": False}

    def test_arrays_become_nested_lists(self):
        payload = {
            "codes": np.arange(4, dtype=np.int32),
            "grid": np.ones((2, 2), dtype=np.float64),
            "bits": np.array([1, 0, 1], dtype=np.uint8),
        }
        decoded = json.loads(json_dumps(payload))
        assert decoded["codes"] == [0, 1, 2, 3]
        assert decoded["grid"] == [[1.0, 1.0], [1.0, 1.0]]
        assert decoded["bits"] == [1, 0, 1]

    def test_bytes_decode_to_text(self):
        assert json.loads(json_dumps({"b": b"hello"}))["b"] == "hello"

    def test_deeply_nested_numpy_values_serialise(self):
        payload = {"groups": [{"size": np.int64(12), "mean": np.float32(3.5)}]}
        decoded = json.loads(json_dumps(payload))
        assert decoded["groups"][0] == {"size": 12, "mean": 3.5}

    def test_unencodable_objects_still_raise(self):
        with pytest.raises(TypeError):
            json_dumps({"v": object()})

    def test_encoder_usable_directly_with_json_dumps(self):
        text = json.dumps({"v": np.int64(3)}, cls=MapRatJsonEncoder)
        assert json.loads(text) == {"v": 3}


class TestParseContentLength:
    def test_absent_and_blank_headers_mean_no_body(self):
        assert parse_content_length(None, 100) == 0
        assert parse_content_length("", 100) == 0
        assert parse_content_length("   ", 100) == 0

    def test_valid_lengths_pass_through(self):
        assert parse_content_length("42", 100) == 42
        assert parse_content_length(" 7 ", 100) == 7
        assert parse_content_length("100", 100) == 100  # exactly at the limit

    @pytest.mark.parametrize("raw", ["banana", "1.5", "1e3", "0x10", "--1"])
    def test_malformed_values_are_a_400(self, raw):
        with pytest.raises(ServerError) as excinfo:
            parse_content_length(raw, 100)
        assert excinfo.value.status == 400

    def test_negative_length_is_a_400(self):
        with pytest.raises(ServerError) as excinfo:
            parse_content_length("-1", 100)
        assert excinfo.value.status == 400

    def test_oversized_length_is_a_413(self):
        with pytest.raises(ServerError) as excinfo:
            parse_content_length("101", 100)
        assert excinfo.value.status == 413

    def test_zero_limit_disables_the_cap(self):
        assert parse_content_length(str(1 << 40), 0) == 1 << 40


class TestTokenBucket:
    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            TokenBucket(0)
        with pytest.raises(ValueError):
            TokenBucket(-1)

    def test_burst_defaults_to_at_least_one_token(self):
        assert TokenBucket(0.5).capacity == 1.0
        assert TokenBucket(10).capacity == 10.0
        assert TokenBucket(2, burst=5).capacity == 5.0

    def test_tokens_drain_and_refill_deterministically(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        assert bucket.try_acquire(now=100.0) == 0.0
        assert bucket.try_acquire(now=100.0) == 0.0
        wait = bucket.try_acquire(now=100.0)  # bucket empty
        assert wait == pytest.approx(0.5)  # one token at 2/s
        # After the advertised wait the next request is admitted again.
        assert bucket.try_acquire(now=100.0 + wait) == 0.0

    def test_idle_time_banks_tokens_up_to_capacity(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.try_acquire(now=0.0) == 0.0
        assert bucket.try_acquire(now=0.0) == 0.0
        assert bucket.try_acquire(now=0.0) > 0
        # A long idle period refills to capacity (2), not beyond.
        assert bucket.try_acquire(now=1000.0) == 0.0
        assert bucket.try_acquire(now=1000.0) == 0.0
        assert bucket.try_acquire(now=1000.0) > 0


class TestAdmissionGate:
    def test_limit_bounds_concurrent_admissions(self):
        gate = AdmissionGate(limit=2)
        assert gate.try_acquire()
        assert gate.try_acquire()
        assert not gate.try_acquire()
        assert gate.inflight == 2
        gate.release()
        assert gate.try_acquire()

    def test_zero_limit_disables_the_gate(self):
        gate = AdmissionGate(limit=0)
        for _ in range(1000):
            assert gate.try_acquire()

    def test_negative_limit_is_rejected(self):
        with pytest.raises(ValueError):
            AdmissionGate(limit=-1)

    def test_release_never_goes_negative(self):
        gate = AdmissionGate(limit=1)
        gate.release()
        assert gate.inflight == 0


class TestHttpMetrics:
    def test_observe_accumulates_per_route_and_status(self):
        metrics = HttpMetrics()
        metrics.observe("GET", "explain", 200, 0.5)
        metrics.observe("GET", "explain", 200, 0.25)
        metrics.observe("POST", "ingest", 401, 0.0)
        snapshot = metrics.snapshot()
        assert snapshot["requests"]["GET explain 200"] == 2
        assert snapshot["requests"]["POST ingest 401"] == 1
        assert snapshot["latency_sum"]["explain"] == pytest.approx(0.75)
        assert snapshot["latency_count"]["explain"] == 2

    def test_special_counters(self):
        metrics = HttpMetrics()
        metrics.record_rate_limited("suggest")
        metrics.record_load_shed()
        metrics.record_connection()
        snapshot = metrics.snapshot()
        assert snapshot["rate_limited"] == {"suggest": 1}
        assert snapshot["load_shed_total"] == 1
        assert snapshot["connections_total"] == 1


class TestRenderMetrics:
    def test_scrape_exposes_edge_cache_pool_and_store_counters(self, tiny_system):
        metrics = HttpMetrics()
        metrics.observe("GET", "summary", 200, 0.001)
        page = render_metrics(tiny_system, metrics, edge="sync")
        assert 'maprat_http_requests_total{method="GET",route="summary",status="200",edge="sync"} 1' in page
        assert "maprat_cache_hits_total" in page
        assert "maprat_pool_workers" in page
        assert "maprat_store_epoch 0" in page
        assert 'maprat_edge_info{edge="sync"} 1' in page

    def test_every_sample_line_is_well_formed(self, tiny_system):
        page = render_metrics(tiny_system, HttpMetrics(), edge="async")
        for line in page.strip().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            name, _, value = line.rpartition(" ")
            assert name, line
            assert math.isfinite(float(value)), line


def _counter_samples(page):
    """Every ``*_total`` sample of a scrape as ``{series: float}``."""
    samples = {}
    for line in page.strip().splitlines():
        if line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if "_total" in name:
            samples[name] = float(value)
    return samples


class _StubCache:
    def __init__(self, stats):
        self.stats = stats

    def __len__(self):
        return 0


class _StubPool:
    def __init__(self, submitted):
        self.submitted = submitted

    def to_dict(self):
        return {"backend": "thread", "workers": 2, "tasks_submitted": self.submitted}


class _StubLive:
    def __init__(self, accepted):
        self.accepted = accepted

    def stats(self):
        return {
            "epoch": 1,
            "rows": 10,
            "buffered": 0,
            "accepted_total": self.accepted,
            "duplicates_total": 0,
            "compactions": 1,
        }


class _StubSystem:
    """Minimal render_metrics target whose counters can be forced backwards."""

    def __init__(self):
        from repro.server.cache import CacheStats

        self.cache = _StubCache(CacheStats(hits=5, misses=3, coalesced=1))
        self.pool = _StubPool(submitted=7)
        self.live = _StubLive(accepted=20)


class TestMonotonicCounterCarry:
    """Prometheus counters must never regress across core-state rebuilds.

    ``MapRat.compact`` (and a mining-backend swap) can replace the stats
    objects ``render_metrics`` reads; the edge-held watermark in
    :class:`HttpMetrics` must absorb any reset (ISSUE 9).
    """

    def test_monotonic_total_is_a_high_watermark(self):
        metrics = HttpMetrics()
        assert metrics.monotonic_total("cache_hits", 5) == 5
        assert metrics.monotonic_total("cache_hits", 3) == 5   # regression absorbed
        assert metrics.monotonic_total("cache_hits", 9) == 9
        assert metrics.monotonic_total("other", 1) == 1        # independent series

    def test_two_scrapes_straddling_a_live_compaction_never_regress(self, fresh_system):
        metrics = HttpMetrics()
        fresh_system.explain('title:"Toy Story"')
        fresh_system.explain('title:"Toy Story"')  # one miss + one hit on the cache
        before = _counter_samples(render_metrics(fresh_system, metrics, edge="sync"))
        reviewer = next(fresh_system.dataset.reviewers())
        fresh_system.ingest(1, reviewer.reviewer_id, 5.0, timestamp=99_999_999)
        fresh_system.compact(rewarm=False)
        after = _counter_samples(render_metrics(fresh_system, metrics, edge="sync"))
        assert before and set(before) <= set(after)
        for series, value in before.items():
            assert after[series] >= value, series

    def test_watermark_absorbs_a_forced_counter_reset(self):
        from repro.server.cache import CacheStats

        system = _StubSystem()
        metrics = HttpMetrics()
        before = _counter_samples(render_metrics(system, metrics, edge="sync"))
        # Simulate a compaction rebuilding every stats object from zero.
        system.cache = _StubCache(CacheStats())
        system.pool = _StubPool(submitted=0)
        system.live = _StubLive(accepted=0)
        after = _counter_samples(render_metrics(system, metrics, edge="sync"))
        for series in (
            "maprat_cache_hits_total",
            "maprat_cache_misses_total",
            "maprat_cache_coalesced_total",
            'maprat_pool_tasks_submitted_total{backend="thread"}',
            "maprat_ingest_accepted_total",
        ):
            assert after[series] == before[series] > 0, series


class TestServerConfigHttpFields:
    def test_defaults(self):
        config = ServerConfig()
        assert config.http_backend == "sync"
        assert config.max_inflight == 64
        assert config.rate_limits == ()
        assert config.api_keys == ()
        assert config.max_body_bytes == 1 << 20

    def test_rate_limits_accept_mappings_and_pairs(self):
        from_mapping = ServerConfig(rate_limits={"explain": 2, "*": 10})
        from_pairs = ServerConfig(rate_limits=[("*", 10.0), ("explain", 2.0)])
        assert from_mapping.rate_limits == (("*", 10.0), ("explain", 2.0))
        assert from_mapping.rate_limits == from_pairs.rate_limits

    def test_invalid_values_are_rejected(self):
        with pytest.raises(ConstraintError):
            ServerConfig(http_backend="twisted")
        with pytest.raises(ConstraintError):
            ServerConfig(max_inflight=-1)
        with pytest.raises(ConstraintError):
            ServerConfig(max_body_bytes=-1)
        with pytest.raises(ConstraintError):
            ServerConfig(rate_limits={"explain": 0})
        with pytest.raises(ConstraintError):
            ServerConfig(rate_limits=["oops"])

    def test_api_keys_normalise_to_a_tuple(self):
        assert ServerConfig(api_keys=["a", "b"]).api_keys == ("a", "b")


def _router(system, **server_kwargs):
    config = ServerConfig(**server_kwargs)
    return RequestRouter(system, JsonApi(system), config, edge="sync")


def _body(response):
    return json.loads(response.body.decode("utf-8"))


class TestRequestRouterGuard:
    """The catch-all: no request may ever end without a response."""

    def test_unexpected_exception_becomes_sanitized_json_500(
        self, tiny_system, monkeypatch, caplog
    ):
        router = _router(tiny_system)

        def boom(endpoint, params):
            raise RuntimeError("secret internal detail")

        monkeypatch.setattr(router.api, "dispatch", boom)
        with caplog.at_level(logging.ERROR, logger="repro.server.http"):
            response = router.handle(HttpRequest("GET", "/api/summary"))
        assert response.status == 500
        assert _body(response) == {"error": "internal server error"}
        # The traceback lands in the server log, never in the payload.
        assert "secret internal detail" in caplog.text

    def test_numpy_payload_serialises_instead_of_crashing(
        self, tiny_system, monkeypatch
    ):
        router = _router(tiny_system)
        monkeypatch.setattr(
            router.api,
            "dispatch",
            lambda endpoint, params: {
                "count": np.int64(3),
                "mean": np.float32(2.5),
                "histogram": np.array([1, 2], dtype=np.int32),
            },
        )
        response = router.handle(HttpRequest("GET", "/api/summary"))
        assert response.status == 200
        assert _body(response) == {"count": 3, "mean": 2.5, "histogram": [1, 2]}

    def test_server_error_keeps_its_status(self, tiny_system):
        router = _router(tiny_system)
        response = router.handle(HttpRequest("GET", "/api/nonsense"))
        assert response.status == 404
        assert "error" in _body(response)

    def test_handle_records_metrics_for_failures_too(self, tiny_system, monkeypatch):
        router = _router(tiny_system)
        monkeypatch.setattr(
            router.api, "dispatch", lambda *a: (_ for _ in ()).throw(ValueError("x"))
        )
        router.handle(HttpRequest("GET", "/api/summary"))
        assert router.metrics.snapshot()["requests"]["GET summary 500"] == 1


class TestRequestRouterAuth:
    def test_write_endpoints_demand_a_key_when_configured(self, tiny_system):
        router = _router(tiny_system, api_keys=("sekrit",))
        denied = router.handle(HttpRequest("POST", "/api/compact"))
        assert denied.status == 401
        with_key = router.handle(
            HttpRequest("POST", "/api/compact", headers={"x-api-key": "sekrit"})
        )
        assert with_key.status == 200
        bearer = router.handle(
            HttpRequest(
                "POST", "/api/compact", headers={"authorization": "Bearer sekrit"}
            )
        )
        assert bearer.status == 200

    def test_wrong_key_is_rejected(self, tiny_system):
        router = _router(tiny_system, api_keys=("sekrit",))
        response = router.handle(
            HttpRequest("POST", "/api/compact", headers={"x-api-key": "guess"})
        )
        assert response.status == 401

    def test_read_endpoints_stay_open(self, tiny_system):
        router = _router(tiny_system, api_keys=("sekrit",))
        assert router.handle(HttpRequest("GET", "/api/summary")).status == 200

    def test_no_keys_configured_means_open_write_path(self, tiny_system):
        router = _router(tiny_system)
        assert router.handle(HttpRequest("POST", "/api/compact")).status == 200


class TestRequestRouterRateLimit:
    def test_breached_bucket_answers_429_with_retry_after(self, tiny_system):
        router = _router(tiny_system, rate_limits={"store_stats": 0.01})
        first = router.handle(HttpRequest("GET", "/api/store_stats"))
        assert first.status == 200
        second = router.handle(HttpRequest("GET", "/api/store_stats"))
        assert second.status == 429
        headers = dict(second.headers)
        assert int(headers["Retry-After"]) >= 1
        assert router.metrics.snapshot()["rate_limited"] == {"store_stats": 1}

    def test_wildcard_rate_applies_to_unlisted_endpoints(self, tiny_system):
        router = _router(tiny_system, rate_limits={"*": 0.01})
        assert router.handle(HttpRequest("GET", "/api/store_stats")).status == 200
        assert router.handle(HttpRequest("GET", "/api/store_stats")).status == 429
        # Unknown endpoints never allocate a bucket (label-cardinality guard).
        assert router.handle(HttpRequest("GET", "/api/nonsense")).status == 404

    def test_unlimited_endpoints_are_never_throttled(self, tiny_system):
        router = _router(tiny_system, rate_limits={"explain": 0.01})
        for _ in range(5):
            assert router.handle(HttpRequest("GET", "/api/store_stats")).status == 200


class TestRequestRouterAdmission:
    def test_respond_sheds_load_over_the_inflight_limit(self, tiny_system):
        router = _router(tiny_system, max_inflight=1)
        assert router.admission.try_acquire()  # occupy the only slot
        try:
            response = router.respond(HttpRequest("GET", "/api/summary"))
            assert response.status == 503
            assert dict(response.headers)["Retry-After"] == "1"
            assert router.metrics.snapshot()["load_shed_total"] == 1
        finally:
            router.admission.release()

    def test_ops_endpoints_bypass_the_gate(self, tiny_system):
        router = _router(tiny_system, max_inflight=1)
        assert router.admission.try_acquire()
        try:
            for path in ("/health", "/version", "/metrics"):
                assert router.respond(HttpRequest("GET", path)).status == 200
        finally:
            router.admission.release()

    def test_admission_is_released_after_each_request(self, tiny_system):
        router = _router(tiny_system, max_inflight=1)
        for _ in range(3):
            assert router.respond(HttpRequest("GET", "/api/summary")).status == 200
        assert router.admission.inflight == 0


class TestOpsResponses:
    def test_health_reports_epoch_rows_and_inflight(self, tiny_system):
        router = _router(tiny_system)
        payload = _body(router.respond(HttpRequest("GET", "/health")))
        assert payload["status"] == "ok"
        assert payload["epoch"] == 0
        assert payload["rows"] > 0
        assert payload["inflight"] == 0

    def test_version_names_both_backends(self, tiny_system):
        router = _router(tiny_system)
        payload = _body(router.respond(HttpRequest("GET", "/version")))
        assert payload["http_backend"] == "sync"
        assert payload["mining_backend"] == "thread"
        assert payload["version"]
