"""Package version information."""

__version__ = "1.0.0"

#: Short identifier of the reproduced paper.
PAPER = "MapRat (PVLDB 5(12), 2012, pp. 1986-1989)"
