"""Zip-code resolution: zip → state → city.

MovieLens reviewers carry a raw zip code; the mining layer needs categorical
``state`` and ``city`` attributes.  The paper's system resolved these with a
geocoding lookup; offline we resolve the state through the USPS-style zip
ranges embedded in :mod:`repro.geo.states` and assign a city *deterministically*
within the state by hashing the fine digits of the zip code over the state's
major-city list.  Determinism matters: the same zip code always maps to the
same (state, city) pair, so group memberships are stable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import GeoError
from .states import State, state_by_code, state_for_zip5


def normalize_zipcode(zipcode: str) -> int:
    """Return the 5-digit integer form of a zip code string.

    MovieLens zip codes are mostly 5 digits but include ZIP+4 values
    (``"98107-2117"``) and a few non-numeric entries; the latter raise
    :class:`GeoError`.
    """
    raw = zipcode.strip().split("-")[0]
    if not raw.isdigit():
        raise GeoError(f"zip code {zipcode!r} is not numeric")
    if len(raw) > 5:
        raw = raw[:5]
    return int(raw)


def state_for_zipcode(zipcode: str) -> Optional[str]:
    """Return the USPS state code for a zip code, or None if unassigned."""
    try:
        zip5 = normalize_zipcode(zipcode)
    except GeoError:
        return None
    state = state_for_zip5(zip5)
    return state.code if state is not None else None


def city_for_zipcode(zipcode: str) -> Optional[str]:
    """Return the deterministic city assignment for a zip code, or None."""
    try:
        zip5 = normalize_zipcode(zipcode)
    except GeoError:
        return None
    state = state_for_zip5(zip5)
    if state is None:
        return None
    return _city_within(state, zip5)


def _city_within(state: State, zip5: int) -> str:
    """Pick a city of ``state`` for ``zip5`` by partitioning the fine digits."""
    if not state.cities:
        return state.name
    return state.cities[zip5 % len(state.cities)]


@dataclass
class ZipResolver:
    """Cached zip-code resolver used when loading or generating datasets.

    Resolution of a single zip code is cheap but datasets repeat zip codes
    heavily (6 040 MovieLens users share ~3 400 distinct codes), so the
    resolver memoises results.  Unresolvable codes map to empty strings, which
    the candidate enumerator later treats as "no location available".
    """

    _cache: Dict[str, Tuple[str, str]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self._cache = {}

    def resolve(self, zipcode: str) -> Tuple[str, str]:
        """Return ``(state_code, city)`` for a zip code, empty strings if unknown."""
        if zipcode in self._cache:
            return self._cache[zipcode]
        try:
            zip5 = normalize_zipcode(zipcode)
        except GeoError:
            result = ("", "")
            self._cache[zipcode] = result
            return result
        state = state_for_zip5(zip5)
        if state is None:
            result = ("", "")
        else:
            result = (state.code, _city_within(state, zip5))
        self._cache[zipcode] = result
        return result

    def resolve_state(self, zipcode: str) -> str:
        """The USPS state code of a zip code ('' when unresolvable)."""
        return self.resolve(zipcode)[0]

    def resolve_city(self, zipcode: str) -> str:
        """The city of a zip code ('' when unresolvable)."""
        return self.resolve(zipcode)[1]

    def cache_size(self) -> int:
        """Number of memoised zip resolutions (diagnostics)."""
        return len(self._cache)


def zipcode_for(state_code: str, city_index: int = 0, offset: int = 0) -> str:
    """Return a synthetic 5-digit zip code that resolves to the given state.

    Used by the synthetic dataset generator: it picks the first zip range of
    the state and offsets into it such that the deterministic city assignment
    lands on ``cities[city_index]``.

    Args:
        state_code: USPS code of the target state.
        city_index: index into the state's city list the zip should resolve to.
        offset: additional spread so distinct reviewers get distinct codes.
    """
    state = state_by_code(state_code)
    low, high = state.zip_ranges[0]
    n_cities = max(len(state.cities), 1)
    span = high - low + 1
    base = low + (offset * n_cities) % max(span - n_cities, 1)
    # Walk forward until the modulo hash picks the requested city.
    target = city_index % n_cities
    for candidate in range(base, base + n_cities):
        if candidate <= high and candidate % n_cities == target:
            return f"{candidate:05d}"
    # Fall back to scanning the range start (always succeeds for span >= cities).
    for candidate in range(low, high + 1):
        if candidate % n_cities == target:
            return f"{candidate:05d}"
    raise GeoError(f"cannot synthesise zip code for {state_code}")
