"""Location hierarchy used for drill-down: country ▸ state ▸ city (§2.3).

MapRat's exploration lets a user "drill deeper and view lower level aggregate
statistics — if the original geo condition was over a state, the drill down
provides city level statistics".  The :class:`LocationHierarchy` models that
containment relation and answers the two questions the exploration layer asks:

* which locations are the children of this one (for drill-down), and
* at which level does a given location attribute/value pair sit.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Tuple

from ..errors import GeoError
from .states import ALL_STATE_CODES, state_by_code, states


class LocationLevel(str, Enum):
    """Levels of the geographic hierarchy, from coarsest to finest."""

    COUNTRY = "country"
    STATE = "state"
    CITY = "city"

    def finer(self) -> "LocationLevel":
        """Return the next finer level, raising at the finest."""
        if self is LocationLevel.COUNTRY:
            return LocationLevel.STATE
        if self is LocationLevel.STATE:
            return LocationLevel.CITY
        raise GeoError("city is the finest location level")

    def coarser(self) -> "LocationLevel":
        """Return the next coarser level, raising at the coarsest."""
        if self is LocationLevel.CITY:
            return LocationLevel.STATE
        if self is LocationLevel.STATE:
            return LocationLevel.COUNTRY
        raise GeoError("country is the coarsest location level")


#: Attribute name used by the group layer at each hierarchy level.
LEVEL_ATTRIBUTE: Dict[LocationLevel, str] = {
    LocationLevel.STATE: "state",
    LocationLevel.CITY: "city",
}


class LocationHierarchy:
    """Country ▸ state ▸ city containment relation over the US registry."""

    COUNTRY_NAME = "USA"

    def __init__(self) -> None:
        self._cities_by_state: Dict[str, Tuple[str, ...]] = {
            s.code: s.cities for s in states()
        }
        self._state_by_city: Dict[str, List[str]] = {}
        for code, cities in self._cities_by_state.items():
            for city in cities:
                self._state_by_city.setdefault(city, []).append(code)

    # -- navigation --------------------------------------------------------------

    def children(self, level: LocationLevel, value: str = "") -> Tuple[str, ...]:
        """Return the child locations of ``value`` at the given level.

        ``children(COUNTRY)`` lists all state codes; ``children(STATE, "CA")``
        lists the cities of California.  City has no children.
        """
        if level is LocationLevel.COUNTRY:
            return ALL_STATE_CODES
        if level is LocationLevel.STATE:
            state = state_by_code(value)
            return self._cities_by_state[state.code]
        raise GeoError("cities have no finer drill-down level")

    def parent(self, level: LocationLevel, value: str) -> str:
        """Return the parent location of ``value`` at the given level."""
        if level is LocationLevel.STATE:
            return self.COUNTRY_NAME
        if level is LocationLevel.CITY:
            owners = self._state_by_city.get(value)
            if not owners:
                raise GeoError(f"unknown city {value!r}")
            return owners[0]
        raise GeoError("the country has no parent")

    def cities_of(self, state_code: str) -> Tuple[str, ...]:
        """Cities registered for a state (drill-down targets)."""
        return self.children(LocationLevel.STATE, state_code)

    def states_of_city(self, city: str) -> Tuple[str, ...]:
        """All states that contain a city with this name (names may repeat)."""
        return tuple(self._state_by_city.get(city, ()))

    def level_of_attribute(self, attribute: str) -> LocationLevel:
        """Map a group attribute name to its hierarchy level."""
        for level, name in LEVEL_ATTRIBUTE.items():
            if name == attribute:
                return level
        raise GeoError(f"attribute {attribute!r} is not a location attribute")

    def is_location_attribute(self, attribute: str) -> bool:
        """True when ``attribute`` names a hierarchy level."""
        return attribute in LEVEL_ATTRIBUTE.values()

    def contains(self, state_code: str, city: str) -> bool:
        """True when ``city`` belongs to ``state_code``."""
        return city in self._cities_by_state.get(state_code.upper(), ())
