"""US state registry: codes, names, zip ranges, cities, and map tile positions.

The table below drives three things:

* zip-code resolution (:mod:`repro.geo.zipcodes`) uses the inclusive 5-digit
  zip ranges — these follow the USPS first-three-digit allocation closely
  enough for demographic grouping,
* city drill-down uses the per-state city list (major cities of each state),
* the SVG choropleth uses ``grid_col``/``grid_row``, the conventional
  "tile grid map" layout of the 50 states plus DC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import GeoError


@dataclass(frozen=True)
class State:
    """One US state (or DC) with everything the pipeline needs to know.

    Attributes:
        code: two-letter USPS code.
        name: full state name.
        zip_ranges: inclusive (low, high) 5-digit zip ranges assigned to it.
        cities: major cities, used for deterministic city synthesis/drill-down.
        grid_col: column of the state's tile in the tile-grid US map.
        grid_row: row of the state's tile in the tile-grid US map.
    """

    code: str
    name: str
    zip_ranges: Tuple[Tuple[int, int], ...]
    cities: Tuple[str, ...]
    grid_col: int
    grid_row: int

    def contains_zip(self, zip5: int) -> bool:
        """True when the 5-digit zip integer falls in one of the ranges."""
        return any(low <= zip5 <= high for low, high in self.zip_ranges)


def _s(
    code: str,
    name: str,
    ranges: Sequence[Tuple[int, int]],
    cities: Sequence[str],
    col: int,
    row: int,
) -> State:
    return State(code, name, tuple(ranges), tuple(cities), col, row)


_STATES: List[State] = [
    _s("AL", "Alabama", [(35000, 36999)], ["Birmingham", "Montgomery", "Mobile", "Huntsville"], 6, 6),
    _s("AK", "Alaska", [(99500, 99999)], ["Anchorage", "Fairbanks", "Juneau"], 0, 0),
    _s("AZ", "Arizona", [(85000, 86599)], ["Phoenix", "Tucson", "Mesa", "Flagstaff"], 1, 5),
    _s("AR", "Arkansas", [(71600, 72999)], ["Little Rock", "Fayetteville", "Fort Smith"], 4, 5),
    _s("CA", "California", [(90000, 96199)], ["Los Angeles", "San Francisco", "San Diego", "Sacramento", "San Jose", "Fresno"], 0, 4),
    _s("CO", "Colorado", [(80000, 81699)], ["Denver", "Colorado Springs", "Boulder", "Fort Collins"], 2, 4),
    _s("CT", "Connecticut", [(6000, 6999)], ["Hartford", "New Haven", "Stamford", "Bridgeport"], 9, 3),
    _s("DE", "Delaware", [(19700, 19999)], ["Wilmington", "Dover", "Newark"], 9, 4),
    _s("DC", "District of Columbia", [(20000, 20599)], ["Washington"], 8, 5),
    _s("FL", "Florida", [(32000, 34999)], ["Miami", "Orlando", "Tampa", "Jacksonville", "Tallahassee"], 8, 7),
    _s("GA", "Georgia", [(30000, 31999)], ["Atlanta", "Savannah", "Augusta", "Athens"], 7, 6),
    _s("HI", "Hawaii", [(96700, 96899)], ["Honolulu", "Hilo", "Kailua"], 0, 7),
    _s("ID", "Idaho", [(83200, 83899)], ["Boise", "Idaho Falls", "Pocatello"], 1, 2),
    _s("IL", "Illinois", [(60000, 62999)], ["Chicago", "Springfield", "Peoria", "Naperville"], 5, 2),
    _s("IN", "Indiana", [(46000, 47999)], ["Indianapolis", "Fort Wayne", "Bloomington", "South Bend"], 5, 3),
    _s("IA", "Iowa", [(50000, 52899)], ["Des Moines", "Cedar Rapids", "Iowa City", "Davenport"], 4, 3),
    _s("KS", "Kansas", [(66000, 67999)], ["Wichita", "Topeka", "Kansas City", "Lawrence"], 3, 5),
    _s("KY", "Kentucky", [(40000, 42799)], ["Louisville", "Lexington", "Bowling Green"], 5, 4),
    _s("LA", "Louisiana", [(70000, 71599)], ["New Orleans", "Baton Rouge", "Shreveport", "Lafayette"], 4, 6),
    _s("ME", "Maine", [(3900, 4999)], ["Portland", "Augusta", "Bangor"], 11, 0),
    _s("MD", "Maryland", [(20600, 21999)], ["Baltimore", "Annapolis", "Rockville", "Frederick"], 8, 4),
    _s("MA", "Massachusetts", [(1000, 2799)], ["Boston", "Worcester", "Cambridge", "Springfield"], 10, 2),
    _s("MI", "Michigan", [(48000, 49799)], ["Detroit", "Grand Rapids", "Ann Arbor", "Lansing"], 7, 2),
    _s("MN", "Minnesota", [(55000, 56799)], ["Minneapolis", "Saint Paul", "Duluth", "Rochester"], 4, 2),
    _s("MS", "Mississippi", [(38600, 39799)], ["Jackson", "Gulfport", "Hattiesburg"], 5, 6),
    _s("MO", "Missouri", [(63000, 65899)], ["Kansas City", "Saint Louis", "Springfield", "Columbia"], 4, 4),
    _s("MT", "Montana", [(59000, 59999)], ["Billings", "Missoula", "Bozeman", "Helena"], 2, 2),
    _s("NE", "Nebraska", [(68000, 69399)], ["Omaha", "Lincoln", "Grand Island"], 3, 4),
    _s("NV", "Nevada", [(89000, 89899)], ["Las Vegas", "Reno", "Carson City"], 1, 3),
    _s("NH", "New Hampshire", [(3000, 3899)], ["Manchester", "Concord", "Nashua"], 10, 1),
    _s("NJ", "New Jersey", [(7000, 8999)], ["Newark", "Jersey City", "Trenton", "Princeton"], 9, 2),
    _s("NM", "New Mexico", [(87000, 88499)], ["Albuquerque", "Santa Fe", "Las Cruces"], 2, 5),
    _s("NY", "New York", [(10000, 14999)], ["New York", "Buffalo", "Albany", "Rochester", "Syracuse"], 8, 2),
    _s("NC", "North Carolina", [(27000, 28999)], ["Charlotte", "Raleigh", "Durham", "Greensboro"], 6, 5),
    _s("ND", "North Dakota", [(58000, 58899)], ["Fargo", "Bismarck", "Grand Forks"], 3, 2),
    _s("OH", "Ohio", [(43000, 45999)], ["Columbus", "Cleveland", "Cincinnati", "Dayton"], 6, 3),
    _s("OK", "Oklahoma", [(73000, 74999)], ["Oklahoma City", "Tulsa", "Norman"], 3, 6),
    _s("OR", "Oregon", [(97000, 97999)], ["Portland", "Eugene", "Salem", "Bend"], 0, 3),
    _s("PA", "Pennsylvania", [(15000, 19699)], ["Philadelphia", "Pittsburgh", "Harrisburg", "Allentown"], 8, 3),
    _s("RI", "Rhode Island", [(2800, 2999)], ["Providence", "Warwick", "Newport"], 10, 3),
    _s("SC", "South Carolina", [(29000, 29999)], ["Columbia", "Charleston", "Greenville"], 7, 5),
    _s("SD", "South Dakota", [(57000, 57799)], ["Sioux Falls", "Rapid City", "Pierre"], 3, 3),
    _s("TN", "Tennessee", [(37000, 38599)], ["Nashville", "Memphis", "Knoxville", "Chattanooga"], 5, 5),
    _s("TX", "Texas", [(75000, 79999), (88500, 88599)], ["Houston", "Dallas", "Austin", "San Antonio", "El Paso", "Fort Worth"], 3, 7),
    _s("UT", "Utah", [(84000, 84799)], ["Salt Lake City", "Provo", "Ogden"], 1, 4),
    _s("VT", "Vermont", [(5000, 5999)], ["Burlington", "Montpelier", "Rutland"], 9, 1),
    _s("VA", "Virginia", [(22000, 24699)], ["Virginia Beach", "Richmond", "Arlington", "Norfolk"], 7, 4),
    _s("WA", "Washington", [(98000, 99499)], ["Seattle", "Spokane", "Tacoma", "Olympia"], 0, 2),
    _s("WV", "West Virginia", [(24700, 26899)], ["Charleston", "Morgantown", "Huntington"], 6, 4),
    _s("WI", "Wisconsin", [(53000, 54999)], ["Milwaukee", "Madison", "Green Bay"], 6, 2),
    _s("WY", "Wyoming", [(82000, 83199)], ["Cheyenne", "Casper", "Laramie"], 2, 3),
]

_BY_CODE: Dict[str, State] = {s.code: s for s in _STATES}
_BY_NAME: Dict[str, State] = {s.name.lower(): s for s in _STATES}

#: All state codes in alphabetical order (50 states + DC).
ALL_STATE_CODES: Tuple[str, ...] = tuple(sorted(_BY_CODE))


def states() -> Iterator[State]:
    """Iterate over all states in table order."""
    return iter(_STATES)


def state_by_code(code: str) -> State:
    """Return the state with the given USPS code (case-insensitive)."""
    try:
        return _BY_CODE[code.upper()]
    except KeyError as exc:
        raise GeoError(f"unknown state code {code!r}") from exc


def state_by_name(name: str) -> State:
    """Return the state with the given full name (case-insensitive)."""
    try:
        return _BY_NAME[name.strip().lower()]
    except KeyError as exc:
        raise GeoError(f"unknown state name {name!r}") from exc


def state_for_zip5(zip5: int) -> Optional[State]:
    """Return the state whose zip range contains ``zip5``, or None."""
    for state in _STATES:
        if state.contains_zip(zip5):
            return state
    return None


def grid_dimensions() -> Tuple[int, int]:
    """Return (columns, rows) of the tile-grid map bounding box."""
    cols = max(s.grid_col for s in _STATES) + 1
    rows = max(s.grid_row for s in _STATES) + 1
    return cols, rows
