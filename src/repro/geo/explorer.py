"""GeoExplorer: geo-anchored exploration and mining of rating slices (§2.3).

The third pillar of the paper — geo-visualization — needs more than rendering:
the serving layer must answer *where* questions about any item selection:

* which regions rate this selection, and how (per-region aggregates),
* what lies one level down (country ▸ state ▸ city/zipcode drill-down), and
* *why* a region rates a selection the way it does (geo-anchored mining).

:class:`GeoExplorer` answers all three over the integer-coded columns of a
:class:`~repro.data.storage.RatingSlice`: region membership is already a
factorized cube attribute (``state``/``city``/``zipcode`` codes + vocabulary),
so per-region aggregation is a handful of ``np.bincount`` calls — no Python
loop over rating tuples — and within-region mining reuses the existing
integer-coded kernel with the geo anchor re-pointed one hierarchy level down
(``geo_anchor_attribute="city"``), keeping every returned group map-renderable
inside the region.

Per-region mining fan-out (:meth:`GeoExplorer.explain_top_regions`) shards one
task per region across a :class:`~repro.server.pool.MiningWorkerPool`; results
are gathered in submission order and every region mines with the fixed seed of
its mining configuration, so sharded runs are bit-identical to serial ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..config import GEO_ATTRIBUTE, MiningConfig
from ..core.explanation import Explanation
from ..core.miner import RatingMiner
from ..data.lattice import LatticeHint
from ..data.storage import RatingSlice
from ..errors import EmptyRatingSetError, GeoError
from .hierarchy import LocationHierarchy
from .states import state_by_code

#: Child groupings supported when drilling into one state.
DRILL_ATTRIBUTES = ("city", "zipcode")


@dataclass(frozen=True)
class RegionAggregate:
    """Aggregate rating statistics of one region over one item selection.

    Attributes:
        region: region value (a USPS state code, a city name, or a zip code).
        level: hierarchy level of the region (``state``/``city``/``zipcode``).
        size: number of rating tuples from the region.
        average: the region's average rating (drives choropleth shading).
        share_positive: fraction of ratings ≥ 4.
        share_negative: fraction of ratings ≤ 2.
        lift: region average minus the whole selection's average.
        histogram: count of ratings per integer score.
    """

    region: str
    level: str
    size: int
    average: float
    share_positive: float
    share_negative: float
    lift: float
    histogram: Mapping[int, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """The aggregate as a JSON-ready dict."""
        return {
            "region": self.region,
            "level": self.level,
            "size": self.size,
            "average": self.average,
            "share_positive": self.share_positive,
            "share_negative": self.share_negative,
            "lift": self.lift,
            "histogram": {str(k): v for k, v in sorted(self.histogram.items())},
        }


@dataclass(frozen=True)
class GeoMiningResult:
    """The answer to "why does region X rate this selection the way it does".

    Wraps the within-region SM + DM interpretations together with the region's
    aggregate and the whole-selection baseline it deviates from.

    Attributes:
        region: the anchoring region (a USPS state code).
        level: hierarchy level of the region (currently always ``state``).
        description: human-readable description of the item selection.
        region_stats: aggregate statistics of the region's ratings.
        baseline_average: average rating of the *whole* selection (all
            regions), the number the region's ``lift`` is measured against.
        similarity: within-region Similarity Mining interpretation.
        diversity: within-region Diversity Mining interpretation.
        config: the (region-adapted) mining configuration used.
        elapsed_seconds: wall-clock mining time.
    """

    region: str
    level: str
    description: str
    region_stats: RegionAggregate
    baseline_average: float
    similarity: Explanation
    diversity: Explanation
    config: MiningConfig
    elapsed_seconds: float = 0.0

    def explanation_for(self, task: str) -> Explanation:
        """The ``similarity`` or ``diversity`` explanation by task name."""
        if task == "similarity":
            return self.similarity
        if task == "diversity":
            return self.diversity
        raise KeyError(f"unknown mining task {task!r}")

    def to_dict(self) -> Dict[str, object]:
        """The result as a JSON-ready dict (the ``geo_explain`` payload)."""
        return {
            "region": self.region,
            "level": self.level,
            "description": self.description,
            "region_stats": self.region_stats.to_dict(),
            "baseline_average": self.baseline_average,
            "similarity": self.similarity.to_dict(),
            "diversity": self.diversity.to_dict(),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "config": {
                "max_groups": self.config.max_groups,
                "min_coverage": self.config.min_coverage,
                "geo_anchor_attribute": self.config.geo_anchor_attribute,
                "grouping_attributes": list(self.config.grouping_attributes),
            },
        }


def region_mining_config(config: MiningConfig) -> MiningConfig:
    """Adapt a mining configuration for within-region (single state) mining.

    The ``state`` attribute is constant inside a region, so it is replaced by
    ``city`` among the grouping attributes and the geo anchor is re-pointed at
    the city level; groups mined within a state therefore stay geographically
    anchored one hierarchy level down, as §2.3's drill-down prescribes.
    """
    attributes = tuple(
        dict.fromkeys(
            ("city" if name == GEO_ATTRIBUTE else name)
            for name in config.grouping_attributes
        )
    )
    if "city" not in attributes:
        attributes = attributes + ("city",)
    return config.with_overrides(
        grouping_attributes=attributes, geo_anchor_attribute="city"
    )


def _aggregates_from_arrays(
    vocabulary: np.ndarray,
    counts: np.ndarray,
    sums: np.ndarray,
    positives: np.ndarray,
    negatives: np.ndarray,
    joint: np.ndarray,
    overall: float,
    level: str,
    min_size: int,
) -> List[RegionAggregate]:
    """Materialise :class:`RegionAggregate` rows from per-value bincount arrays.

    The one implementation shared by the per-request slice path and the
    maintained :class:`~repro.data.storage.AttributeIndex` fast path, so the
    two can never drift: regions ordered by size (largest first, ties
    alphabetical), empty-string regions (unresolvable locations) skipped.
    """
    aggregates: List[RegionAggregate] = []
    for code in np.flatnonzero(counts >= max(min_size, 1)).tolist():
        region = str(vocabulary[code])
        if not region:
            continue  # unresolvable location
        size = int(counts[code])
        mean = float(sums[code]) / size
        histogram = {
            score + 1: int(joint[code * 5 + score])
            for score in range(5)
            if joint[code * 5 + score]
        }
        aggregates.append(
            RegionAggregate(
                region=region,
                level=level,
                size=size,
                average=round(mean, 4),
                share_positive=round(float(positives[code]) / size, 4),
                share_negative=round(float(negatives[code]) / size, 4),
                lift=round(mean - overall, 4),
                histogram=histogram,
            )
        )
    aggregates.sort(key=lambda agg: (-agg.size, agg.region))
    return aggregates


def is_country(region: Optional[str]) -> bool:
    """True when ``region`` names the whole country (``None``/empty/``USA``).

    The single country-detection predicate shared by
    :meth:`GeoExplorer.drilldown` and the serving layer's payload labelling
    and cache keys, so the two can never drift.
    """
    return region is None or str(region).strip().upper() in (
        "",
        LocationHierarchy.COUNTRY_NAME,
    )


def canonical_region(region: str) -> str:
    """Validate and canonicalise a state-code region (raises :class:`GeoError`)."""
    code = str(region).strip().upper()
    if not code:
        raise GeoError("region must be a two-letter USPS state code")
    state_by_code(code)  # raises GeoError for unknown codes
    return code


class GeoExplorer:
    """Geo-anchored aggregation, drill-down and mining over a rating store."""

    def __init__(
        self,
        miner: RatingMiner,
        hierarchy: Optional[LocationHierarchy] = None,
    ) -> None:
        self.miner = miner
        self.store = miner.store
        self.hierarchy = hierarchy or LocationHierarchy()

    # -- slicing -----------------------------------------------------------------

    def slice_for(
        self,
        item_ids: Optional[Sequence[int]] = None,
        time_interval: Optional[Tuple[int, int]] = None,
    ) -> RatingSlice:
        """The rating slice of an item selection (``None``: the whole store)."""
        if item_ids is None:
            rating_slice = self.store.slice_all()
            if time_interval is not None:
                rating_slice = rating_slice.restrict_to_interval(*time_interval)
            if rating_slice.is_empty():
                raise EmptyRatingSetError("the store holds no rating tuples")
            return rating_slice
        return self.store.slice_for_items(item_ids, time_interval=time_interval)

    # -- aggregation -------------------------------------------------------------

    def aggregate_by(
        self,
        rating_slice: RatingSlice,
        attribute: str,
        level: str,
        min_size: int = 1,
    ) -> List[RegionAggregate]:
        """Per-region aggregates of a slice, grouped by one factorized column.

        One ``np.bincount`` per statistic over the attribute's integer codes —
        every region's count, sum, positive/negative shares and score
        histogram fall out of five vectorised passes, never a Python loop
        over rating tuples.  Regions are ordered by size (largest first),
        ties broken alphabetically; empty-string regions (reviewers without a
        resolvable location) are skipped.
        """
        if rating_slice.is_empty():
            return []
        codes = rating_slice.codes_for(attribute)
        vocabulary = rating_slice.vocabulary(attribute)
        scores = rating_slice.scores
        n_values = int(vocabulary.shape[0])
        counts = np.bincount(codes, minlength=n_values)
        sums = np.bincount(codes, weights=scores, minlength=n_values)
        positives = np.bincount(codes, weights=(scores >= 4), minlength=n_values)
        negatives = np.bincount(codes, weights=(scores <= 2), minlength=n_values)
        # Joint (region, score) histogram in one pass: code * 5 + (score - 1).
        bins = np.clip(np.rint(scores).astype(np.int64), 1, 5) - 1
        joint = np.bincount(codes * 5 + bins, minlength=n_values * 5)
        overall = float(scores.mean())
        return _aggregates_from_arrays(
            vocabulary, counts, sums, positives, negatives, joint,
            overall, level, min_size,
        )

    def summary(
        self,
        item_ids: Optional[Sequence[int]] = None,
        time_interval: Optional[Tuple[int, int]] = None,
        min_size: int = 1,
    ) -> List[RegionAggregate]:
        """State-level aggregates of an item selection (the country view).

        The whole-store view (``item_ids=None``, no interval) answers from
        the store's maintained :class:`~repro.data.storage.AttributeIndex` —
        no row is gathered or rescanned, and compactions keep the index
        current via delta bincounts.  Both paths build rows through
        :func:`_aggregates_from_arrays`, so their outputs are identical.
        """
        if item_ids is None and time_interval is None and len(self.store):
            index = self.store.attribute_index(GEO_ATTRIBUTE)
            return _aggregates_from_arrays(
                self.store.vocabulary_for(GEO_ATTRIBUTE),
                index.counts,
                index.sums,
                index.positives,
                index.negatives,
                index.joint,
                self.store.global_average(),
                "state",
                min_size,
            )
        rating_slice = self.slice_for(item_ids, time_interval)
        return self.aggregate_by(rating_slice, GEO_ATTRIBUTE, "state", min_size)

    def drilldown(
        self,
        region: Optional[str] = None,
        by: str = "city",
        item_ids: Optional[Sequence[int]] = None,
        time_interval: Optional[Tuple[int, int]] = None,
        min_size: int = 1,
    ) -> List[RegionAggregate]:
        """Child-region aggregates one hierarchy level below ``region``.

        ``region=None`` (or ``"USA"``) drills the country into states;
        a state code drills into its cities (``by="city"``, the default) or
        zip codes (``by="zipcode"``).  Unknown state codes raise
        :class:`~repro.errors.GeoError`; a known region with no ratings in
        the selection returns an empty list.
        """
        if by not in DRILL_ATTRIBUTES:
            raise GeoError(
                f"unsupported drill attribute {by!r}; expected one of {DRILL_ATTRIBUTES}"
            )
        if is_country(region):
            return self.summary(item_ids, time_interval, min_size)
        code = canonical_region(region)
        region_slice = self._region_slice(code, item_ids, time_interval)
        if region_slice is None:
            return []
        return self.aggregate_by(region_slice, by, by, min_size)

    def _region_slice(
        self,
        code: str,
        item_ids: Optional[Sequence[int]],
        time_interval: Optional[Tuple[int, int]],
    ) -> Optional[RatingSlice]:
        """The slice of one state's tuples within a selection (None: no rows).

        For the whole-store view the region's row positions come straight
        from the maintained attribute index's packed bitset — only the
        region's rows are ever gathered.  Explicit selections restrict their
        slice by the state mask, exactly as before; both produce the same
        rows in the same (ascending-position) order.
        """
        if item_ids is None and time_interval is None and len(self.store):
            index = self.store.attribute_index(GEO_ATTRIBUTE)
            vocabulary = self.store.vocabulary_for(GEO_ATTRIBUTE)
            slot = int(np.searchsorted(vocabulary, code))
            if slot >= vocabulary.shape[0] or vocabulary[slot] != code:
                return None
            positions = index.positions_for(slot)
            if positions.shape[0] == 0:
                return None
            region_slice = self.store.slice_rows(positions)
            lattice = self.store.lattice()
            if lattice is not None:
                # Region-restricted lattice mode: within-region candidates are
                # cells of the cuboid extended by the state attribute, masked
                # on this state's code — the enumerator maps their store rows
                # onto this slice via ``positions`` (one searchsorted).
                region_slice.lattice_hint = LatticeHint(
                    lattice,
                    restrict_attribute=GEO_ATTRIBUTE,
                    restrict_code=slot,
                    store_positions=positions,
                )
            return region_slice
        rating_slice = self.slice_for(item_ids, time_interval)
        mask = rating_slice.mask_for(GEO_ATTRIBUTE, code)
        if not mask.any():
            return None
        return rating_slice.restrict(mask)

    def top_regions(
        self,
        item_ids: Optional[Sequence[int]] = None,
        limit: int = 5,
        time_interval: Optional[Tuple[int, int]] = None,
    ) -> List[str]:
        """The ``limit`` most-rated state codes of a selection, largest first."""
        return [agg.region for agg in self.summary(item_ids, time_interval)[:limit]]

    # -- geo-anchored mining -------------------------------------------------------

    def explain_region(
        self,
        item_ids: Optional[Sequence[int]],
        region: str,
        description: str = "",
        time_interval: Optional[Tuple[int, int]] = None,
        config: Optional[MiningConfig] = None,
        pool=None,
    ) -> GeoMiningResult:
        """Mine *why* one region rates an item selection the way it does.

        Restricts the selection's rating slice to the region's tuples, then
        runs SM + DM through the integer-coded kernel with the geo anchor
        re-pointed at the city level (see :func:`region_mining_config`), so
        the interpretations describe the region's internal structure and stay
        renderable one hierarchy level down.  The two mining tasks run
        concurrently when ``pool`` is parallel; each seeds its own generator
        from the config seed, so results are bit-identical to the serial path.
        """
        started_at = time.perf_counter()
        code = canonical_region(region)
        base_config = config or self.miner.config
        if item_ids is None and time_interval is None and len(self.store):
            # Whole-store view: region rows come from the maintained bitset
            # index and the baseline from the store's running average — no
            # full-store gather on this path.
            region_slice = self._region_slice(code, None, None)
            baseline = self.store.global_average()
        else:
            rating_slice = self.slice_for(item_ids, time_interval)
            mask = rating_slice.mask_for(GEO_ATTRIBUTE, code)
            region_slice = rating_slice.restrict(mask) if mask.any() else None
            baseline = float(rating_slice.scores.mean())
        if region_slice is None:
            raise EmptyRatingSetError(
                f"region {code!r} has no ratings for this selection"
            )
        region_config = region_mining_config(base_config)
        if pool is not None and getattr(pool, "kind", "thread") in (
            "process",
            "sharded",
            "fleet",
        ):
            # Process backend: the two region minings are shipped as spec
            # tuples; each worker rebuilds the identical region slice from
            # the epoch's shared-memory snapshot (same whole-store bitset
            # fast path, same mask path) and mines with the already-adapted
            # region configuration.  The sharded backend scatters the
            # region's cube enumeration over its data shards instead (with
            # a region-partitioned scheme the region lives on one shard)
            # and solves over the merged candidates — same results either
            # way, bit for bit.
            similarity, diversity = pool.mine_pair(
                self.store.epoch,
                item_ids,
                time_interval,
                region_config,
                region=code,
            )
        elif pool is not None and getattr(pool, "parallel", False):
            similarity_future = pool.submit(
                self.miner.mine_similarity, region_slice, region_config
            )
            diversity_future = pool.submit(
                self.miner.mine_diversity, region_slice, region_config
            )
            similarity = pool.gather(similarity_future)
            diversity = pool.gather(diversity_future)
        else:
            similarity = self.miner.mine_similarity(region_slice, region_config)
            diversity = self.miner.mine_diversity(region_slice, region_config)
        stats = self._region_stats(code, region_slice, baseline)
        return GeoMiningResult(
            region=code,
            level="state",
            description=description or f"{code} view",
            region_stats=stats,
            baseline_average=round(baseline, 4),
            similarity=similarity,
            diversity=diversity,
            config=region_config,
            elapsed_seconds=time.perf_counter() - started_at,
        )

    def explain_top_regions(
        self,
        item_ids: Optional[Sequence[int]] = None,
        limit: int = 3,
        description: str = "",
        time_interval: Optional[Tuple[int, int]] = None,
        config: Optional[MiningConfig] = None,
        pool=None,
    ) -> List[GeoMiningResult]:
        """Per-region mining fan-out over the most-rated regions.

        One task per region shards across ``pool`` (submission-ordered
        gathering, fixed per-config seeds), so ``workers=1`` and
        ``workers=N`` produce bit-identical result lists.  Each region task
        runs its inner SM/DM serially — nested submission to the same thread
        pool could exhaust it and deadlock.  A process pool receives one
        full ``explain_region`` spec per region; its workers compute the
        whole :class:`GeoMiningResult` (stats, baseline, SM + DM) from the
        epoch's shared snapshot, so the fan-out runs on every core.
        """
        regions = self.top_regions(item_ids, limit=limit, time_interval=time_interval)
        base_config = config or self.miner.config
        if pool is not None and getattr(pool, "kind", "thread") == "process":
            return pool.explain_regions(
                self.store.epoch,
                item_ids,
                [canonical_region(region) for region in regions],
                description,
                time_interval,
                base_config,
            )
        if pool is not None and getattr(pool, "kind", "thread") in (
            "sharded",
            "fleet",
        ):
            # Sharded backend: each region explanation is itself one
            # scatter-gather round over the data shards, so the fan-out
            # stays a simple loop here — the parallelism lives inside
            # each explain_region call.
            return [
                self.explain_region(
                    item_ids,
                    region,
                    description=description,
                    time_interval=time_interval,
                    config=config,
                    pool=pool,
                )
                for region in regions
            ]

        def explain_one(region: str) -> GeoMiningResult:
            return self.explain_region(
                item_ids,
                region,
                description=description,
                time_interval=time_interval,
                config=config,
                pool=None,
            )

        if pool is not None and getattr(pool, "parallel", False):
            return pool.map(explain_one, regions)
        return [explain_one(region) for region in regions]

    # -- internals ------------------------------------------------------------------

    def _region_stats(
        self, region: str, region_slice: RatingSlice, baseline: float
    ) -> RegionAggregate:
        scores = region_slice.scores
        size = int(scores.shape[0])
        mean = float(scores.mean())
        histogram: Dict[int, int] = {}
        for value, count in zip(
            *np.unique(np.clip(np.rint(scores).astype(np.int64), 1, 5), return_counts=True)
        ):
            histogram[int(value)] = int(count)
        return RegionAggregate(
            region=region,
            level="state",
            size=size,
            average=round(mean, 4),
            share_positive=round(float((scores >= 4).mean()), 4),
            share_negative=round(float((scores <= 2).mean()), 4),
            lift=round(mean - baseline, 4),
            histogram=histogram,
        )
