"""Geography substrate: states, zip-code resolution and the location hierarchy.

MapRat anchors every explanation on a geographic condition so it can be drawn
on a map (§2.3).  The demo derives the reviewer's state (and, for drill-down,
city) from the MovieLens zip code.  This package provides that resolution
offline: a USPS-style zip-range → state table, deterministic city synthesis
within a state, the country ▸ state ▸ city hierarchy used by drill-down, and
the tile-grid layout of the 50 states + DC used by the SVG choropleth.
"""

from .states import ALL_STATE_CODES, State, state_by_code, state_by_name, states
from .zipcodes import ZipResolver, city_for_zipcode, state_for_zipcode
from .hierarchy import LocationHierarchy, LocationLevel

__all__ = [
    "ALL_STATE_CODES",
    "State",
    "state_by_code",
    "state_by_name",
    "states",
    "ZipResolver",
    "city_for_zipcode",
    "state_for_zipcode",
    "LocationHierarchy",
    "LocationLevel",
]
