"""Geography substrate and the geo-anchored exploration layer.

MapRat anchors every explanation on a geographic condition so it can be drawn
on a map (§2.3).  The demo derives the reviewer's state (and, for drill-down,
city) from the MovieLens zip code.  This package provides that resolution
offline plus the serving-side geo surface:

* :mod:`repro.geo.states` — a USPS-style zip-range → state table, per-state
  city lists and the tile-grid layout of the 50 states + DC,
* :mod:`repro.geo.zipcodes` — zip normalisation, deterministic (state, city)
  resolution and synthetic zip generation,
* :mod:`repro.geo.hierarchy` — the country ▸ state ▸ city containment
  relation that drill-down navigates,
* :mod:`repro.geo.explorer` — :class:`GeoExplorer`, the geo-anchored
  aggregation / drill-down / mining engine behind the ``geo_*`` endpoints
  (see ``docs/API.md``).
"""

from .states import ALL_STATE_CODES, State, state_by_code, state_by_name, states
from .zipcodes import (
    ZipResolver,
    city_for_zipcode,
    normalize_zipcode,
    state_for_zipcode,
    zipcode_for,
)
from .hierarchy import LEVEL_ATTRIBUTE, LocationHierarchy, LocationLevel
from .explorer import (
    GeoExplorer,
    GeoMiningResult,
    RegionAggregate,
    canonical_region,
    is_country,
    region_mining_config,
)

__all__ = [
    "ALL_STATE_CODES",
    "State",
    "state_by_code",
    "state_by_name",
    "states",
    "ZipResolver",
    "city_for_zipcode",
    "normalize_zipcode",
    "state_for_zipcode",
    "zipcode_for",
    "LEVEL_ATTRIBUTE",
    "LocationHierarchy",
    "LocationLevel",
    "GeoExplorer",
    "GeoMiningResult",
    "RegionAggregate",
    "canonical_region",
    "is_country",
    "region_mining_config",
]
