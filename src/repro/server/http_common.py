"""Transport-agnostic request routing shared by the sync and async HTTP edges.

Both front doors — the threaded stdlib server in :mod:`repro.server.app` and
the asyncio production tier in :mod:`repro.server.asyncapi` — used to be one
``BaseHTTPRequestHandler`` with four long-standing bugs: unexpected
exceptions dropped the connection without a response, a malformed
``Content-Length`` header killed the socket instead of answering 400, numpy
scalars anywhere in a payload crashed JSON serialisation, and the handler
spoke HTTP/1.0 so every request paid a fresh TCP connection.  This module
fixes them **once**, in one place both edges share:

* :class:`HttpRequest` / :class:`HttpResponse` — the plain-data contract
  between a transport (which owns sockets and header parsing) and the
  router (which owns everything else),
* :func:`parse_content_length` — malformed lengths → 400, hostile lengths →
  413, before a single body byte is buffered,
* :class:`MapRatJsonEncoder` — numpy scalars/arrays (and bytes, and
  non-finite floats) serialise instead of raising ``TypeError``,
* :class:`RequestRouter` — routing, API-key auth (401), per-endpoint token
  buckets (429 + ``Retry-After``), bounded admission (503), the JSON error
  mapping, and a **catch-all** that turns any unexpected exception into a
  sanitized JSON 500 with the traceback logged server-side.  No request can
  ever terminate without an HTTP response.

The router calls :meth:`~repro.server.api.JsonApi.dispatch` unchanged, so
the golden corpus replays byte-identically through either edge.
"""

from __future__ import annotations

import hmac
import json
import logging
import math
import platform
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlparse
from xml.sax.saxutils import escape

import numpy as np

from ..errors import MapRatError, ServerError
from ..version import PAPER, __version__
from .metrics import AdmissionGate, HttpMetrics, TokenBucket, render_metrics

logger = logging.getLogger("repro.server.http")

#: Endpoints that mutate or persist state; API-key auth (when configured)
#: applies to exactly these.
WRITE_ENDPOINTS = frozenset({"ingest", "ingest_batch", "compact", "snapshot"})

#: Routes answered without touching the admission gate or the executor —
#: the system must stay observable under the very overload the gate sheds.
OPS_PATHS = frozenset({"/health", "/version", "/metrics"})

_LANDING_TEMPLATE = """<!DOCTYPE html>
<html><head><meta charset="utf-8"/><title>MapRat</title>
<style>body{{font-family:Helvetica,Arial,sans-serif;margin:32px;max-width:720px}}
input,select{{font-size:14px;padding:4px}}</style></head>
<body>
<h1>MapRat</h1>
<p>Meaningful explanation, interactive exploration and geo-visualization of
collaborative ratings.</p>
<form action="/explain" method="get">
  <input name="q" size="48" placeholder='title:&quot;Toy Story&quot; or genre:Thriller AND director:&quot;Steven Spielberg&quot;"/>
  <button type="submit">Explain Ratings</button>
</form>
<h2>Dataset</h2>
<pre>{summary}</pre>
<h2>Endpoints</h2>
<ul>
<li><code>/explain?q=…</code> — explanation report (Figure 2)</li>
<li><code>/explore?q=…&amp;task=similarity&amp;group=0</code> — exploration report (Figure 3)</li>
<li><code>/choropleth?q=…&amp;task=similarity</code> — the Figure-2 map as SVG</li>
<li><code>/api/explain?q=…</code>, <code>/api/drilldown?…</code>, <code>/api/timeline?…</code> — JSON API</li>
<li><code>/api/geo_summary</code>, <code>/api/geo_drilldown?region=CA</code>,
    <code>/api/geo_explain?q=…&amp;region=CA</code> — geo-visualization API</li>
<li><code>POST /api/ingest</code>, <code>POST /api/ingest_batch</code>,
    <code>/api/store_stats</code>, <code>/api/compact</code> — live ingestion API</li>
<li><code>/health</code>, <code>/version</code>, <code>/metrics</code> — ops endpoints</li>
</ul>
</body></html>
"""


class MapRatJsonEncoder(json.JSONEncoder):
    """JSON encoder that serialises the numpy types the kernels emit.

    The mining kernels operate on int32 code columns, float64 accumulators
    and packed uint8 bitsets; a handler that forgets one ``int(...)`` used to
    crash ``json.dumps`` with ``TypeError`` — which the old edge turned into
    a dropped connection.  Conversions (the lcc-server frontend-encoder
    idiom): ``np.integer`` → ``int``, ``np.floating`` → ``float`` (non-finite
    → ``null``, which bare ``json.dumps`` would emit as invalid JSON),
    ``np.bool_`` → ``bool``, ``np.ndarray`` → nested lists, ``bytes`` →
    UTF-8 text.
    """

    def default(self, obj):
        """Convert one non-JSON-native object; defers to the base otherwise."""
        if isinstance(obj, np.bool_):
            return bool(obj)
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            value = float(obj)
            return value if math.isfinite(value) else None
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if isinstance(obj, bytes):
            return obj.decode("utf-8", "replace")
        return super().default(obj)


def _sanitize(payload):
    """Null out non-finite floats anywhere in a payload tree.

    ``np.float64`` (and plain ``float``) NaN/Inf never reach the encoder's
    ``default`` hook — ``json.dumps`` serialises float subclasses natively as
    the *invalid* JSON tokens ``NaN``/``Infinity``.  Arrays are expanded here
    for the same reason: ``tolist()`` output would re-introduce raw floats.
    """
    if isinstance(payload, dict):
        return {key: _sanitize(value) for key, value in payload.items()}
    if isinstance(payload, (list, tuple)):
        return [_sanitize(value) for value in payload]
    if isinstance(payload, np.ndarray):
        return _sanitize(payload.tolist())
    if isinstance(payload, float) and not math.isfinite(payload):
        return None
    return payload


def json_dumps(payload) -> str:
    """Serialise a response payload: numpy-aware, strictly valid JSON."""
    return json.dumps(_sanitize(payload), cls=MapRatJsonEncoder)


def parse_content_length(raw: Optional[str], limit: int) -> int:
    """Validate a ``Content-Length`` header before any body byte is read.

    Returns the number of body bytes to read (0 when the header is absent or
    empty).  A non-integer or negative value raises a 400
    :class:`~repro.errors.ServerError` — the old edge let the ``ValueError``
    escape and dropped the connection.  A value over ``limit`` raises 413 so
    a hostile length can never make the server buffer unbounded bytes
    (``limit=0`` disables the cap).
    """
    if raw is None or not str(raw).strip():
        return 0
    try:
        length = int(str(raw).strip())
    except ValueError as exc:
        raise ServerError(
            f"malformed Content-Length header: {str(raw).strip()!r}", status=400
        ) from exc
    if length < 0:
        raise ServerError(
            f"malformed Content-Length header: {length}", status=400
        )
    if limit and length > limit:
        raise ServerError(
            f"request body of {length} bytes exceeds the "
            f"{limit}-byte limit",
            status=413,
        )
    return length


@dataclass
class HttpRequest:
    """One parsed request as handed from a transport to the router.

    ``target`` is the raw request target (path + optional query string);
    ``headers`` maps **lower-cased** header names to values; ``body`` holds
    the already-read (and already length-validated) request body.
    """

    method: str
    target: str
    headers: Mapping[str, str] = field(default_factory=dict)
    body: bytes = b""


@dataclass
class HttpResponse:
    """One response as handed from the router back to a transport.

    ``headers`` carries extra headers (``Retry-After``, ``WWW-Authenticate``);
    the transport adds ``Content-Type``/``Content-Length`` itself.  ``close``
    asks the transport to drop the connection after writing — set when the
    request body was not (fully) consumed, so the socket cannot be reused.
    """

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Tuple[Tuple[str, str], ...] = ()
    close: bool = False


def _json_response(status: int, payload, **kwargs) -> HttpResponse:
    return HttpResponse(
        status=status,
        body=json_dumps(payload).encode("utf-8"),
        content_type="application/json; charset=utf-8",
        **kwargs,
    )


class RequestRouter:
    """The one request-routing / error-mapping core behind both HTTP edges.

    A transport parses the request line, headers and body off its socket,
    builds an :class:`HttpRequest` and calls :meth:`respond` (sync edge) or
    the :meth:`ops_response` → admission → :meth:`handle` split (async edge,
    which must shed load *before* queueing work onto its executor).  The
    router owns everything else: HTML and JSON routing, the ops endpoints,
    auth, rate limiting, admission accounting, metrics, JSON encoding and
    the error mapping — including the catch-all that guarantees every
    request gets *some* HTTP response.

    Args:
        system: the :class:`~repro.server.api.MapRat` façade to serve.
        api: the :class:`~repro.server.api.JsonApi` whose ``dispatch`` is
            reused unchanged (golden-corpus byte-identity depends on it).
        config: the :class:`~repro.config.ServerConfig` supplying
            ``max_body_bytes``, ``max_inflight``, ``rate_limits`` and
            ``api_keys``.
        edge: label of the owning transport (``"sync"``/``"async"``),
            reported by ``/version`` and ``/metrics``.
    """

    def __init__(self, system, api, config, edge: str = "sync") -> None:
        self.system = system
        self.api = api
        self.config = config
        self.edge = edge
        self.metrics = HttpMetrics()
        self.admission = AdmissionGate(config.max_inflight)
        self.max_body_bytes = config.max_body_bytes
        self._api_keys = tuple(config.api_keys)
        limits = dict(config.rate_limits)
        self._default_rate = limits.pop("*", None)
        self._buckets: Dict[str, TokenBucket] = {
            endpoint: TokenBucket(rate) for endpoint, rate in limits.items()
        }
        self._bucket_lock = threading.Lock()

    # -- transport-facing entry points ------------------------------------------------

    def respond(self, request: HttpRequest) -> HttpResponse:
        """Full pipeline for transports that run each request on its own
        thread: ops fast path, admission gate, then :meth:`handle`."""
        ops = self.ops_response(request)
        if ops is not None:
            return ops
        if not self.admission.try_acquire():
            return self.overloaded_response(request)
        try:
            return self.handle(request)
        finally:
            self.admission.release()

    def ops_response(self, request: HttpRequest) -> Optional[HttpResponse]:
        """Answer ``/health``/``/version``/``/metrics`` or return ``None``.

        Ops routes bypass the admission gate and (on the async edge) the
        executor: they must answer even when the gate is shedding load.
        """
        path = urlparse(request.target).path
        if path not in OPS_PATHS:
            return None
        started = time.perf_counter()
        if path == "/health":
            serving = self.system.serving
            response = _json_response(
                200,
                {
                    "status": "ok",
                    "epoch": serving.epoch,
                    "rows": len(serving.store),
                    "inflight": self.admission.inflight,
                },
            )
        elif path == "/version":
            response = _json_response(
                200,
                {
                    "version": __version__,
                    "paper": PAPER,
                    "python": platform.python_version(),
                    "http_backend": self.edge,
                    "mining_backend": self.config.mining_backend,
                },
            )
        else:  # /metrics
            response = HttpResponse(
                status=200,
                body=render_metrics(self.system, self.metrics, self.edge).encode(
                    "utf-8"
                ),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        self.metrics.observe(
            request.method, path, response.status, time.perf_counter() - started
        )
        return response

    def overloaded_response(self, request: HttpRequest) -> HttpResponse:
        """The 503 issued when the admission gate refuses a request."""
        self.metrics.record_load_shed()
        response = _json_response(
            503,
            {
                "error": "server overloaded: "
                f"{self.admission.limit} requests already in flight"
            },
            headers=(("Retry-After", "1"),),
        )
        self.metrics.observe(
            request.method, self._route_label(request.target), 503, 0.0
        )
        return response

    def reject(self, target: str, exc: ServerError, close: bool = False) -> HttpResponse:
        """Error response for a transport-level rejection (bad/oversized
        ``Content-Length``), recorded in the metrics like any response."""
        response = _json_response(exc.status, {"error": str(exc)}, close=close)
        self.metrics.observe("POST", self._route_label(target), exc.status, 0.0)
        return response

    # -- the guarded request pipeline --------------------------------------------------

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Route one admitted request; **always** returns a response.

        The error mapping both edges rely on, in order: ``ServerError``
        keeps its status, any other :class:`~repro.errors.MapRatError` is a
        400, and *anything else* — the bug class that used to print a
        traceback into the server log and drop the TCP connection — becomes
        a sanitized JSON 500 with the traceback logged server-side.
        Serialisation runs inside the guard, so a payload the encoder cannot
        handle still produces a clean 500, never a dead socket.
        """
        started = time.perf_counter()
        route = self._route_label(request.target)
        try:
            response = self._route(request)
        except ServerError as exc:
            response = _json_response(exc.status, {"error": str(exc)})
        except MapRatError as exc:
            response = _json_response(400, {"error": str(exc)})
        except Exception:
            logger.exception(
                "unhandled error serving %s %s", request.method, request.target
            )
            response = _json_response(500, {"error": "internal server error"})
        self.metrics.observe(
            request.method, route, response.status, time.perf_counter() - started
        )
        return response

    # -- routing -----------------------------------------------------------------------

    def _route_label(self, target: str) -> str:
        """Low-cardinality metrics label for one request target."""
        path = urlparse(target).path
        if path.startswith("/api/"):
            endpoint = path[len("/api/"):]
            return endpoint if endpoint in self.api.routes() else "<unmatched>"
        if path in ("/", "/index.html", "/explain", "/explore", "/choropleth"):
            return path
        if path in OPS_PATHS:
            return path
        return "<unmatched>"

    @staticmethod
    def _query_params(parsed) -> dict:
        """First value of each query parameter (repeats keep the first)."""
        return {key: values[0] for key, values in parse_qs(parsed.query).items()}

    def _route(self, request: HttpRequest) -> HttpResponse:
        parsed = urlparse(request.target)
        params = self._query_params(parsed)
        if request.method == "POST":
            return self._route_post(parsed, params, request)
        return self._route_get(parsed, params, request)

    def _route_get(self, parsed, params: dict, request: HttpRequest) -> HttpResponse:
        path = parsed.path
        if path in ("/", "/index.html"):
            return self._html(self._landing_page())
        if path == "/explain":
            query = params.get("q", "")
            if not query:
                raise ServerError("missing required parameter 'q'", status=400)
            return self._html(self.system.explanation_html(query))
        if path == "/explore":
            query = params.get("q", "")
            if not query:
                raise ServerError("missing required parameter 'q'", status=400)
            task = params.get("task", "similarity")
            try:
                group = int(params.get("group", "0"))
            except ValueError:
                raise ServerError("parameter 'group' must be an integer", status=400)
            return self._html(
                self.system.exploration_html(query, task=task, group_index=group)
            )
        if path == "/choropleth":
            query = params.get("q", "")
            if not query:
                raise ServerError("missing required parameter 'q'", status=400)
            payload = self.api.dispatch("choropleth", params)
            return HttpResponse(
                status=200,
                body=payload["svg"].encode("utf-8"),
                content_type="image/svg+xml; charset=utf-8",
            )
        if path.startswith("/api/"):
            return self._dispatch_api(parsed, params, request)
        raise ServerError(f"unknown path {path!r}", status=404)

    def _route_post(self, parsed, params: dict, request: HttpRequest) -> HttpResponse:
        if not parsed.path.startswith("/api/"):
            raise ServerError(f"unknown path {parsed.path!r}", status=404)
        if request.body:
            try:
                body = json.loads(request.body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServerError(
                    f"request body must be a JSON object: {exc}", status=400
                ) from exc
            if not isinstance(body, dict):
                raise ServerError("request body must be a JSON object", status=400)
            params.update(body)
        return self._dispatch_api(parsed, params, request)

    def _dispatch_api(self, parsed, params: dict, request: HttpRequest) -> HttpResponse:
        """One ``/api/<endpoint>`` request: auth → rate limit → dispatch."""
        endpoint = parsed.path[len("/api/"):]
        self._check_api_key(endpoint, request)
        retry_after = self._check_rate_limit(endpoint)
        if retry_after is not None:
            self.metrics.record_rate_limited(endpoint)
            return _json_response(
                429,
                {"error": f"rate limit exceeded for endpoint {endpoint!r}"},
                headers=(("Retry-After", str(max(1, math.ceil(retry_after)))),),
            )
        return _json_response(200, self.api.dispatch(endpoint, params))

    # -- production trimmings -----------------------------------------------------------

    def _check_api_key(self, endpoint: str, request: HttpRequest) -> None:
        """401 unless a configured key authorises this write-path request.

        Auth applies only when ``ServerConfig.api_keys`` is non-empty and
        only to :data:`WRITE_ENDPOINTS`; the read path stays open.  The key
        arrives as ``X-API-Key: <key>`` or ``Authorization: Bearer <key>``
        and is compared with :func:`hmac.compare_digest`.
        """
        if not self._api_keys or endpoint not in WRITE_ENDPOINTS:
            return
        provided = request.headers.get("x-api-key", "")
        if not provided:
            authorization = request.headers.get("authorization", "")
            if authorization.lower().startswith("bearer "):
                provided = authorization[len("bearer "):].strip()
        if provided and any(
            hmac.compare_digest(provided, key) for key in self._api_keys
        ):
            return
        raise ServerError(
            f"endpoint {endpoint!r} requires a valid API key "
            "(X-API-Key or Authorization: Bearer)",
            status=401,
        )

    def _check_rate_limit(self, endpoint: str) -> Optional[float]:
        """Seconds to wait when the endpoint's bucket is empty, else None."""
        bucket = self._buckets.get(endpoint)
        if bucket is None:
            if self._default_rate is None or endpoint not in self.api.routes():
                return None
            with self._bucket_lock:
                bucket = self._buckets.setdefault(
                    endpoint, TokenBucket(self._default_rate)
                )
        wait = bucket.try_acquire()
        return wait if wait > 0 else None

    # -- rendering helpers --------------------------------------------------------------

    def _landing_page(self) -> str:
        summary = json_dumps(self.system.summary())
        pretty = json.dumps(json.loads(summary), indent=2)
        return _LANDING_TEMPLATE.format(summary=escape(pretty))

    @staticmethod
    def _html(body: str, status: int = 200) -> HttpResponse:
        return HttpResponse(
            status=status,
            body=body.encode("utf-8"),
            content_type="text/html; charset=utf-8",
        )
