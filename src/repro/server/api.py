"""The MapRat façade and the JSON endpoint handlers.

:class:`MapRat` is the one object a downstream user needs: it owns the
dataset, the indexed store, the query engine, the miner, the exploration
helpers, the visualization renderers and the result cache, and exposes the
demo's interactions as methods.  :class:`JsonApi` adapts the façade to plain
``dict`` in / ``dict`` out handlers used by the HTTP server and by tests.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import CancelledError
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..config import MiningConfig, PipelineConfig, VizConfig
from ..core.explanation import Explanation, GroupExplanation, MiningResult
from ..core.miner import RatingMiner
from ..data.ingest import LiveStore, rating_from_dict, reviewer_from_dict
from ..data.lattice import CuboidLattice
from ..data.model import Item, Rating, RatingDataset, Reviewer
from ..data.storage import RatingStore
from ..errors import (
    EmptyRatingSetError,
    ExplorationError,
    GeoError,
    IngestError,
    MapRatError,
    MiningError,
    MiningTimeoutError,
    PoolError,
    QueryError,
    ServerError,
    StaleEpochError,
    VisualizationError,
)
from ..explore.drilldown import CityAggregate, DrillDown
from ..geo.explorer import DRILL_ATTRIBUTES, GeoExplorer, GeoMiningResult, is_country
from ..explore.session import ExplorationSession
from ..explore.statistics import GroupStatistics, compare_groups, group_statistics
from ..explore.timeline import GroupTrendPoint, TimelineExplorer, TimelineSlice
from ..query.engine import ItemQuery, QueryEngine, TimeInterval
from ..viz.choropleth import render_explanation_map
from ..viz.report import ExplanationReport, ExplorationReport
from ..viz.text import render_result_text
from .cache import ResultCache, canonical_explain_key, canonical_geo_key
from .pool import MiningWorkerPool
from .precompute import CacheWarmer, ItemAggregate, Precomputer
from .procpool import ProcessMiningPool
from .fleet import FleetMiningPool
from .shardpool import ShardedMiningPool
from .recovery import DurabilityController, RecoveryReport


@dataclass(frozen=True)
class ServingState:
    """Immutable bundle of everything a request reads from one store epoch.

    A request grabs the bundle **once** and uses it throughout, so a
    compaction swapping ``MapRat._serving`` mid-request can never hand the
    request a store from one epoch and a miner from another (no torn
    snapshots).  The bundle is cheap: the store is shared, the wrappers
    around it are thin.
    """

    epoch: int
    store: RatingStore
    miner: RatingMiner
    geo: GeoExplorer
    timeline_explorer: TimelineExplorer
    precomputer: Precomputer


class MapRat:
    """End-to-end MapRat system over one collaborative rating dataset."""

    def __init__(
        self,
        dataset: RatingDataset,
        config: Optional[PipelineConfig] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        server = self.config.server
        # Durability: with a data_dir the live store is reconciled from the
        # newest snapshot + write-ahead-log replay (crash recovery) and every
        # accepted ingest is journaled before it mutates the buffer.  Without
        # one the system is purely in-memory, exactly as before.
        self.durability: Optional[DurabilityController] = None
        self._recovery_report: Optional[RecoveryReport] = None
        if server.data_dir is not None:
            self.durability = DurabilityController(
                server.data_dir,
                fsync=server.wal_fsync,
                snapshot_on_compact=server.snapshot_on_compact,
            )
            self.live, self._recovery_report = self.durability.recover(
                dataset,
                lambda ds: RatingMiner.build_store(ds, self.config.mining),
                auto_compact_threshold=server.auto_compact_threshold,
                use_incremental=server.use_incremental_compaction,
            )
            miner = RatingMiner(self.live.snapshot, self.config.mining)
        else:
            miner = RatingMiner.for_dataset(dataset, self.config.mining)
            self.live = LiveStore(
                miner.store,
                auto_compact_threshold=server.auto_compact_threshold,
                use_incremental=server.use_incremental_compaction,
            )
        # Materialised cuboid lattice: built once over the starting snapshot
        # (a durably recovered snapshot may already carry one) and carried
        # forward across compactions by the incremental compactor.  Must be
        # attached *before* the pools publish the store, so worker processes
        # receive the lattice arrays through the shared-memory manifest.
        self._attach_lattice_if_configured(miner.store)
        self.engine = QueryEngine(dataset)
        self.cache = ResultCache(
            capacity=server.cache_capacity,
            ttl_seconds=server.cache_ttl_seconds,
            single_flight=server.single_flight,
        )
        # Mining backend: the thread pool shares the store in-process (cheap,
        # GIL-bound); the process pool exports each epoch's numpy parts into
        # shared memory once and mines on worker processes (multi-core).
        # Only the request pool gets the per-request deadline — timing out
        # warm-up anchors would just leave the cache cold for no latency win.
        if server.mining_backend == "process":
            self.pool = ProcessMiningPool(
                server.mining_workers, timeout_s=server.mining_timeout_s
            )
            self.pool.publish(miner.store)
        elif server.mining_backend == "sharded":
            self.pool = ShardedMiningPool(
                server.mining_workers,
                shards=server.mining_shards,
                scheme=server.mining_shard_scheme,
                timeout_s=server.mining_timeout_s,
            )
            self.pool.publish(miner.store)
        elif server.mining_backend == "fleet":
            self.pool = FleetMiningPool(
                server.mining_workers,
                shards=server.mining_shards,
                scheme=server.mining_shard_scheme,
                replicas=server.fleet_replicas,
                addresses=server.fleet_workers,
                heartbeat_s=server.fleet_heartbeat_s,
                io_timeout_s=server.fleet_io_timeout_s,
                timeout_s=server.mining_timeout_s,
            )
            self.pool.publish(miner.store)
        else:
            self.pool = MiningWorkerPool(
                server.mining_workers, timeout_s=server.mining_timeout_s
            )
        # The warm-up shards across its own pool: warm anchors may block as
        # single-flight waiters on a live request's in-flight mining, and if
        # they occupied the request pool they could starve the very SM/DM
        # tasks that the live leader needs to finish (deadlock).  Request
        # tasks never wait on cache flights, so the split breaks the cycle.
        self.warm_pool = MiningWorkerPool(
            self.config.server.mining_workers, thread_name_prefix="maprat-warm"
        )
        geo = GeoExplorer(miner)
        self._serving = ServingState(
            epoch=miner.store.epoch,
            store=miner.store,
            miner=miner,
            geo=geo,
            timeline_explorer=TimelineExplorer(miner, self.config.mining),
            precomputer=Precomputer(miner.store, miner, explorer=geo),
        )
        self._ingest_lock = threading.Lock()
        self.warmer: Optional[CacheWarmer] = None
        self._warmer_lock = threading.Lock()
        self._closed = False
        self._explanation_report = ExplanationReport(self.config.viz)
        self._exploration_report = ExplorationReport(self.config.viz)
        if self.durability is not None:
            self._replay_warm_anchors()

    # -- epoch-consistent views -------------------------------------------------------

    @property
    def serving(self) -> ServingState:
        """The current epoch's serving bundle (grab once per request)."""
        return self._serving

    @property
    def epoch(self) -> int:
        """The current serving epoch (monotone, bumped by compactions)."""
        return self._serving.epoch

    @property
    def dataset(self) -> RatingDataset:
        """The current epoch's dataset."""
        return self._serving.store.dataset

    @property
    def store(self) -> RatingStore:
        """The current epoch's indexed rating store."""
        return self._serving.store

    @property
    def miner(self) -> RatingMiner:
        """The current epoch's rating miner."""
        return self._serving.miner

    @property
    def geo(self) -> GeoExplorer:
        """The current epoch's geo explorer."""
        return self._serving.geo

    @property
    def timeline_explorer(self) -> TimelineExplorer:
        """The current epoch's timeline explorer."""
        return self._serving.timeline_explorer

    @property
    def precomputer(self) -> Precomputer:
        """The current epoch's precomputer (aggregates + warm anchors)."""
        return self._serving.precomputer

    # -- constructors ---------------------------------------------------------------

    @classmethod
    def for_dataset(
        cls, dataset: RatingDataset, config: Optional[PipelineConfig] = None
    ) -> "MapRat":
        """Build a MapRat system over an in-memory dataset."""
        return cls(dataset, config)

    # -- mining dispatch (backend-aware, stale-epoch safe) ----------------------------

    @property
    def _process_backend(self) -> bool:
        """True for the epoch-publishing pools (process/sharded/fleet)."""
        return self.config.server.mining_backend in ("process", "sharded", "fleet")

    @staticmethod
    def _retry_stale_epoch(attempt):
        """Run one mining attempt, retrying once on a retired epoch.

        A request holding a pre-compaction :class:`ServingState` can race the
        retirement of its epoch's shared-memory export; the process pool then
        raises :class:`~repro.errors.StaleEpochError`.  ``attempt`` re-reads
        ``self._serving`` on every call, so the retry both mines on the
        current snapshot **and** keys the cache under the current epoch — a
        result is never stored under a key whose epoch it was not computed
        on.  The compaction protocol (publish → swap → retire) guarantees
        the retired epoch's successor is already serving, so one retry
        suffices; a second failure (another compaction landed mid-retry)
        propagates.
        """
        try:
            return attempt()
        except StaleEpochError:
            return attempt()

    def _mine_items(
        self,
        serving: ServingState,
        item_ids: Sequence[int],
        description: str,
        time_interval: Optional[Tuple[int, int]],
        config: MiningConfig,
        parallel: bool,
    ) -> MiningResult:
        """Mine one item selection through the configured backend."""
        return serving.miner.explain_items(
            list(item_ids),
            description=description,
            time_interval=time_interval,
            config=config,
            pool=self.pool if parallel else None,
        )

    def _mine_region(
        self,
        serving: ServingState,
        item_ids: Optional[Sequence[int]],
        region: str,
        description: str,
        time_interval: Optional[Tuple[int, int]],
        config: MiningConfig,
        parallel: bool,
    ) -> GeoMiningResult:
        """Region-anchored mining through the configured backend."""
        return serving.geo.explain_region(
            item_ids,
            region,
            description=description,
            time_interval=time_interval,
            config=config,
            pool=self.pool if parallel else None,
        )

    # -- query + mining ---------------------------------------------------------------

    def search(self, query: str) -> List[Item]:
        """Evaluate the search-box query against the catalogue (Figure 1)."""
        return self.engine.matching_items(query)

    def explain(
        self,
        query: str,
        time_interval: Optional[TimeInterval] = None,
        config: Optional[MiningConfig] = None,
        use_cache: bool = True,
    ) -> MiningResult:
        """Search, mine SM + DM and return the full result (Figure 2).

        Results are cached under the canonical (item ids, time interval,
        mining configuration) key, so any query resolving to the same
        selection — case variants of a title, an explicit item list, a
        warm-up pre-computation — answers from one entry.  Concurrent misses
        on the same key coalesce into one mining run (single flight).
        """
        mining_config = config or self.config.mining
        compiled = self.engine.compile(query, time_interval)
        item_ids = self.engine.matching_item_ids(compiled)
        if not item_ids:
            raise QueryError(f"query {compiled.describe()!r} matches no items")
        interval = (
            compiled.time_interval.as_tuple() if compiled.time_interval else None
        )

        def attempt() -> MiningResult:
            serving = self._serving
            if not use_cache:
                return self._explain_item_ids(
                    serving, item_ids, interval, compiled, mining_config
                )
            key = canonical_explain_key(
                item_ids, interval, mining_config, epoch=serving.epoch
            )
            return self.cache.get_or_compute(
                key,
                lambda: self._explain_item_ids(
                    serving, item_ids, interval, compiled, mining_config
                ),
            )

        return self._retry_stale_epoch(attempt)

    def explain_items(
        self,
        item_ids: Sequence[int],
        description: str = "",
        time_interval: Optional[Tuple[int, int]] = None,
        config: Optional[MiningConfig] = None,
        use_cache: bool = True,
        parallel: bool = True,
    ) -> MiningResult:
        """Explain an explicit item-id selection (used by pre-computation).

        Shares the canonical cache key with :meth:`explain`, so pre-computed
        selections serve equivalent query traffic.  Item ids are canonicalised
        (sorted, de-duplicated) before mining as well as keying, so a request
        with repeated ids cannot poison the entry of the clean selection.
        ``parallel=False`` keeps the SM/DM tasks off the worker pool —
        required when this call itself runs on a pool worker (e.g. the
        sharded warm-up).
        """
        mining_config = config or self.config.mining
        canonical_ids = sorted({int(item_id) for item_id in item_ids})

        def attempt() -> MiningResult:
            serving = self._serving
            compute = lambda: self._mine_items(  # noqa: E731 - keyed thunk
                serving, canonical_ids, description, time_interval,
                mining_config, parallel,
            )
            if not use_cache:
                return compute()
            key = canonical_explain_key(
                canonical_ids, time_interval, mining_config, epoch=serving.epoch
            )
            return self.cache.get_or_compute(key, compute)

        return self._retry_stale_epoch(attempt)

    def _explain_item_ids(
        self,
        serving: ServingState,
        item_ids: Sequence[int],
        interval: Optional[Tuple[int, int]],
        compiled: ItemQuery,
        mining_config: MiningConfig,
    ) -> MiningResult:
        return self._mine_items(
            serving, list(item_ids), compiled.describe(), interval, mining_config, True
        )

    # -- exploration -------------------------------------------------------------------

    def session(self) -> ExplorationSession:
        """A fresh interactive exploration session sharing this system's miner."""
        serving = self._serving
        return ExplorationSession(
            serving.store.dataset, self.config.mining, miner=serving.miner
        )

    def group_statistics(
        self,
        query: str,
        task: str,
        group_index: int,
        time_interval: Optional[TimeInterval] = None,
    ) -> GroupStatistics:
        """Figure-3 statistics of one group of a query's interpretation."""
        serving = self._serving
        result = self.explain(query, time_interval)
        group = self._group_at(result, task, group_index)
        rating_slice = self._slice_for_result(serving, result, time_interval)
        return group_statistics(rating_slice, group.pairs, label=group.label)

    def drill_down(
        self,
        query: str,
        task: str,
        group_index: int,
        time_interval: Optional[TimeInterval] = None,
        min_size: int = 1,
    ) -> List[CityAggregate]:
        """City-level drill-down of one group of a query's interpretation."""
        serving = self._serving
        result = self.explain(query, time_interval)
        group = self._group_at(result, task, group_index)
        rating_slice = self._slice_for_result(serving, result, time_interval)
        return DrillDown(rating_slice, min_size=min_size).drill(group.pairs)

    def timeline(
        self,
        query: str,
        years: Optional[Sequence[int]] = None,
        min_ratings: int = 20,
    ) -> List[TimelineSlice]:
        """Time-slider view: interpretations per year for a query."""
        item_ids = self.engine.matching_item_ids(query)
        if not item_ids:
            raise QueryError(f"query {query!r} matches no items")
        return self._serving.timeline_explorer.interpretations_by_year(
            item_ids, years=years, min_ratings=min_ratings
        )

    def group_trend(
        self,
        query: str,
        pairs: Mapping[str, str],
        years: Optional[Sequence[int]] = None,
    ) -> List[GroupTrendPoint]:
        """Average rating of a fixed group per year for a query."""
        item_ids = self.engine.matching_item_ids(query)
        if not item_ids:
            raise QueryError(f"query {query!r} matches no items")
        return self._serving.timeline_explorer.group_trend(item_ids, pairs, years=years)

    # -- geo serving (the geo-visualization pillar, §2.3/§3.1) ---------------------------

    def _resolve_selection(
        self, query: Optional[str], time_interval: Optional[TimeInterval]
    ) -> Tuple[Optional[List[int]], Optional[Tuple[int, int]], str]:
        """Resolve an optional query string into (item ids, interval, label).

        ``query=None`` means the whole store — the country-level landing view
        of the geo surface; it resolves to ``item_ids=None`` which the geo
        explorer treats as "every rating tuple".
        """
        interval = time_interval.as_tuple() if time_interval else None
        if query is None or not query.strip():
            return None, interval, "all items"
        compiled = self.engine.compile(query, time_interval)
        item_ids = self.engine.matching_item_ids(compiled)
        if not item_ids:
            raise QueryError(f"query {compiled.describe()!r} matches no items")
        item_ids = sorted({int(item_id) for item_id in item_ids})
        interval = (
            compiled.time_interval.as_tuple() if compiled.time_interval else None
        )
        return item_ids, interval, compiled.describe()

    def geo_summary(
        self,
        query: Optional[str] = None,
        time_interval: Optional[TimeInterval] = None,
        min_size: int = 1,
        use_cache: bool = True,
    ) -> dict:
        """State-level rating aggregates of a selection (the country map view)."""
        serving = self._serving
        item_ids, interval, description = self._resolve_selection(query, time_interval)

        def compute() -> dict:
            if item_ids is None and interval is None and len(serving.store):
                # Whole-store landing view: served from the maintained
                # per-state index — no full-store gather, and compactions
                # keep it current via delta bincounts.
                regions = serving.geo.summary(None, None, min_size)
                return {
                    "level": "state",
                    "description": description,
                    "num_ratings": len(serving.store),
                    "average": round(serving.store.global_average(), 4),
                    "regions": [agg.to_dict() for agg in regions],
                }
            rating_slice = serving.geo.slice_for(item_ids, interval)
            regions = serving.geo.aggregate_by(rating_slice, "state", "state", min_size)
            return {
                "level": "state",
                "description": description,
                "num_ratings": len(rating_slice),
                "average": round(rating_slice.average(), 4),
                "regions": [agg.to_dict() for agg in regions],
            }

        if not use_cache:
            return compute()
        key = canonical_geo_key(
            "summary", item_ids, interval, min_size=min_size, epoch=serving.epoch
        )
        return self.cache.get_or_compute(key, compute)

    def geo_drilldown(
        self,
        region: Optional[str] = None,
        by: str = "city",
        query: Optional[str] = None,
        time_interval: Optional[TimeInterval] = None,
        min_size: int = 1,
        use_cache: bool = True,
    ) -> dict:
        """Child-region aggregates one level below ``region`` (§2.3 drill-down)."""
        if by not in DRILL_ATTRIBUTES:
            # Validate before the cache is consulted: a populated country
            # entry must not turn an invalid ``by`` into a 200.
            raise GeoError(
                f"unsupported drill attribute {by!r}; expected one of {DRILL_ATTRIBUTES}"
            )
        serving = self._serving
        item_ids, interval, description = self._resolve_selection(query, time_interval)
        # The explorer's own country predicate, so the payload's region/by
        # labels (and the cache key) always agree with the aggregates
        # actually returned for region="USA".
        drilling_country = is_country(region)

        def compute() -> dict:
            aggregates = serving.geo.drilldown(
                region=region,
                by=by,
                item_ids=item_ids,
                time_interval=interval,
                min_size=min_size,
            )
            return {
                "region": "USA" if drilling_country else str(region).strip().upper(),
                "by": "state" if drilling_country else by,
                "description": description,
                "regions": [agg.to_dict() for agg in aggregates],
            }

        if not use_cache:
            return compute()
        key = canonical_geo_key(
            "drilldown",
            item_ids,
            interval,
            region="" if drilling_country else region,
            by="state" if drilling_country else by,
            min_size=min_size,
            epoch=serving.epoch,
        )
        return self.cache.get_or_compute(key, compute)

    def geo_explain(
        self,
        query: str,
        region: str,
        time_interval: Optional[TimeInterval] = None,
        config: Optional[MiningConfig] = None,
        use_cache: bool = True,
    ) -> GeoMiningResult:
        """Mine why ``region`` rates the queried items the way it does.

        The within-region SM/DM runs through the worker pool and the result
        is cached under the canonical geo key (single flight), so concurrent
        requests for the same (selection, region) coalesce into one mining.
        """
        item_ids, interval, description = self._resolve_selection(query, time_interval)
        return self.geo_explain_items(
            item_ids, region, description, interval, config, use_cache=use_cache
        )

    def geo_explain_items(
        self,
        item_ids: Optional[Sequence[int]],
        region: str,
        description: str = "",
        time_interval: Optional[Tuple[int, int]] = None,
        config: Optional[MiningConfig] = None,
        use_cache: bool = True,
        parallel: bool = True,
    ) -> GeoMiningResult:
        """Geo-anchored mining of an explicit item selection (warm-up path).

        Shares the canonical geo cache key with :meth:`geo_explain`, so the
        top-region warm-up serves live geo traffic.  ``parallel=False`` keeps
        the inner SM/DM off the request pool — required when this call itself
        runs on a pool worker.
        """
        mining_config = config or self.config.mining
        canonical_ids = (
            None
            if item_ids is None
            else sorted({int(item_id) for item_id in item_ids})
        )

        def attempt() -> GeoMiningResult:
            serving = self._serving
            compute = lambda: self._mine_region(  # noqa: E731 - keyed thunk
                serving, canonical_ids, region, description, time_interval,
                mining_config, parallel,
            )
            if not use_cache:
                return compute()
            key = canonical_geo_key(
                "geo_explain",
                canonical_ids,
                time_interval,
                region=region,
                config=mining_config,
                epoch=serving.epoch,
            )
            return self.cache.get_or_compute(key, compute)

        return self._retry_stale_epoch(attempt)

    def choropleth(
        self,
        query: str,
        task: str = "similarity",
        time_interval: Optional[TimeInterval] = None,
        use_cache: bool = True,
    ) -> dict:
        """The Figure-2 choropleth of one mining task as a JSON payload.

        The underlying explanation comes from the shared explain cache (so a
        choropleth request after an explain request mines nothing); the
        rendered SVG is itself cached under a canonical geo key.
        """
        if task not in ("similarity", "diversity"):
            raise ServerError(f"unknown mining task {task!r}", status=400)
        serving = self._serving
        item_ids, interval, description = self._resolve_selection(query, time_interval)
        if item_ids is None:
            raise QueryError("choropleth requires a query selecting items")

        def compute() -> dict:
            result = self.explain(query, time_interval=time_interval)
            explanation = result.explanation_for(task)
            svg = render_explanation_map(
                explanation,
                self.config.viz,
                title=f"{task.title()} Mining — {description}",
            )
            return {
                "description": description,
                "task": task,
                "groups": len(explanation.groups),
                "svg": svg,
            }

        if not use_cache:
            return compute()
        key = canonical_geo_key(
            "choropleth",
            item_ids,
            interval,
            task=task,
            config=self.config.mining,
            epoch=serving.epoch,
        )
        return self.cache.get_or_compute(key, compute)

    # -- rendering ----------------------------------------------------------------------

    def explanation_html(self, query: str, time_interval: Optional[TimeInterval] = None) -> str:
        """The Figure-2 HTML page for a query."""
        result = self.explain(query, time_interval)
        return self._explanation_report.render(result, title=f"MapRat — {query}")

    def explanation_text(self, query: str, time_interval: Optional[TimeInterval] = None) -> str:
        """Terminal rendering of a query's explanation."""
        return render_result_text(self.explain(query, time_interval))

    def exploration_html(
        self,
        query: str,
        task: str = "similarity",
        group_index: int = 0,
        time_interval: Optional[TimeInterval] = None,
    ) -> str:
        """The Figure-3 HTML page for one group of a query's interpretation."""
        serving = self._serving
        result = self.explain(query, time_interval)
        group = self._group_at(result, task, group_index)
        rating_slice = self._slice_for_result(serving, result, time_interval)
        statistics = group_statistics(rating_slice, group.pairs, label=group.label)
        explanation = result.explanation_for(task)
        comparisons = compare_groups(
            rating_slice,
            [g.pairs for g in explanation.groups],
            labels=[g.label for g in explanation.groups],
        )
        drilldown = DrillDown(rating_slice, min_size=1).drill(group.pairs)
        trend = serving.timeline_explorer.group_trend(
            list(result.query.item_ids), group.pairs
        )
        return self._exploration_report.render(
            group=group,
            statistics=statistics,
            comparisons=comparisons,
            drilldown=drilldown,
            trend=trend,
        )

    # -- warm-up / service info -------------------------------------------------------------

    def warm_up(self, limit: Optional[int] = None, regions: Optional[int] = None) -> dict:
        """Pre-compute explanations for the most popular items and regions (§2.3).

        Anchors shard across the dedicated warm pool (one task per item or
        region, never the request pool — see ``__init__``); the inner SM/DM
        tasks run serially on each worker so a saturated pool can never
        deadlock on nested submissions.  ``regions`` additionally pre-mines
        the geo explanation of the most-rated item of each of the top-N
        states, pre-filling the ``geo_explain`` surface.
        """
        with self._warmer_lock:
            if self._closed:
                raise PoolError("cannot warm up a closed system")
        limit = limit if limit is not None else self.config.server.precompute_top_items
        regions = (
            regions
            if regions is not None
            else self.config.server.precompute_top_regions
        )
        report = self.precomputer.warm_popular_items(
            self._warm_explain, limit=limit, pool=self.warm_pool
        )
        if regions:
            report = report.merged(
                self.precomputer.warm_top_regions(
                    self._warm_geo_explain, limit=regions, pool=self.warm_pool
                )
            )
        return report.to_dict()

    def _warm_explain(self, item_ids: List[int], description: str) -> MiningResult:
        """One warm-up anchor: cache-aware explain, inner SM/DM off the warm pool.

        With the thread backend the inner tasks run serially on the warm
        worker (submitting them back to a pool the anchor already occupies
        could deadlock); with the process backend they scatter to the worker
        *processes* — a different pool — so warm anchors mine on every core.
        """
        return self.explain_items(item_ids, description, parallel=self._process_backend)

    def _warm_geo_explain(
        self, item_ids: List[int], region: str, description: str
    ) -> GeoMiningResult:
        """One geo warm-up anchor (same nesting rule as :meth:`_warm_explain`)."""
        return self.geo_explain_items(
            item_ids, region, description, parallel=self._process_backend
        )

    def start_warmer(self, limit: Optional[int] = None) -> CacheWarmer:
        """Start the background warm-up of the top-k popular items.

        Returns the running :class:`~repro.server.precompute.CacheWarmer`;
        the server keeps serving while it fills the cache, and the summary
        endpoint reports its progress.  Idempotent while a warm-up is still
        running — the live warmer is returned instead of racing a second one.
        """
        with self._warmer_lock:
            if self._closed:
                raise PoolError("cannot start a warmer on a closed system")
            if self.warmer is not None and not self.warmer.done:
                return self.warmer
            limit = (
                limit if limit is not None else self.config.server.precompute_top_items
            )
            self.warmer = CacheWarmer(
                self.precomputer,
                self._warm_explain,
                limit=limit,
                pool=self.warm_pool,
                explain_region=self._warm_geo_explain,
                region_limit=self.config.server.precompute_top_regions,
            ).start()
            return self.warmer

    def close(self) -> None:
        """Shut down the worker pools and the durability layer (idempotent).

        Queued warm-up anchors are cancelled so shutdown is bounded by the
        tasks already in flight, not by the full warm list.  With durability
        configured, the first close also persists the hot anchor set (for the
        next start's warm restart) and seals the write-ahead log.  Call when
        discarding a system (the HTTP layer closes systems it owns on
        ``stop()``); a shared, long-lived system can simply be dropped —
        idle executor threads are reclaimed at interpreter exit, and the WAL
        is crash-safe by construction.
        """
        with self._warmer_lock:
            already = self._closed
            self._closed = True  # start_warmer refuses from here on
            warmer = self.warmer
        if warmer is not None:
            warmer.cancel()  # stops the serial path of an inline pool
        self.warm_pool.shutdown(cancel_pending=True)
        if warmer is not None:
            try:
                warmer.wait(timeout=None)
            except (Exception, CancelledError):
                pass  # a cancelled/failed warm-up must not block shutdown
        self.pool.shutdown(cancel_pending=True)
        if not already:
            self._save_warm_anchors()
        if self.durability is not None:
            self.durability.close()

    # -- warm restart (durable hot-anchor set) ------------------------------------------

    def _save_warm_anchors(self) -> None:
        """Persist the default-config mining anchors of the current epoch.

        Best-effort (an unwritable data directory must never fail shutdown):
        the anchor set is only a latency optimisation — losing it costs a
        cold cache on the next start, never correctness.  Written atomically
        (tmp + rename) so a crash mid-save leaves the previous set intact.
        """
        if self.durability is None:
            return
        epoch = self._serving.epoch
        default_config = self.config.mining.cache_key()
        anchors: List[dict] = []
        for key in self.cache.keys():
            if not (isinstance(key, tuple) and key and key[-1] == epoch):
                continue
            if key[0] == "explain":
                ids, interval, config_key = key[1], key[2], key[3]
                if not ids or config_key != default_config:
                    continue
                anchors.append(
                    {
                        "kind": "explain",
                        "item_ids": list(ids),
                        "interval": None if interval is None else list(interval),
                    }
                )
            elif key[0] == "geo" and key[1] == "geo_explain":
                ids, interval, config_key = key[2], key[3], key[8]
                if config_key != default_config:
                    continue
                anchors.append(
                    {
                        "kind": "geo_explain",
                        "item_ids": None if ids is None else list(ids),
                        "region": key[4],
                        "interval": None if interval is None else list(interval),
                    }
                )
        path = self.durability.layout.warm_anchor_path
        try:
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_text(json.dumps(anchors, sort_keys=True))
            tmp.replace(path)
        except OSError:
            pass

    def _replay_warm_anchors(self) -> None:
        """Re-mine the anchor set saved by the previous run's shutdown.

        The warm-restart half of the durability contract: after recovery the
        store is byte-identical to the pre-crash run, so replaying the saved
        default-config anchors refills exactly the entries the hot set had.
        Runs on a background thread under ``warm_in_background`` (the server
        serves immediately while the cache fills), inline otherwise.
        Anchors that no longer mine (e.g. a selection emptied by re-ingested
        data) are skipped — the set is advisory, never load-bearing.
        """
        path = self.durability.layout.warm_anchor_path
        try:
            anchors = json.loads(path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(anchors, list) or not anchors:
            return

        def replay() -> None:
            replayed = 0
            for anchor in anchors:
                try:
                    kind = anchor.get("kind")
                    ids = [int(i) for i in anchor.get("item_ids") or []]
                    interval = anchor.get("interval")
                    if interval is not None:
                        interval = (int(interval[0]), int(interval[1]))
                    if kind == "explain" and ids:
                        self.explain_items(ids, time_interval=interval)
                    elif kind == "geo_explain" and anchor.get("region"):
                        self.geo_explain_items(
                            ids or None, anchor["region"], time_interval=interval
                        )
                    else:
                        continue
                    replayed += 1
                except (MapRatError, TypeError, ValueError):
                    continue
            if self._recovery_report is not None:
                self._recovery_report.warm_anchors_replayed = replayed

        if self.config.server.warm_in_background:
            threading.Thread(
                target=replay, name="maprat-warm-restart", daemon=True
            ).start()
        else:
            replay()

    def __enter__(self) -> "MapRat":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def suggest_titles(self, prefix: str, limit: int = 10) -> List[str]:
        """Title autocompletion for the search box (case-insensitive prefix)."""
        return self.engine.suggest_titles(prefix, limit=limit)

    def summary(self) -> dict:
        """Dataset and cache summary for the landing page / status endpoint."""
        serving = self._serving
        info = serving.store.dataset.describe()
        info["cache"] = self.cache.stats.to_dict()
        info["cache_entries"] = len(self.cache)
        info["serving"] = {
            "single_flight": self.cache.single_flight,
            "pool": self.pool.to_dict(),
            "warm_pool": self.warm_pool.to_dict(),
            "warmer": self.warmer.to_dict() if self.warmer is not None else None,
            "epoch": serving.epoch,
            "ingest": self.live.stats(),
        }
        return info

    # -- live ingestion (epoch-versioned write path) --------------------------------------

    def ingest(
        self,
        item_id: int,
        reviewer_id: int,
        score: float,
        timestamp: int = 0,
        reviewer: Optional[Union[Reviewer, Mapping]] = None,
    ) -> dict:
        """Accept one new rating into the append buffer (non-blocking for readers).

        ``reviewer`` registers a new community member (a :class:`Reviewer`
        or its dict form) and is required exactly when ``reviewer_id`` is
        unknown.  When the buffer reaches
        ``ServerConfig.auto_compact_threshold`` the ingest triggers a
        compaction into the next epoch; readers keep serving the previous
        snapshot throughout.
        """
        rating = Rating(
            item_id=int(item_id),
            reviewer_id=int(reviewer_id),
            score=float(score),
            timestamp=int(timestamp),
        )
        record = (
            reviewer_from_dict(reviewer, rating.reviewer_id)
            if isinstance(reviewer, Mapping)
            else reviewer
        )
        status = self.live.ingest(rating, record)
        payload = {
            "status": status,
            "epoch": self.live.epoch,
            "buffered": self.live.pending,
            "auto_compacted": False,
        }
        return self._maybe_auto_compact(payload)

    def ingest_batch(self, entries: Sequence[Mapping]) -> dict:
        """Accept a batch of rating entries (each optionally embedding a reviewer).

        Every entry is a dict with ``item_id``/``reviewer_id``/``score``
        (+ optional ``timestamp`` and ``reviewer``).  Batches above
        ``ServerConfig.ingest_batch_size`` are rejected outright.
        """
        if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
            raise IngestError("ingest batch must be a list of rating entries")
        limit = self.config.server.ingest_batch_size
        if len(entries) > limit:
            raise IngestError(
                f"batch of {len(entries)} entries exceeds ingest_batch_size={limit}"
            )
        pairs = []
        for index, entry in enumerate(entries):
            try:
                rating = rating_from_dict(entry)
                record = (
                    reviewer_from_dict(entry["reviewer"], rating.reviewer_id)
                    if isinstance(entry, Mapping) and "reviewer" in entry
                    else None
                )
            except IngestError as exc:
                raise IngestError(f"batch entry {index}: {exc}") from exc
            pairs.append((rating, record))
        counts = self.live.ingest_batch(pairs)
        payload = {
            "accepted": counts["accepted"],
            "duplicates": counts["duplicate"],
            "epoch": self.live.epoch,
            "buffered": self.live.pending,
            "auto_compacted": False,
        }
        return self._maybe_auto_compact(payload)

    def _maybe_auto_compact(self, payload: dict) -> dict:
        if self.live.should_auto_compact():
            compaction = self.compact()
            payload["auto_compacted"] = compaction["compacted"]
            payload["compaction"] = compaction
            payload["epoch"] = compaction["epoch"]
            payload["buffered"] = self.live.pending
        return payload

    def store_stats(self) -> dict:
        """Deterministic counters of the live store (the ``store_stats`` endpoint)."""
        stats = self.live.stats()
        stats["cache_entries"] = len(self.cache)
        return stats

    # -- durability -----------------------------------------------------------------------

    def snapshot_now(self) -> dict:
        """Write an on-demand durability snapshot of the current compacted state.

        Only the compacted snapshot is captured — buffered rows stay covered
        by the active write-ahead log, which is exactly what recovery
        replays.  Raises a 400 :class:`~repro.errors.ServerError` when the
        system runs without a data directory.
        """
        if self.durability is None:
            raise ServerError(
                "durability is not configured (start with ServerConfig.data_dir)",
                status=400,
            )
        with self._ingest_lock:
            return self.durability.write_snapshot(self.live.snapshot)

    def recovery_info(self) -> dict:
        """Durability-layer status plus the startup recovery report.

        ``{"configured": False}`` when the system runs purely in-memory;
        otherwise the controller's :meth:`~repro.server.recovery.
        DurabilityController.info` payload with the recovery report merged
        in (the ``recovery_info`` endpoint).
        """
        if self.durability is None:
            return {"configured": False}
        info = self.durability.info()
        info["configured"] = True
        report = self._recovery_report
        info["recovery"] = report.to_dict() if report is not None else None
        return info

    def compact(self, rewarm: bool = True) -> dict:
        """Merge the append buffer into a new snapshot epoch and swap serving.

        Readers never block: they keep using the previous
        :class:`ServingState` until the single atomic reference swap, and
        every cache key carries the epoch, so entries of the superseded
        snapshot become unreachable instantly.  Afterwards the cache is
        migrated: entries whose item selections the delta did not touch are
        **carried forward** to the new epoch (their slices — hence results —
        are unchanged by construction), touched entries are dropped, and the
        dropped mining anchors (default-config explains and geo explains)
        are re-warmed against the new snapshot.
        """
        with self._ingest_lock:
            previous = self._serving
            result = self.live.compact()
            if not result.compacted:
                return {
                    "compacted": False,
                    "epoch": result.epoch,
                    "mode": result.mode,
                    "rows": len(result.store),
                    "carried_entries": 0,
                    "invalidated_entries": 0,
                    "rewarmed": 0,
                }
            serving = self._build_serving(result.store, previous, result.delta)
            publish_error: Optional[BaseException] = None
            if self._process_backend:
                # Publish the new epoch's shared-memory export *before* the
                # swap: a request grabbing the new serving state right after
                # must be able to submit immediately.  The old epoch is NOT
                # retired yet — until the swap below, ``self._serving`` still
                # points at it, and a stale-epoch rejection now would make
                # the retry (which re-reads ``self._serving``) spin on the
                # same retired epoch.  A failed export (e.g. /dev/shm full)
                # must NOT abort the turnover — the LiveStore already
                # advanced, so the swap below still happens to keep every
                # surface on one epoch; mining degrades to StaleEpochError
                # until a later publish succeeds, and the original error is
                # re-raised to the compact caller.
                try:
                    self.pool.publish(serving.store, retire_previous=False)
                except Exception as exc:
                    publish_error = exc
            self._serving = serving  # atomic swap: requests see old xor new
            if self._process_backend and publish_error is None:
                # Only now can "epoch < current" be refused: any retry
                # observes the new serving state.  Segments stay linked
                # until their in-flight tasks drain (per-epoch refcounts),
                # so readers holding the old state never see a torn store.
                self.pool.retire_older(serving.epoch)
            migration, rewarm_plan = self._migrate_cache(
                previous.epoch, serving.epoch, result.delta, rewarm
            )
        if publish_error is not None:
            raise publish_error
        # Re-mining the invalidated anchors happens *outside* the ingest
        # lock: it is by far the slowest part of an epoch turnover and must
        # not stall other writers (readers were never blocked to begin
        # with).  The anchors mine against the already-swapped serving state.
        migration["rewarmed"] = self._rewarm_anchors(rewarm_plan)
        payload = result.to_dict()
        payload["compacted"] = True
        payload.update(migration)
        return payload

    def _attach_lattice_if_configured(self, store: RatingStore) -> None:
        """Build + attach the cuboid lattice, gated by the memory budget.

        Skipped entirely unless ``use_cuboid_lattice`` is on.  The pre-build
        estimate refuses cheaply; a built (or carried/recovered) lattice that
        still exceeds the budget is detached, falling the store back to plain
        enumeration — the documented budget contract.
        """
        server = self.config.server
        if not server.use_cuboid_lattice:
            if store.lattice() is not None:
                # e.g. recovered from a snapshot written with the flag on.
                store.detach_lattice()
            return
        budget_bytes = int(server.lattice_budget_mb) << 20
        if store.lattice() is None:
            if CuboidLattice.estimate_nbytes(len(store)) > budget_bytes:
                return
            store.attach_lattice(CuboidLattice.build(store))
        if store.lattice().nbytes > budget_bytes:
            store.detach_lattice()

    def _build_serving(
        self, store: RatingStore, previous: ServingState, delta
    ) -> ServingState:
        # The compactor carried the previous epoch's lattice forward (delta
        # merges); re-check the budget — growth may have pushed it over, in
        # which case the new epoch serves by plain enumeration.
        self._attach_lattice_if_configured(store)
        miner = RatingMiner(store, self.config.mining)
        geo = GeoExplorer(miner, hierarchy=previous.geo.hierarchy)
        return ServingState(
            epoch=store.epoch,
            store=store,
            miner=miner,
            geo=geo,
            timeline_explorer=TimelineExplorer(miner, self.config.mining),
            precomputer=Precomputer.rebased(
                previous.precomputer, store, miner, geo, delta.touched_items
            ),
        )

    def _migrate_cache(
        self, old_epoch: int, new_epoch: int, delta, rewarm: bool
    ) -> dict:
        """Carry forward untouched entries; drop + re-warm invalidated anchors.

        An entry whose item selection shares no item with the compaction
        delta saw its rating slice unchanged, so its value is re-keyed under
        the new epoch without recomputation.  Whole-store entries
        (``item_ids=None``) and touched selections are dropped; among those,
        default-config mining anchors (``explain``/``geo_explain``) are
        re-mined against the new snapshot so the hot set stays warm — the
        "re-warm only invalidated anchors" contract.
        """
        touched = delta.touched_items
        default_config = self.config.mining.cache_key()
        carried = invalidated = 0
        rewarm_explains: List[Tuple[tuple, Optional[Tuple[int, int]]]] = []
        rewarm_regions: List[Tuple[Optional[tuple], str, Optional[Tuple[int, int]]]] = []
        for key in self.cache.keys():
            if not (isinstance(key, tuple) and key and key[-1] == old_epoch):
                continue
            if key[0] == "explain":
                ids, interval, config_key = key[1], key[2], key[3]
                untouched = bool(ids) and not touched.intersection(ids)
            elif key[0] == "geo":
                ids, interval, config_key = key[2], key[3], key[8]
                untouched = ids is not None and not touched.intersection(ids)
            else:
                continue
            if untouched:
                value = self.cache.get(key, record_stats=False)
                if value is not None:
                    self.cache.put(key[:-1] + (new_epoch,), value)
                    carried += 1
                self.cache.invalidate(key)
                continue
            self.cache.invalidate(key)
            invalidated += 1
            if not rewarm or config_key != default_config:
                continue
            if key[0] == "explain" and ids:
                rewarm_explains.append((ids, interval))
            elif key[0] == "geo" and key[1] == "geo_explain":
                rewarm_regions.append((ids, key[4], interval))
        counts = {"carried_entries": carried, "invalidated_entries": invalidated}
        return counts, (rewarm_explains, rewarm_regions)

    def _rewarm_anchors(self, plan) -> int:
        """Re-mine the invalidated anchors against the current serving state."""
        rewarm_explains, rewarm_regions = plan
        rewarmed = 0
        for ids, interval in rewarm_explains:
            try:
                self.explain_items(list(ids), time_interval=interval)
                rewarmed += 1
            except MapRatError:
                pass  # a shrunken selection may no longer mine; drop it
        for ids, region, interval in rewarm_regions:
            try:
                self.geo_explain_items(
                    None if ids is None else list(ids), region, time_interval=interval
                )
                rewarmed += 1
            except MapRatError:
                pass
        return rewarmed

    # -- internals ----------------------------------------------------------------------

    def _group_at(self, result: MiningResult, task: str, index: int) -> GroupExplanation:
        try:
            explanation = result.explanation_for(task)
        except KeyError as exc:
            raise ServerError(str(exc), status=400) from exc
        if not 0 <= index < len(explanation.groups):
            raise ExplorationError(
                f"group index {index} out of range 0..{len(explanation.groups) - 1}"
            )
        return explanation.groups[index]

    def _slice_for_result(
        self,
        serving: ServingState,
        result: MiningResult,
        time_interval: Optional[TimeInterval],
    ):
        interval = time_interval.as_tuple() if time_interval else None
        return serving.miner.slice_for_items(
            result.query.item_ids, time_interval=interval
        )


class JsonApi:
    """dict-in / dict-out handlers for every endpoint of the HTTP server."""

    def __init__(self, system: MapRat) -> None:
        self.system = system

    # -- endpoint handlers -----------------------------------------------------------

    def handle_summary(self, params: Mapping[str, str]) -> dict:
        """``summary``: dataset, cache and serving status."""
        return self.system.summary()

    def handle_suggest(self, params: Mapping[str, str]) -> dict:
        """``suggest``: title autocomplete (``prefix``, ``limit``)."""
        prefix = params.get("prefix", "")
        limit = self._int_param(params, "limit", 10)
        return {"titles": self.system.suggest_titles(prefix, limit=limit)}

    def handle_explain(self, params: Mapping[str, str]) -> dict:
        """``explain``: SM + DM interpretations of a query (``q``)."""
        query = self._require(params, "q")
        interval = self._interval_from(params)
        result = self.system.explain(query, time_interval=interval)
        return result.to_dict()

    def handle_statistics(self, params: Mapping[str, str]) -> dict:
        """``statistics``: Figure-3 statistics of one mined group."""
        query = self._require(params, "q")
        task = params.get("task", "similarity")
        index = self._int_param(params, "group", 0)
        stats = self.system.group_statistics(query, task, index)
        return stats.to_dict()

    def handle_drilldown(self, params: Mapping[str, str]) -> dict:
        """``drilldown``: city-level statistics of one mined group."""
        query = self._require(params, "q")
        task = params.get("task", "similarity")
        index = self._int_param(params, "group", 0)
        aggregates = self.system.drill_down(query, task, index)
        return {"aggregates": [agg.to_dict() for agg in aggregates]}

    def handle_timeline(self, params: Mapping[str, str]) -> dict:
        """``timeline``: per-year interpretations of a query."""
        query = self._require(params, "q")
        min_ratings = self._int_param(params, "min_ratings", 20)
        slices = self.system.timeline(query, min_ratings=min_ratings)
        return {"slices": [s.to_dict() for s in slices]}

    def handle_warmup(self, params: Mapping[str, str]) -> dict:
        """``warmup``: pre-mine popular items (``limit``) and top regions (``regions``)."""
        limit = self._int_param(params, "limit", 10)
        regions = self._int_param(params, "regions", 0)
        return self.system.warm_up(limit=limit, regions=regions)

    # -- geo endpoint handlers ----------------------------------------------------------

    def handle_geo_summary(self, params: Mapping[str, str]) -> dict:
        """``geo_summary``: per-state rating aggregates of a selection."""
        query = params.get("q") or None
        interval = self._interval_from(params)
        min_size = self._int_param(params, "min_size", 1)
        return self.system.geo_summary(
            query, time_interval=interval, min_size=min_size
        )

    def handle_geo_drilldown(self, params: Mapping[str, str]) -> dict:
        """``geo_drilldown``: children of ``region`` — states, cities or zip codes."""
        query = params.get("q") or None
        region = params.get("region") or None
        by = params.get("by", "city")
        interval = self._interval_from(params)
        min_size = self._int_param(params, "min_size", 1)
        return self.system.geo_drilldown(
            region=region,
            by=by,
            query=query,
            time_interval=interval,
            min_size=min_size,
        )

    def handle_geo_explain(self, params: Mapping[str, str]) -> dict:
        """``geo_explain``: within-region SM + DM of a query (``q``, ``region``)."""
        query = self._require(params, "q")
        region = self._require(params, "region")
        interval = self._interval_from(params)
        result = self.system.geo_explain(query, region, time_interval=interval)
        return result.to_dict()

    def handle_choropleth(self, params: Mapping[str, str]) -> dict:
        """``choropleth``: the Figure-2 map of one mining task as an SVG payload."""
        query = self._require(params, "q")
        task = params.get("task", "similarity")
        interval = self._interval_from(params)
        return self.system.choropleth(query, task=task, time_interval=interval)

    # -- ingestion endpoint handlers -----------------------------------------------------

    #: Reviewer-registration parameters of the ``ingest`` endpoint.
    _REVIEWER_PARAMS = ("gender", "age", "occupation", "zipcode", "state", "city")

    def handle_ingest(self, params: Mapping[str, str]) -> dict:
        """Accept one rating; reviewer params register a new reviewer inline."""
        item_id = self._int_param(params, "item_id", None)
        reviewer_id = self._int_param(params, "reviewer_id", None)
        if item_id is None or reviewer_id is None:
            raise ServerError(
                "ingest requires integer parameters 'item_id' and 'reviewer_id'",
                status=400,
            )
        score = self._float_param(params, "score", None)
        if score is None:
            raise ServerError(
                "ingest requires a numeric parameter 'score'", status=400
            )
        timestamp = self._int_param(params, "timestamp", 0)
        # A reviewer record may arrive nested (the POST-body / batch shape)
        # or as flat query parameters; nested wins when both are present.
        reviewer = params.get("reviewer")
        if isinstance(reviewer, str) and reviewer.strip():
            try:
                reviewer = json.loads(reviewer)
            except json.JSONDecodeError as exc:
                raise ServerError(
                    f"parameter 'reviewer' must be a JSON object: {exc.msg}",
                    status=400,
                ) from exc
        if not reviewer:
            provided = {
                name: params[name]
                for name in self._REVIEWER_PARAMS
                if str(params.get(name, "")).strip()
            }
            reviewer = provided or None
        if isinstance(reviewer, dict):
            reviewer.setdefault("reviewer_id", reviewer_id)
        return self.system.ingest(
            item_id, reviewer_id, score, timestamp=timestamp, reviewer=reviewer
        )

    def handle_ingest_batch(self, params: Mapping[str, str]) -> dict:
        """Accept a JSON array of rating entries (query param or POST body)."""
        raw = params.get("ratings")
        if raw is None or (isinstance(raw, str) and not raw.strip()):
            raise ServerError("missing required parameter 'ratings'", status=400)
        if isinstance(raw, str):
            try:
                entries = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ServerError(
                    f"parameter 'ratings' must be a JSON array: {exc.msg}", status=400
                ) from exc
        else:
            entries = raw
        if not isinstance(entries, list):
            raise ServerError(
                "parameter 'ratings' must be a JSON array of rating entries",
                status=400,
            )
        return self.system.ingest_batch(entries)

    def handle_store_stats(self, params: Mapping[str, str]) -> dict:
        """``store_stats``: live-store counters (epoch, rows, buffer, compactions)."""
        return self.system.store_stats()

    def handle_compact(self, params: Mapping[str, str]) -> dict:
        """``compact``: fold the append buffer into the next epoch."""
        return self.system.compact()

    def handle_snapshot(self, params: Mapping[str, str]) -> dict:
        """``snapshot``: write an on-demand durability snapshot."""
        return self.system.snapshot_now()

    def handle_recovery_info(self, params: Mapping[str, str]) -> dict:
        """``recovery_info``: durability status and the startup recovery report."""
        return self.system.recovery_info()

    #: Route table used by the HTTP layer.
    def routes(self) -> Dict[str, callable]:
        """The endpoint → handler table used by the HTTP layer."""
        return {
            "summary": self.handle_summary,
            "suggest": self.handle_suggest,
            "explain": self.handle_explain,
            "statistics": self.handle_statistics,
            "drilldown": self.handle_drilldown,
            "timeline": self.handle_timeline,
            "warmup": self.handle_warmup,
            "geo_summary": self.handle_geo_summary,
            "geo_drilldown": self.handle_geo_drilldown,
            "geo_explain": self.handle_geo_explain,
            "choropleth": self.handle_choropleth,
            "ingest": self.handle_ingest,
            "ingest_batch": self.handle_ingest_batch,
            "store_stats": self.handle_store_stats,
            "compact": self.handle_compact,
            "snapshot": self.handle_snapshot,
            "recovery_info": self.handle_recovery_info,
        }

    def dispatch(self, endpoint: str, params: Mapping[str, str]) -> dict:
        """Route one request; wraps library errors into :class:`ServerError`."""
        handler = self.routes().get(endpoint)
        if handler is None:
            raise ServerError(f"unknown endpoint {endpoint!r}", status=404)
        try:
            return handler(params)
        except ServerError:
            raise
        except MiningTimeoutError as exc:
            # Deadline overruns are a service condition, not a client error:
            # 503 tells the caller to retry (the result may even be cached by
            # the still-running task by then).
            raise ServerError(str(exc), status=503) from exc
        except (
            QueryError,
            ExplorationError,
            EmptyRatingSetError,
            MiningError,
            GeoError,
            IngestError,
            VisualizationError,
        ) as exc:
            raise ServerError(str(exc), status=400) from exc
        except MapRatError as exc:  # pragma: no cover - defensive catch-all
            raise ServerError(str(exc), status=500) from exc

    # -- internals ----------------------------------------------------------------------

    @staticmethod
    def _require(params: Mapping[str, str], name: str) -> str:
        value = params.get(name, "").strip()
        if not value:
            raise ServerError(f"missing required parameter {name!r}", status=400)
        return value

    @staticmethod
    def _int_param(
        params: Mapping[str, str], name: str, default: Optional[int]
    ) -> Optional[int]:
        """Integer query parameter with a clean 400 on malformed input."""
        raw = params.get(name)
        if raw is None or not str(raw).strip():
            return default
        try:
            return int(raw)
        except (TypeError, ValueError) as exc:
            raise ServerError(
                f"parameter {name!r} must be an integer", status=400
            ) from exc

    @staticmethod
    def _float_param(
        params: Mapping[str, str], name: str, default: Optional[float]
    ) -> Optional[float]:
        """Float query parameter with a clean 400 on malformed input."""
        raw = params.get(name)
        if raw is None or not str(raw).strip():
            return default
        try:
            return float(raw)
        except (TypeError, ValueError) as exc:
            raise ServerError(
                f"parameter {name!r} must be a number", status=400
            ) from exc

    @staticmethod
    def _interval_from(params: Mapping[str, str]) -> Optional[TimeInterval]:
        start_year = params.get("start_year")
        end_year = params.get("end_year")
        if not start_year and not end_year:
            return None
        try:
            start = int(start_year or end_year)
            end = int(end_year or start_year)
        except ValueError as exc:
            raise ServerError("start_year/end_year must be integers", status=400) from exc
        return TimeInterval.for_years(start, end)
