"""Asyncio production HTTP tier: keep-alive HTTP/1.1 over the shared router.

The sync edge in :mod:`repro.server.app` dedicates one OS thread to every
connection; fine for tests and demos, but a production front door serving
many mostly-idle keep-alive connections wants an event loop.  This module is
that tier, dependency-free on stdlib ``asyncio``:

* one :func:`asyncio.start_server` acceptor; each connection is a coroutine
  that parses HTTP/1.1 request framing (request line, headers,
  ``Content-Length``-delimited bodies) straight off the stream,
* **keep-alive and pipelining** — the per-connection loop serves requests
  back-to-back on one socket until the client closes or sends
  ``Connection: close`` (HTTP/1.0 clients get close-per-request unless they
  ask for keep-alive),
* **executor offload** — every admitted request runs
  :meth:`~repro.server.http_common.RequestRouter.handle` on a thread pool
  via ``loop.run_in_executor``, so mining (which releases the GIL into the
  worker pools and may block on the single-flight cache) never stalls the
  event loop; ``JsonApi.dispatch`` is reused unchanged and the golden corpus
  replays byte-identically over real sockets,
* **admission before queueing** — the shared
  :class:`~repro.server.metrics.AdmissionGate` is consulted on the event
  loop *before* the executor hop, so overload is shed with an immediate 503
  instead of an ever-growing executor queue; ops endpoints
  (``/health``/``/version``/``/metrics``) bypass both and stay responsive,
* per-request deadlines ride the existing ``ServerConfig.mining_timeout_s``
  path: the pools raise :class:`~repro.errors.MiningTimeoutError`, the
  dispatcher maps it to 503, the router serialises it — nothing async-side
  to add.

:class:`AsyncMapRatHttpServer` mirrors the sync server's lifecycle API
(``start``/``stop``/``url``/``serve_forever``/context manager): the event
loop runs on a background thread, so tests and the CLI drive both backends
identically.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _REASONS
from typing import Optional, Set, Tuple

from ..config import PipelineConfig
from ..data.model import RatingDataset
from ..errors import ServerError
from .api import JsonApi, MapRat
from .http_common import (
    HttpRequest,
    HttpResponse,
    RequestRouter,
    json_dumps,
    parse_content_length,
)

#: Hard framing limits of the HTTP/1.1 parser (defense in depth; the body
#: size is separately bounded by ``ServerConfig.max_body_bytes``).
MAX_REQUEST_LINE_BYTES = 16 * 1024
MAX_HEADER_COUNT = 100


def _keep_alive(version: str, headers) -> bool:
    """HTTP/1.1 defaults to keep-alive; HTTP/1.0 must opt in."""
    connection = headers.get("connection", "").lower()
    if "close" in connection:
        return False
    if version == "HTTP/1.0":
        return "keep-alive" in connection
    return True


class AsyncMapRatHttpServer:
    """Background-thread asyncio HTTP server around one MapRat system.

    Drop-in sibling of :class:`~repro.server.app.MapRatHttpServer` — same
    constructor, same lifecycle, same routes (one shared
    :class:`~repro.server.http_common.RequestRouter`) — but serving
    keep-alive HTTP/1.1 from an event loop with executor offload, bounded
    admission and the ops endpoints.  Select it with
    ``ServerConfig(http_backend="async")`` or ``serve --http-backend async``.
    """

    def __init__(
        self,
        system: MapRat,
        host: Optional[str] = None,
        port: Optional[int] = None,
        owns_system: bool = False,
    ) -> None:
        self.system = system
        self.host = host if host is not None else system.config.server.host
        self.port = port if port is not None else system.config.server.port
        self.owns_system = owns_system
        self.router = RequestRouter(
            system, JsonApi(system), system.config.server, edge="async"
        )
        # Executor sizing: the admission gate bounds useful concurrency, so
        # match it (capped); an unlimited gate gets a sensible fixed pool —
        # excess admitted requests queue here, bounded by the gate above.
        limit = system.config.server.max_inflight
        self._executor_workers = min(32, limit) if limit else 16
        self._executor: Optional[ThreadPoolExecutor] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._connections: Set[asyncio.Task] = set()

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Start the event loop thread; returns the bound (host, port)."""
        if self._thread is not None:
            return (self.host, self.port)
        self._executor = ThreadPoolExecutor(
            max_workers=self._executor_workers, thread_name_prefix="maprat-http"
        )
        self._started.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run_loop, name="maprat-async-http", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join(timeout=5)
            self._thread = None
            self._executor.shutdown(wait=False)
            self._executor = None
            raise error
        return (self.host, self.port)

    def stop(self) -> None:
        """Stop accepting, drain connections, join the loop thread.

        Closes the MapRat system's worker pools when this server owns the
        system (``run_server`` builds one per server), mirroring the sync
        edge's contract.  Idempotent.
        """
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._loop = None
        self._stop_event = None
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None
        if self.owns_system:
            self.system.close()  # idempotent; mirrors the sync edge's stop()

    def __enter__(self) -> "AsyncMapRatHttpServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def url(self) -> str:
        """Base URL of the bound server (``http://host:port``)."""
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Blocking serve loop for the CLI (Ctrl-C to stop)."""
        if self._thread is None:
            self.start()
        assert self._thread is not None
        try:
            self._thread.join()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            self.stop()

    # -- event loop body ------------------------------------------------------------

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # startup failures propagate via start()
            if not self._started.is_set():
                self._startup_error = exc
                self._started.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._on_connection,
                self.host,
                self.port,
                limit=MAX_REQUEST_LINE_BYTES,
            )
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            return
        sockname = server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(*self._connections, return_exceptions=True)

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self.router.metrics.record_connection()
        try:
            await self._serve_connection(reader, writer)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            TimeoutError,
        ):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            # Server shutdown cancelled this connection.  End the task
            # *cleanly* rather than re-raising: the streams-module done
            # callback calls task.exception(), which re-raises out of a
            # cancelled task straight into the loop's exception handler
            # (spurious tracebacks on every stop with idle connections).
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """The keep-alive loop: parse → admit → handle → respond, repeat."""
        assert self._loop is not None
        while True:
            request_head = await self._read_head(reader, writer)
            if request_head is None:
                return
            method, target, version, headers = request_head
            try:
                length = parse_content_length(
                    headers.get("content-length"), self.router.max_body_bytes
                )
            except ServerError as exc:
                # The body was never read: the framing is lost, so answer
                # and close — but *always* answer (400 or 413, never a drop).
                await self._write_response(
                    writer, self.router.reject(target, exc, close=True), False
                )
                return
            body = await reader.readexactly(length) if length else b""
            if method not in ("GET", "POST"):
                await self._write_simple(
                    writer, 501, f"method {method!r} not implemented", close=True
                )
                return
            request = HttpRequest(
                method=method, target=target, headers=headers, body=body
            )
            response = self.router.ops_response(request)
            if response is None:
                if not self.router.admission.try_acquire():
                    response = self.router.overloaded_response(request)
                else:
                    try:
                        response = await self._loop.run_in_executor(
                            self._executor, self.router.handle, request
                        )
                    finally:
                        self.router.admission.release()
            keep = _keep_alive(version, headers) and not response.close
            await self._write_response(writer, response, keep)
            if not keep:
                return

    async def _read_head(self, reader, writer):
        """Parse one request line + header block; None ends the connection."""
        try:
            raw_line = await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError:
            return None  # clean EOF between keep-alive requests
        except asyncio.LimitOverrunError:
            await self._write_simple(
                writer, 431, "request line too long", close=True
            )
            return None
        line = raw_line.decode("latin-1").strip()
        if not line:
            return None
        parts = line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            await self._write_simple(
                writer, 400, f"malformed request line: {line!r}", close=True
            )
            return None
        method, target, version = parts
        headers = {}
        while True:
            try:
                raw_header = await reader.readuntil(b"\n")
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                await self._write_simple(
                    writer, 400, "truncated header block", close=True
                )
                return None
            header_line = raw_header.decode("latin-1").strip()
            if not header_line:
                break
            if len(headers) >= MAX_HEADER_COUNT:
                await self._write_simple(writer, 431, "too many headers", close=True)
                return None
            name, _, value = header_line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, target, version, headers

    async def _write_simple(
        self, writer, status: int, message: str, close: bool = False
    ) -> None:
        """A minimal JSON error written straight from the event loop."""
        body = json_dumps({"error": message}).encode("utf-8")
        await self._write_response(
            writer,
            HttpResponse(
                status=status,
                body=body,
                content_type="application/json; charset=utf-8",
                close=close,
            ),
            not close,
        )

    async def _write_response(
        self, writer, response: HttpResponse, keep_alive: bool
    ) -> None:
        reason = _REASONS.get(response.status, "")
        head = [
            f"HTTP/1.1 {response.status} {reason}",
            "Server: MapRat-async/1.0",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head.extend(f"{name}: {value}" for name, value in response.headers)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(response.body)
        await writer.drain()


def run_async_server(
    dataset: RatingDataset,
    config: Optional[PipelineConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    warm_up: int = 0,
) -> AsyncMapRatHttpServer:
    """Build a MapRat system over ``dataset`` and serve it on the async tier.

    Same contract as :func:`repro.server.app.run_server` with
    ``http_backend="async"`` — that function is the usual entry point; this
    one exists for callers that want the async class explicitly.
    """
    system = MapRat.for_dataset(dataset, config)
    server = AsyncMapRatHttpServer(system, host=host, port=port, owns_system=True)
    try:
        if warm_up:
            if system.config.server.warm_in_background:
                system.start_warmer(limit=warm_up)
            else:
                system.warm_up(limit=warm_up)
        server.start()
    except BaseException:
        system.close()  # don't leak the pools when startup fails
        raise
    return server
