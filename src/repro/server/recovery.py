"""Crash recovery and the durability controller wiring WAL + snapshots.

:mod:`repro.data.durability` supplies the primitives (checksummed log
records, atomic mmap snapshots); this module composes them into the policy
the serving layer runs:

* :class:`DataDirLayout` — the on-disk contract.  One data directory holds
  ``wal/wal-<epoch>.log`` (one log per epoch; the log of epoch *E* records
  the ops ingested while the serving snapshot was at epoch *E*),
  ``snapshots/snapshot-<epoch>.snap`` (the compacted store of epoch *E*) and
  ``warm_anchors.json`` (the warm-restart anchor set).
* :class:`DurabilityController` — the journal a
  :class:`~repro.data.ingest.LiveStore` writes through.  Appends go to the
  active log before the buffer mutates; the log rotates atomically with the
  compaction drain; each compaction (optionally) writes a snapshot and prunes
  everything older than the new epoch.
* :meth:`DurabilityController.recover` — startup.  Load the newest snapshot
  (or rebuild the base store when none exists), replay every sealed log
  through the normal ingest + compact path — re-establishing the exact epoch
  sequence the crashed process had — then replay the active log into the
  buffer, dropping a torn tail if the crash hit mid-append.  Recovery is
  deliberately built *on* the ingest path rather than beside it: replay
  produces bit-identical stores because it runs the identical code.

Failure stance: a torn tail on the active log is expected and silently
dropped (its byte count is reported); anything else — checksum damage in
committed history, a gap in the epoch chain, an unreplayable record — raises
(:class:`~repro.errors.WalCorruptionError` /
:class:`~repro.errors.RecoveryError`) instead of guessing.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from ..data.durability import (
    FSYNC_POLICIES,
    WriteAheadLog,
    load_snapshot,
    read_wal,
    truncate_wal,
    write_snapshot,
)
from ..data.ingest import DUPLICATE, LiveStore
from ..data.model import Rating, RatingDataset, Reviewer
from ..data.storage import RatingStore
from ..errors import ConstraintError, IngestError, RecoveryError

__all__ = [
    "DataDirLayout",
    "DurabilityController",
    "RecoveryReport",
]

_WAL_PATTERN = re.compile(r"^wal-(\d{8})\.log$")
_SNAPSHOT_PATTERN = re.compile(r"^snapshot-(\d{8})\.snap$")


class DataDirLayout:
    """Paths and listings of one durability data directory."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.wal_dir = self.root / "wal"
        self.snapshot_dir = self.root / "snapshots"
        self.warm_anchor_path = self.root / "warm_anchors.json"

    def ensure(self) -> None:
        """Create the directory skeleton (idempotent)."""
        self.wal_dir.mkdir(parents=True, exist_ok=True)
        self.snapshot_dir.mkdir(parents=True, exist_ok=True)

    def wal_path(self, epoch: int) -> Path:
        """Log file of one epoch."""
        return self.wal_dir / f"wal-{epoch:08d}.log"

    def snapshot_path(self, epoch: int) -> Path:
        """Snapshot file of one epoch."""
        return self.snapshot_dir / f"snapshot-{epoch:08d}.snap"

    @staticmethod
    def _listed(directory: Path, pattern: re.Pattern) -> List[Tuple[int, Path]]:
        if not directory.is_dir():
            return []
        found = []
        for entry in directory.iterdir():
            match = pattern.match(entry.name)
            if match:  # tmp files and strangers are ignored
                found.append((int(match.group(1)), entry))
        return sorted(found)

    def list_wals(self) -> List[Tuple[int, Path]]:
        """All log files as ``(epoch, path)``, ascending by epoch."""
        return self._listed(self.wal_dir, _WAL_PATTERN)

    def list_snapshots(self) -> List[Tuple[int, Path]]:
        """All snapshot files as ``(epoch, path)``, ascending by epoch."""
        return self._listed(self.snapshot_dir, _SNAPSHOT_PATTERN)


@dataclass
class RecoveryReport:
    """What one startup recovery did (the ``recovery_info`` payload)."""

    mode: str = "fresh"  # "fresh" | "snapshot"
    snapshot_epoch: Optional[int] = None
    wal_files: int = 0
    records_replayed: int = 0
    duplicates: int = 0
    compactions_replayed: int = 0
    torn_bytes_dropped: int = 0
    recovered_epoch: int = 0
    pending_rows: int = 0
    elapsed_seconds: float = 0.0
    warm_anchors_replayed: int = 0

    def to_dict(self) -> dict:
        """JSON-ready payload (all values deterministic except elapsed)."""
        return {
            "mode": self.mode,
            "snapshot_epoch": self.snapshot_epoch,
            "wal_files": self.wal_files,
            "records_replayed": self.records_replayed,
            "duplicates": self.duplicates,
            "compactions_replayed": self.compactions_replayed,
            "torn_bytes_dropped": self.torn_bytes_dropped,
            "recovered_epoch": self.recovered_epoch,
            "pending_rows": self.pending_rows,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "warm_anchors_replayed": self.warm_anchors_replayed,
        }


class DurabilityController:
    """The journal side of a durable :class:`~repro.data.ingest.LiveStore`.

    One controller owns one data directory: the active write-ahead log, the
    snapshot files, and the recovery procedure that reconciles them with a
    base dataset at startup.  All journal entry points
    (:meth:`log_append`, :meth:`commit`, :meth:`rotate`) are serialized by an
    internal lock; the buffer lock of the owning store is always taken first
    (append and rotate run under it), so the lock order is fixed.

    Args:
        data_dir: directory for logs, snapshots and the warm-anchor set.
        fsync: WAL fsync policy (``"always"`` | ``"batch"`` | ``"never"``).
        snapshot_on_compact: write (and prune to) a snapshot at each
            compaction; with ``False`` recovery replays the full log chain.
        fault: optional fault-injection hook passed through to the WAL and
            snapshot writer (crash simulation in tests; ``None`` in
            production).
    """

    def __init__(
        self,
        data_dir,
        fsync: str = "batch",
        snapshot_on_compact: bool = True,
        fault=None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ConstraintError(
                f"unknown wal_fsync policy {fsync!r}; use one of {FSYNC_POLICIES}"
            )
        self.layout = DataDirLayout(data_dir)
        self.fsync_policy = fsync
        self.snapshot_on_compact = snapshot_on_compact
        self._fault = fault
        self._lock = threading.RLock()
        self._wal: Optional[WriteAheadLog] = None
        self._base_rows = 0
        self._base_reviewers = 0
        self._closed = False
        self.last_snapshot: Optional[dict] = None
        self.report: Optional[RecoveryReport] = None

    # -- recovery ---------------------------------------------------------------

    def recover(
        self,
        base_dataset: RatingDataset,
        build_store: Callable[[RatingDataset], RatingStore],
        auto_compact_threshold: int = 0,
        use_incremental: bool = True,
    ) -> Tuple[LiveStore, RecoveryReport]:
        """Reconcile the data directory into a ready-to-serve live store.

        Procedure: load the newest snapshot (``build_store(base_dataset)``
        when none exists), then replay the logs in epoch order through a
        journal-less live store — every *sealed* log (one with a successor)
        is replayed and compacted, recreating the exact epoch its rotation
        sealed; the newest log is the active one, replayed into the buffer
        only.  A torn tail on the active log is truncated away.  Finally the
        controller attaches itself as the store's journal, reopens the active
        log for append, and (under ``snapshot_on_compact``) backfills a
        snapshot the crash may have prevented.

        Returns the live store and a :class:`RecoveryReport`.
        """
        started = time.perf_counter()
        report = RecoveryReport()
        self.layout.ensure()
        self._base_rows = base_dataset.num_ratings
        self._base_reviewers = base_dataset.num_reviewers

        snapshots = self.layout.list_snapshots()
        if snapshots:
            epoch, path = snapshots[-1]
            store = load_snapshot(path, base_dataset)
            report.mode = "snapshot"
            report.snapshot_epoch = epoch
        else:
            store = build_store(base_dataset)

        live = LiveStore(
            store,
            auto_compact_threshold=auto_compact_threshold,
            use_incremental=use_incremental,
        )

        wals = [(epoch, path) for epoch, path in self.layout.list_wals() if epoch >= store.epoch]
        report.wal_files = len(wals)
        if wals:
            expected = list(range(store.epoch, store.epoch + len(wals)))
            if [epoch for epoch, _ in wals] != expected:
                raise RecoveryError(
                    f"write-ahead log chain has a gap: snapshot epoch {store.epoch}, "
                    f"logs present for epochs {[epoch for epoch, _ in wals]}"
                )
        for index, (epoch, path) in enumerate(wals):
            active = index == len(wals) - 1
            scan = read_wal(path)
            report.torn_bytes_dropped += scan.torn_bytes
            if scan.torn:
                truncate_wal(path, scan.valid_bytes)
            self._replay_ops(live, scan.ops, path, report)
            if not active:
                result = live.compact()
                if live.epoch != epoch + 1:
                    raise RecoveryError(
                        f"replaying {path.name} did not advance the store to "
                        f"epoch {epoch + 1} (got {live.epoch}): the log chain "
                        "does not match the snapshot"
                    )
                if result.compacted:
                    report.compactions_replayed += 1

        with self._lock:
            self._wal = WriteAheadLog(
                self.layout.wal_path(live.epoch), fsync=self.fsync_policy, fault=self._fault
            )
        live.attach_journal(self)

        if (
            self.snapshot_on_compact
            and live.epoch > 0
            and not self.layout.snapshot_path(live.epoch).exists()
        ):
            # The crash landed between a compaction and its snapshot (or the
            # snapshot write itself died): backfill it now that the epoch has
            # been re-established.
            self.write_snapshot(live.snapshot)

        report.recovered_epoch = live.epoch
        report.pending_rows = live.pending
        report.elapsed_seconds = time.perf_counter() - started
        self.report = report
        return live, report

    def _replay_ops(
        self,
        live: LiveStore,
        ops: List[Tuple[Rating, Optional[Reviewer]]],
        path: Path,
        report: RecoveryReport,
    ) -> None:
        """Feed logged ops back through the normal ingest path."""
        for rating, reviewer in ops:
            try:
                outcome = live.ingest(rating, reviewer)
            except IngestError as exc:
                raise RecoveryError(
                    f"unreplayable record in {path.name}: {exc}"
                ) from exc
            report.records_replayed += 1
            if outcome == DUPLICATE:
                report.duplicates += 1

    # -- journal interface (called by LiveStore / AppendBuffer) ------------------

    def log_append(self, rating: Rating, reviewer: Optional[Reviewer] = None) -> None:
        """Write one accepted op to the active log (write-ahead of the buffer)."""
        with self._lock:
            self._wal.append(rating, reviewer)

    def commit(self) -> None:
        """Durability point of one ingest call (fsync under policy ``"batch"``)."""
        with self._lock:
            if self._wal is not None and not self._closed:
                self._wal.commit()

    def rotate(self, next_epoch: int) -> None:
        """Seal the active log and open the next epoch's (at compaction drain).

        Runs under the buffer lock (see
        :meth:`repro.data.ingest.AppendBuffer.drain`) so no append can land
        between the seal and the new log.
        """
        with self._lock:
            if self._fault is not None:
                self._fault("wal.rotate", epoch=next_epoch)
            if self._wal is not None:
                self._wal.close()
            self._wal = WriteAheadLog(
                self.layout.wal_path(next_epoch), fsync=self.fsync_policy, fault=self._fault
            )

    def on_compacted(self, store: RatingStore) -> None:
        """Post-compaction hook: persist the new epoch (when configured)."""
        if self.snapshot_on_compact:
            self.write_snapshot(store)

    # -- snapshots ---------------------------------------------------------------

    def write_snapshot(self, store: RatingStore) -> dict:
        """Write the snapshot of ``store`` and prune everything older."""
        with self._lock:
            info = write_snapshot(
                store,
                self.layout.snapshot_path(store.epoch),
                base_rows=self._base_rows,
                base_reviewers=self._base_reviewers,
                fault=self._fault,
            )
            self._prune(store.epoch)
            self.last_snapshot = info
            return info

    def _prune(self, epoch: int) -> None:
        """Delete snapshots/logs of epochs before ``epoch`` (and stale tmps)."""
        for old_epoch, path in self.layout.list_snapshots():
            if old_epoch < epoch:
                path.unlink(missing_ok=True)
        for old_epoch, path in self.layout.list_wals():
            if old_epoch < epoch:
                path.unlink(missing_ok=True)
        for directory in (self.layout.snapshot_dir, self.layout.wal_dir):
            for stray in directory.glob("*.tmp"):
                stray.unlink(missing_ok=True)

    # -- reporting / lifecycle ----------------------------------------------------

    def info(self) -> dict:
        """Status payload for the ``recovery_info`` endpoint."""
        with self._lock:
            wal = self._wal
            return {
                "data_dir": str(self.layout.root),
                "wal_fsync": self.fsync_policy,
                "snapshot_on_compact": self.snapshot_on_compact,
                "active_wal_epoch": None if wal is None else int(
                    _WAL_PATTERN.match(wal.path.name).group(1)
                ),
                "active_wal_records": 0 if wal is None else wal.records_appended,
                "snapshot_epochs": [epoch for epoch, _ in self.layout.list_snapshots()],
                "wal_epochs": [epoch for epoch, _ in self.layout.list_wals()],
                "last_snapshot": self.last_snapshot,
            }

    def close(self) -> None:
        """Seal the active log (idempotent; safe after partial failures)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._wal is not None:
                self._wal.close()
                self._wal = None
