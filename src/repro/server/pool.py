"""Mining worker pool: shard independent mining work across threads.

The serving layer has three batch shapes that are embarrassingly parallel:

* independent requests arriving concurrently at the JSON API,
* the two mining tasks (Similarity + Diversity) of one explain request,
* the per-anchor loops of :class:`~repro.server.precompute.Precomputer`
  (per-item aggregates, popular-item warm-up).

:class:`MiningWorkerPool` wraps a ``ThreadPoolExecutor`` behind a small,
deterministic API.  Determinism-under-parallelism is an invariant the
property suite enforces: results are always gathered in **submission order**
(never completion order), and every mining task seeds its own generator from
the fixed seed of its :class:`~repro.config.MiningConfig`, so the schedule
can never leak into results.  A pool with ``workers <= 1`` runs every task
inline on the calling thread, so ``workers=1`` and ``workers=N`` are
bit-identical by construction.  For batch drivers that *do* need distinct
random streams per task (e.g. the serving benchmark's per-client request
generators), :func:`split_seed` derives one from ``(base_seed, task_index)``
alone — independent of worker count, chunking and completion order.

Threads (not processes) are the right grain here: the mining kernel spends
its time in numpy and large-integer bit operations, results are shared
in-process through the single-flight cache, and the store is read-only after
construction.
"""

from __future__ import annotations

import threading
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Callable, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import MiningTimeoutError, PoolError


def split_seed(base_seed: int, index: int) -> int:
    """Deterministic per-task seed derived from a base seed and a task index.

    Built on ``np.random.SeedSequence([base_seed, index])`` so the value
    depends only on the two integers — not on how many workers run, in what
    order tasks complete, or how a batch is chunked.  Sharding a seeded batch
    N ways therefore reproduces the serial run bit-for-bit.
    """
    return int(
        np.random.SeedSequence([int(base_seed), int(index)]).generate_state(
            1, dtype=np.uint32
        )[0]
    )


def split_seeds(base_seed: int, count: int) -> List[int]:
    """The first ``count`` per-task seeds of a base seed (see :func:`split_seed`)."""
    return [split_seed(base_seed, index) for index in range(count)]


class MiningWorkerPool:
    """A bounded thread pool with deterministic, submission-ordered results.

    Args:
        workers: number of worker threads; ``0`` or ``1`` disables the
            executor and runs every task inline on the calling thread.
        thread_name_prefix: prefix of worker thread names (diagnostics).
        timeout_s: per-task gather deadline in seconds (``None``: wait
            forever).  Only meaningful when ``workers > 1`` — inline pools
            finish the task inside :meth:`submit`, before any gather.
    """

    #: Backend discriminator checked by the mining call sites (the process
    #: pool's is "process"; its tasks are spec tuples, not closures).
    kind = "thread"

    def __init__(
        self,
        workers: int = 0,
        thread_name_prefix: str = "maprat-miner",
        timeout_s: Optional[float] = None,
    ) -> None:
        workers = int(workers)
        if workers < 0:
            raise PoolError("workers must be non-negative")
        if timeout_s is not None and timeout_s <= 0:
            raise PoolError("timeout_s must be positive (or None)")
        self.workers = workers
        self.timeout_s = timeout_s
        self._executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=workers, thread_name_prefix=thread_name_prefix)
            if workers > 1
            else None
        )
        self._submitted = 0
        self._shutdown = False
        self._lock = threading.Lock()

    # -- submission -----------------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True when tasks actually run on worker threads."""
        return self._executor is not None

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """Schedule one task; inline pools execute it before returning.

        Always returns a resolved-or-pending :class:`Future`, so callers are
        written once against the parallel shape and stay correct inline.
        Raises :class:`~repro.errors.PoolError` (not the executor's raw
        ``RuntimeError``) once the pool has been shut down.
        """
        with self._lock:
            if self._shutdown:
                raise PoolError("worker pool is shut down")
            self._submitted += 1
        if self._executor is None:
            future: Future = Future()
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:
                future.set_exception(exc)
            return future
        try:
            return self._executor.submit(fn, *args, **kwargs)
        except RuntimeError as exc:
            raise PoolError("worker pool is shut down") from exc

    def gather(self, future: Future) -> Any:
        """Resolve one future under the pool's deadline.

        Raises :class:`~repro.errors.MiningTimeoutError` when the task has
        not finished within ``timeout_s``.  The task itself keeps running on
        its worker thread (Python offers no safe preemption) — the gatherer
        just stops waiting, which is what bounds the *request's* latency.
        """
        try:
            return future.result(timeout=self.timeout_s)
        except FutureTimeoutError as exc:
            raise MiningTimeoutError(
                f"mining task exceeded the {self.timeout_s:g}s deadline"
            ) from exc

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` to every item; results come back in submission order.

        The first task exception propagates (remaining tasks still run to
        completion — the executor is not cancelled mid-batch).
        """
        futures = [self.submit(fn, item) for item in items]
        return [self.gather(future) for future in futures]

    def map_outcomes(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> List[Tuple[Any, Optional[BaseException]]]:
        """Like :meth:`map` but captures per-task errors instead of raising.

        Returns ``(value, None)`` or ``(None, exception)`` per item, in
        submission order — the shape the pre-computation warm-up needs to
        count failures without abandoning the rest of the batch.  A pool shut
        down mid-batch yields ``CancelledError`` outcomes for the tasks that
        could no longer be submitted, matching the executor's treatment of
        queued-but-cancelled futures.
        """
        futures: List[Optional[Future]] = []
        for item in items:
            try:
                futures.append(self.submit(fn, item))
            except PoolError:
                futures.append(None)  # shut down mid-batch: same as cancelled
        outcomes: List[Tuple[Any, Optional[BaseException]]] = []
        for future in futures:
            if future is None:
                outcomes.append((None, CancelledError("pool shut down")))
                continue
            try:
                outcomes.append((future.result(), None))
            except BaseException as exc:
                outcomes.append((None, exc))
        return outcomes

    # -- lifecycle ------------------------------------------------------------------

    @property
    def tasks_submitted(self) -> int:
        """Number of tasks accepted over the pool's lifetime."""
        with self._lock:
            return self._submitted

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop the worker threads (idempotent; inline pools are a no-op).

        ``cancel_pending=True`` cancels queued-but-unstarted tasks, bounding
        shutdown time to the tasks already in flight; their futures raise
        ``CancelledError`` to whoever gathers them.  Inline pools honour the
        same contract: later :meth:`submit` calls raise ``PoolError``.
        """
        with self._lock:
            self._shutdown = True
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=cancel_pending)

    def __enter__(self) -> "MiningWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def to_dict(self) -> dict:
        """Status payload for the ``summary`` endpoint and diagnostics."""
        return {
            "backend": "thread",
            "workers": self.workers,
            "parallel": self.parallel,
            "tasks_submitted": self.tasks_submitted,
        }
