"""Latency layer and service façade.

§2.3: "Using a combination of aggressive data pre-processing, result
pre-computation and caching techniques, the latency of MapRat is minimized."

* :mod:`repro.server.cache` — LRU (+ optional TTL) cache of mining results
  keyed by the normalised query and mining configuration,
* :mod:`repro.server.precompute` — warm-up of the cache for the most popular
  items and cheap per-item aggregates,
* :mod:`repro.server.api` — the :class:`MapRat` façade (query → mining →
  exploration → visualization, cache-aware) and the JSON endpoint handlers,
* :mod:`repro.server.app` — a dependency-free HTTP server exposing the JSON
  API and the HTML reports, standing in for the demo's web front-end.
"""

from .cache import CacheStats, ResultCache
from .precompute import ItemAggregate, Precomputer
from .api import JsonApi, MapRat
from .app import MapRatHttpServer, run_server

__all__ = [
    "CacheStats",
    "ResultCache",
    "ItemAggregate",
    "Precomputer",
    "JsonApi",
    "MapRat",
    "MapRatHttpServer",
    "run_server",
]
