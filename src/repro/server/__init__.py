"""Latency layer and service façade.

§2.3: "Using a combination of aggressive data pre-processing, result
pre-computation and caching techniques, the latency of MapRat is minimized."

* :mod:`repro.server.cache` — single-flight LRU (+ optional TTL) cache of
  mining results under canonical (item ids, interval, config) keys,
* :mod:`repro.server.pool` — the mining worker pool sharding independent
  mining tasks across threads with deterministic, submission-ordered results,
* :mod:`repro.server.procpool` — the process-parallel backend: persistent
  worker processes mining over shared-memory store snapshots (multi-core,
  epoch-aware, bit-identical to the thread and serial paths),
* :mod:`repro.server.precompute` — warm-up of the cache for the most popular
  items (optionally on a background thread) and cheap per-item aggregates,
* :mod:`repro.server.api` — the :class:`MapRat` façade (query → mining →
  exploration → visualization, cache-aware) and the JSON endpoint handlers,
* :mod:`repro.server.app` — a dependency-free HTTP server exposing the JSON
  API and the HTML reports, standing in for the demo's web front-end.
"""

from .cache import CacheStats, ResultCache, canonical_explain_key
from .pool import MiningWorkerPool, split_seed, split_seeds
from .procpool import ProcessMiningPool
from .precompute import CacheWarmer, ItemAggregate, Precomputer
from .api import JsonApi, MapRat
from .app import MapRatHttpServer, run_server

__all__ = [
    "CacheStats",
    "ResultCache",
    "canonical_explain_key",
    "MiningWorkerPool",
    "ProcessMiningPool",
    "split_seed",
    "split_seeds",
    "CacheWarmer",
    "ItemAggregate",
    "Precomputer",
    "JsonApi",
    "MapRat",
    "MapRatHttpServer",
    "run_server",
]
