"""Latency layer and service façade.

§2.3: "Using a combination of aggressive data pre-processing, result
pre-computation and caching techniques, the latency of MapRat is minimized."

* :mod:`repro.server.cache` — single-flight LRU (+ optional TTL) cache of
  mining results under canonical (item ids, interval, config) keys,
* :mod:`repro.server.pool` — the mining worker pool sharding independent
  mining tasks across threads with deterministic, submission-ordered results,
* :mod:`repro.server.procpool` — the process-parallel backend: persistent
  worker processes mining over shared-memory store snapshots (multi-core,
  epoch-aware, bit-identical to the thread and serial paths),
* :mod:`repro.server.precompute` — warm-up of the cache for the most popular
  items (optionally on a background thread) and cheap per-item aggregates,
* :mod:`repro.server.api` — the :class:`MapRat` façade (query → mining →
  exploration → visualization, cache-aware) and the JSON endpoint handlers,
* :mod:`repro.server.http_common` — the transport-agnostic request router
  shared by both HTTP edges: routing, error mapping (catch-all JSON 500),
  the numpy-aware encoder, body limits, API-key auth and rate limiting,
* :mod:`repro.server.metrics` — edge instrumentation (token buckets, the
  admission gate, per-route counters) and the Prometheus ``/metrics`` page,
* :mod:`repro.server.app` — the threaded stdlib HTTP edge (sync fallback),
* :mod:`repro.server.asyncapi` — the asyncio production HTTP tier
  (keep-alive, pipelined clients, mining offloaded via ``run_in_executor``).
"""

from .cache import CacheStats, ResultCache, canonical_explain_key
from .pool import MiningWorkerPool, split_seed, split_seeds
from .procpool import ProcessMiningPool
from .precompute import CacheWarmer, ItemAggregate, Precomputer
from .api import JsonApi, MapRat
from .http_common import (
    HttpRequest,
    HttpResponse,
    MapRatJsonEncoder,
    RequestRouter,
    json_dumps,
    parse_content_length,
)
from .metrics import AdmissionGate, HttpMetrics, TokenBucket, render_metrics
from .app import MapRatHttpServer, run_server
from .asyncapi import AsyncMapRatHttpServer, run_async_server

__all__ = [
    "CacheStats",
    "ResultCache",
    "canonical_explain_key",
    "MiningWorkerPool",
    "ProcessMiningPool",
    "split_seed",
    "split_seeds",
    "CacheWarmer",
    "ItemAggregate",
    "Precomputer",
    "JsonApi",
    "MapRat",
    "HttpRequest",
    "HttpResponse",
    "MapRatJsonEncoder",
    "RequestRouter",
    "json_dumps",
    "parse_content_length",
    "AdmissionGate",
    "HttpMetrics",
    "TokenBucket",
    "render_metrics",
    "MapRatHttpServer",
    "run_server",
    "AsyncMapRatHttpServer",
    "run_async_server",
]
