"""Operational metrics of the HTTP edge, in Prometheus text format.

The serving core has carried deterministic counters since PR 2 — cache
hits/misses/coalesced stampedes (:class:`~repro.server.cache.CacheStats`),
pool task counts, live-store ingest/compaction totals — but none of them were
scrapable.  This module adds the missing edge-side instrumentation and one
renderer that folds *all* of it into the Prometheus text exposition format
served by ``GET /metrics`` on both HTTP backends:

* :class:`HttpMetrics` — thread-safe per-route request/status/latency
  counters plus rate-limit and load-shed totals,
* :class:`TokenBucket` — the per-endpoint rate limiter behind 429 responses,
* :class:`AdmissionGate` — the bounded in-flight counter behind 503 load
  shedding,
* :func:`render_metrics` — one scrape: edge counters + cache + pool +
  live-store counters of a running :class:`~repro.server.api.MapRat` system.

Everything is stdlib-only and lock-cheap: one mutex per object, taken for a
few dict updates per request — negligible next to even a cache-hit dispatch.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from typing import Dict, Iterable, Optional, Tuple


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, bounded burst capacity.

    ``try_acquire`` never blocks — it either takes a token (returns ``0.0``)
    or returns the seconds until the next token accrues, which the HTTP edge
    surfaces as a ``Retry-After`` header on the 429 response.

    Args:
        rate: sustained tokens per second; must be positive.
        burst: bucket capacity (max tokens banked while idle); defaults to
            ``max(1, rate)`` so a limit of 0.5 rps still admits one request.
    """

    def __init__(self, rate: float, burst: Optional[float] = None) -> None:
        if rate <= 0:
            raise ValueError("token bucket rate must be positive")
        self.rate = float(rate)
        self.capacity = float(burst) if burst is not None else max(1.0, self.rate)
        self._tokens = self.capacity
        self._updated = time.monotonic()
        self._lock = threading.Lock()

    def try_acquire(self, now: Optional[float] = None) -> float:
        """Take one token if available; return seconds to wait otherwise.

        ``0.0`` means the request is admitted.  A positive return is the
        ``Retry-After`` hint: how long until one full token has accrued.
        ``now`` is injectable for deterministic tests.
        """
        now = time.monotonic() if now is None else now
        with self._lock:
            elapsed = max(0.0, now - self._updated)
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return 0.0
            return (1.0 - self._tokens) / self.rate


class AdmissionGate:
    """Bounded in-flight request counter (the 503 load-shedding gate).

    ``limit=0`` disables the gate entirely (every acquire succeeds), which is
    the correct default for in-process and test use; production deployments
    size it via ``ServerConfig.max_inflight``.  The gate is shared by every
    route that performs real work — the ops endpoints (``/health``,
    ``/version``, ``/metrics``) bypass it so the system stays observable
    under the very overload the gate exists to survive.
    """

    def __init__(self, limit: int) -> None:
        if limit < 0:
            raise ValueError("admission limit must be non-negative")
        self.limit = int(limit)
        self._inflight = 0
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        """Admit one request unless the in-flight limit is reached."""
        with self._lock:
            if self.limit and self._inflight >= self.limit:
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        """Mark one admitted request as finished."""
        with self._lock:
            if self._inflight > 0:
                self._inflight -= 1

    @property
    def inflight(self) -> int:
        """Requests currently admitted and not yet released."""
        with self._lock:
            return self._inflight


class HttpMetrics:
    """Thread-safe request counters of one HTTP edge instance.

    Counts land per ``(method, route, status)`` where ``route`` is the API
    endpoint name for ``/api/<endpoint>`` requests and the raw path for the
    HTML/ops routes, so a scrape distinguishes ``explain`` 200s from
    ``ingest`` 401s without unbounded label cardinality (unknown paths all
    collapse into ``"<unmatched>"``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests: Dict[Tuple[str, str, int], int] = defaultdict(int)
        self._latency_sum: Dict[str, float] = defaultdict(float)
        self._latency_count: Dict[str, int] = defaultdict(int)
        self._rate_limited: Dict[str, int] = defaultdict(int)
        self._watermarks: Dict[str, int] = {}
        self.load_shed_total = 0
        self.connections_total = 0

    def monotonic_total(self, name: str, value: int) -> int:
        """High-watermark of a counter sourced from rebuildable core state.

        Prometheus counters must never regress between scrapes, but the core
        objects :func:`render_metrics` reads them from (cache stats, pool
        stats, live-store stats) can be replaced by ``MapRat.compact`` or a
        backend swap, resetting their tallies.  The edge's ``HttpMetrics``
        outlives those rebuilds, so it keeps the per-series high watermark:
        a scrape reports ``max(watermark, value)`` and a post-compaction
        reset shows as a flat line instead of a counter regression (which
        Prometheus ``rate()`` would misread as a giant spike).
        """
        with self._lock:
            watermark = max(self._watermarks.get(name, 0), int(value))
            self._watermarks[name] = watermark
            return watermark

    def observe(self, method: str, route: str, status: int, seconds: float) -> None:
        """Record one completed request (any status, any route)."""
        with self._lock:
            self._requests[(method, route, int(status))] += 1
            self._latency_sum[route] += float(seconds)
            self._latency_count[route] += 1

    def record_rate_limited(self, route: str) -> None:
        """Count one 429 issued for ``route`` (also observed separately)."""
        with self._lock:
            self._rate_limited[route] += 1

    def record_load_shed(self) -> None:
        """Count one 503 issued by the admission gate."""
        with self._lock:
            self.load_shed_total += 1

    def record_connection(self) -> None:
        """Count one accepted TCP connection (keep-alive amortisation metric)."""
        with self._lock:
            self.connections_total += 1

    def snapshot(self) -> dict:
        """Plain-dict copy of every counter (tests and the summary payload)."""
        with self._lock:
            return {
                "requests": {
                    f"{method} {route} {status}": count
                    for (method, route, status), count in sorted(self._requests.items())
                },
                "latency_sum": dict(self._latency_sum),
                "latency_count": dict(self._latency_count),
                "rate_limited": dict(self._rate_limited),
                "load_shed_total": self.load_shed_total,
                "connections_total": self.connections_total,
            }

    def rows(self) -> Iterable[Tuple[str, str, int, int]]:
        """Sorted ``(method, route, status, count)`` request rows."""
        with self._lock:
            items = sorted(self._requests.items())
        return [(m, r, s, c) for (m, r, s), c in items]


def _escape_label(value: str) -> str:
    """Escape a Prometheus label value (backslash, quote, newline)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _metric(lines: list, name: str, kind: str, help_text: str) -> None:
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")


def render_metrics(system, http_metrics: HttpMetrics, edge: str) -> str:
    """One Prometheus text-format scrape of a running MapRat system.

    Folds three counter families into one page:

    * the HTTP edge (``http_metrics``): requests by method/route/status,
      per-route latency sums/counts, rate-limit and load-shed totals,
      in-flight gauge (taken from the live store of truth, the gate),
    * the serving core of ``system``: cache hits/misses/evictions/
      expirations/coalesced + entry count, worker-pool task counts,
    * the live store: epoch, rows, buffered appends, ingest/compaction
      totals.

    ``edge`` labels which backend produced the page (``sync``/``async``).
    """
    cache = system.cache.stats
    pool = system.pool.to_dict()
    store = system.live.stats()
    edge_label = _escape_label(edge)
    lines: list = []

    def counter(name: str, value: int) -> int:
        # Counter-typed series sourced from the (compaction-rebuildable)
        # serving core go through the edge-held watermark so no scrape ever
        # reports a regressing total.
        return http_metrics.monotonic_total(name, value)

    _metric(lines, "maprat_http_requests_total", "counter",
            "HTTP requests served, by method, route and status.")
    for method, route, status, count in http_metrics.rows():
        lines.append(
            'maprat_http_requests_total{method="%s",route="%s",status="%d",edge="%s"} %d'
            % (_escape_label(method), _escape_label(route), status, edge_label, count)
        )

    _metric(lines, "maprat_http_request_seconds", "summary",
            "Wall-clock seconds spent handling requests, by route.")
    snapshot = http_metrics.snapshot()
    for route, total in sorted(snapshot["latency_sum"].items()):
        label = _escape_label(route)
        lines.append(
            'maprat_http_request_seconds_sum{route="%s"} %.6f' % (label, total)
        )
        lines.append(
            'maprat_http_request_seconds_count{route="%s"} %d'
            % (label, snapshot["latency_count"].get(route, 0))
        )

    _metric(lines, "maprat_http_rate_limited_total", "counter",
            "Requests rejected with 429 by the per-endpoint token buckets.")
    for route, count in sorted(snapshot["rate_limited"].items()):
        lines.append(
            'maprat_http_rate_limited_total{route="%s"} %d'
            % (_escape_label(route), count)
        )

    _metric(lines, "maprat_http_load_shed_total", "counter",
            "Requests rejected with 503 by the admission gate.")
    lines.append("maprat_http_load_shed_total %d" % snapshot["load_shed_total"])

    _metric(lines, "maprat_http_connections_total", "counter",
            "TCP connections accepted by the edge.")
    lines.append("maprat_http_connections_total %d" % snapshot["connections_total"])

    _metric(lines, "maprat_cache_hits_total", "counter",
            "Result-cache lookups served from cache.")
    lines.append("maprat_cache_hits_total %d" % counter("cache_hits", cache.hits))
    _metric(lines, "maprat_cache_misses_total", "counter",
            "Result-cache lookups that computed (equals mining runs while "
            "computations succeed).")
    lines.append("maprat_cache_misses_total %d" % counter("cache_misses", cache.misses))
    _metric(lines, "maprat_cache_coalesced_total", "counter",
            "Duplicate concurrent computations avoided by single flight.")
    lines.append(
        "maprat_cache_coalesced_total %d" % counter("cache_coalesced", cache.coalesced)
    )
    _metric(lines, "maprat_cache_evictions_total", "counter",
            "LRU evictions beyond the cache capacity.")
    lines.append(
        "maprat_cache_evictions_total %d" % counter("cache_evictions", cache.evictions)
    )
    _metric(lines, "maprat_cache_expirations_total", "counter",
            "TTL expirations dropped on lookup.")
    lines.append(
        "maprat_cache_expirations_total %d"
        % counter("cache_expirations", cache.expirations)
    )
    _metric(lines, "maprat_cache_entries", "gauge", "Live result-cache entries.")
    lines.append("maprat_cache_entries %d" % len(system.cache))

    _metric(lines, "maprat_pool_tasks_submitted_total", "counter",
            "Mining tasks submitted to the request worker pool.")
    pool_backend = str(pool.get("backend", "thread"))
    lines.append(
        'maprat_pool_tasks_submitted_total{backend="%s"} %d'
        % (_escape_label(pool_backend),
           counter("pool_tasks_submitted:%s" % pool_backend,
                   pool.get("tasks_submitted", 0)))
    )
    _metric(lines, "maprat_pool_workers", "gauge",
            "Configured worker count of the request mining pool.")
    lines.append("maprat_pool_workers %d" % pool.get("workers", 0))

    if pool_backend == "fleet":
        members = pool.get("members", ())
        _metric(lines, "maprat_fleet_replicas", "gauge",
                "Replica factor R of the fleet backend.")
        lines.append("maprat_fleet_replicas %d" % pool.get("replicas", 0))
        _metric(lines, "maprat_fleet_workers_alive", "gauge",
                "Fleet workers currently on the consistent-hash ring.")
        lines.append(
            "maprat_fleet_workers_alive %d"
            % sum(1 for member in members if member.get("alive"))
        )
        _metric(lines, "maprat_fleet_worker_tasks_total", "counter",
                "Task round-trips completed per fleet worker.")
        for member in members:
            lines.append(
                'maprat_fleet_worker_tasks_total{worker="%s"} %d'
                % (_escape_label(str(member.get("name", ""))),
                   counter("fleet_worker_tasks:%s" % member.get("name"),
                           member.get("tasks", 0)))
            )
        _metric(lines, "maprat_fleet_worker_failures_total", "counter",
                "Transport failures attributed per fleet worker.")
        for member in members:
            lines.append(
                'maprat_fleet_worker_failures_total{worker="%s"} %d'
                % (_escape_label(str(member.get("name", ""))),
                   counter("fleet_worker_failures:%s" % member.get("name"),
                           member.get("failures", 0)))
            )
        _metric(lines, "maprat_fleet_failovers_total", "counter",
                "Tasks retried on a replica after a worker fault.")
        lines.append(
            "maprat_fleet_failovers_total %d"
            % counter("fleet_failovers", pool.get("failovers", 0))
        )
        _metric(lines, "maprat_fleet_heartbeat_failures_total", "counter",
                "Heartbeat probes that found a worker unresponsive.")
        lines.append(
            "maprat_fleet_heartbeat_failures_total %d"
            % counter("fleet_heartbeat_failures",
                      pool.get("heartbeat_failures", 0))
        )
        _metric(lines, "maprat_fleet_bytes_shipped_total", "counter",
                "Packed segment bytes shipped to fleet workers.")
        lines.append(
            "maprat_fleet_bytes_shipped_total %d"
            % counter("fleet_bytes_shipped", pool.get("bytes_shipped", 0))
        )

    _metric(lines, "maprat_store_epoch", "gauge",
            "Current serving epoch (bumped by compactions).")
    lines.append("maprat_store_epoch %d" % store.get("epoch", 0))
    _metric(lines, "maprat_store_rows", "gauge",
            "Rating rows in the compacted serving snapshot.")
    lines.append("maprat_store_rows %d" % store.get("rows", 0))
    _metric(lines, "maprat_store_buffered", "gauge",
            "Accepted ratings buffered and not yet compacted.")
    lines.append("maprat_store_buffered %d" % store.get("buffered", 0))
    _metric(lines, "maprat_ingest_accepted_total", "counter",
            "Ratings accepted by the live store since start.")
    lines.append(
        "maprat_ingest_accepted_total %d"
        % counter("ingest_accepted", store.get("accepted_total", 0))
    )
    _metric(lines, "maprat_ingest_duplicates_total", "counter",
            "Duplicate ratings absorbed by the live store since start.")
    lines.append(
        "maprat_ingest_duplicates_total %d"
        % counter("ingest_duplicates", store.get("duplicates_total", 0))
    )
    _metric(lines, "maprat_compactions_total", "counter",
            "Epoch turnovers performed by the live store since start.")
    lines.append(
        "maprat_compactions_total %d" % counter("compactions", store.get("compactions", 0))
    )

    _metric(lines, "maprat_edge_info", "gauge",
            "Static info about the serving edge (value is always 1).")
    lines.append('maprat_edge_info{edge="%s"} 1' % edge_label)
    return "\n".join(lines) + "\n"
