"""Threaded stdlib HTTP front-end (the sync fallback edge).

The demo exposes "a web based front-end that allows a user to enter one or
more items" (§3.1).  This module serves those interactions over plain
``http.server`` with one OS thread per connection — the simple, debuggable
edge.  The production tier is the asyncio server in
:mod:`repro.server.asyncapi`; both edges are thin transports over the same
:class:`~repro.server.http_common.RequestRouter`, so routing, error mapping
(catch-all JSON 500 — a request can never end without a response), the
numpy-aware encoder, body-size limits, API-key auth, rate limiting and the
ops endpoints (``/health``/``/version``/``/metrics``) behave identically and
are fixed in one place.

Routes:

* ``GET /``                       — landing page with the dataset summary,
* ``GET /explain?q=...``          — the Figure-2 HTML report,
* ``GET /explore?q=...&task=...&group=N`` — the Figure-3 HTML report,
* ``GET /choropleth?q=...&task=...`` — the Figure-2 map as a raw SVG image,
* ``GET /api/<endpoint>?...`` (+ ``POST`` with a JSON body) — the JSON API,
* ``GET /health`` / ``/version`` / ``/metrics`` — ops endpoints.

The handler speaks **HTTP/1.1 with keep-alive** (``protocol_version``): the
stdlib default of HTTP/1.0 silently forced a fresh TCP connection per
request, which wrecked every socket-level benchmark.  ``Content-Length`` is
sent on every response, which HTTP/1.1 persistence requires.

The server runs on a background thread (:meth:`MapRatHttpServer.start`) so
integration tests and the web example can drive it without blocking.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..config import PipelineConfig
from ..data.model import RatingDataset
from ..errors import ServerError
from .api import JsonApi, MapRat
from .http_common import HttpRequest, HttpResponse, RequestRouter, parse_content_length


class _Handler(BaseHTTPRequestHandler):
    """Thin socket adapter binding one connection to the shared router."""

    server_version = "MapRat/1.0"
    #: HTTP/1.1 enables keep-alive: without it every request paid TCP (and
    #: thread) setup, invisibly serialising socket-level benchmarks.
    protocol_version = "HTTP/1.1"
    #: TCP_NODELAY: headers and body go out as two writes; with Nagle on,
    #: the second segment waits for the client's delayed ACK (~40ms per
    #: keep-alive response).  The asyncio transport disables Nagle too.
    disable_nagle_algorithm = True

    # Provided by MapRatHttpServer via the class attribute trick below.
    router: RequestRouter

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        """Silence per-request logging (tests and demos stay clean)."""

    def setup(self) -> None:
        """Count the accepted connection (keep-alive amortisation metric)."""
        super().setup()
        self.router.metrics.record_connection()

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        """One GET request through the shared pipeline."""
        self._respond("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        """One JSON-body POST through the shared pipeline.

        Body keys merge over query parameters; non-string values (e.g. the
        ``ratings`` array of ``ingest_batch`` or a nested ``reviewer``
        record) pass through to the handler as-is, so clients post
        structured JSON instead of URL-encoding it.
        """
        self._respond("POST")

    def _respond(self, method: str) -> None:
        """Read the (validated) body, run the router, write the response."""
        router = self.router
        try:
            length = parse_content_length(
                self.headers.get("Content-Length"), router.max_body_bytes
            )
        except ServerError as exc:
            # The body was never read, so the connection cannot be reused —
            # but the client still gets its 400/413 instead of a dead socket.
            self._write(router.reject(self.path, exc, close=True))
            return
        body = self.rfile.read(length) if length else b""
        request = HttpRequest(
            method=method,
            target=self.path,
            headers={name.lower(): value for name, value in self.headers.items()},
            body=body,
        )
        self._write(router.respond(request))

    def _write(self, response: HttpResponse) -> None:
        if response.close:
            self.close_connection = True
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)


class MapRatHttpServer:
    """Background-thread HTTP server around one MapRat system."""

    def __init__(
        self,
        system: MapRat,
        host: Optional[str] = None,
        port: Optional[int] = None,
        owns_system: bool = False,
    ) -> None:
        self.system = system
        self.host = host if host is not None else system.config.server.host
        self.port = port if port is not None else system.config.server.port
        self.owns_system = owns_system
        self.router = RequestRouter(
            system, JsonApi(system), system.config.server, edge="sync"
        )
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Start serving on a daemon thread; returns the bound (host, port)."""
        handler = type("BoundHandler", (_Handler,), {"router": self.router})
        self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        self.host, self.port = self._httpd.server_address[0], self._httpd.server_address[1]
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return (self.host, self.port)

    def stop(self) -> None:
        """Shut the server down and join the serving thread.

        Also closes the MapRat system's worker pools when this server owns
        the system (``run_server`` builds one per server); externally supplied
        systems are left running for their owner.  Handler threads are daemon
        (stock ``ThreadingHTTPServer``), so stop() stays bounded even while a
        long request is in flight; such a request may then fail with a clean
        ``PoolError`` from the closed pools, which the JSON layer reports as
        an error payload.
        """
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self.owns_system:
            self.system.close()

    def __enter__(self) -> "MapRatHttpServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def url(self) -> str:
        """Base URL of the bound server (``http://host:port``)."""
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Blocking serve loop for the CLI example (Ctrl-C to stop)."""
        if self._httpd is None:
            self.start()
        assert self._httpd is not None
        try:
            self._thread.join()  # type: ignore[union-attr]
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            self.stop()


def run_server(
    dataset: RatingDataset,
    config: Optional[PipelineConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    warm_up: int = 0,
    http_backend: Optional[str] = None,
):
    """Build a MapRat system over ``dataset`` and start serving it.

    Args:
        dataset: the collaborative rating dataset to serve.
        config: pipeline configuration (defaults apply when omitted).
        host: bind address.
        port: bind port; 0 picks a free ephemeral port.
        warm_up: when positive, pre-compute explanations for that many popular
            items.  With ``server.warm_in_background`` (the default) the
            warm-up runs on a background thread and the server starts serving
            immediately — early requests for an item the warmer is currently
            mining coalesce with it through the single-flight cache.  Set the
            config flag to False to block until the cache is warm.
        http_backend: ``"sync"`` (threaded stdlib edge) or ``"async"`` (the
            asyncio production tier, :class:`~repro.server.asyncapi.
            AsyncMapRatHttpServer`); ``None`` follows
            ``ServerConfig.http_backend``.  Both serve identical routes and
            byte-identical JSON.
    """
    from .asyncapi import AsyncMapRatHttpServer  # local: avoid a cycle at import

    system = MapRat.for_dataset(dataset, config)
    backend = http_backend or system.config.server.http_backend
    if backend not in ("sync", "async"):
        system.close()
        raise ServerError(
            f"unknown http_backend {backend!r}; expected 'sync' or 'async'"
        )
    server_cls = AsyncMapRatHttpServer if backend == "async" else MapRatHttpServer
    server = server_cls(system, host=host, port=port, owns_system=True)
    try:
        if warm_up:
            if system.config.server.warm_in_background:
                system.start_warmer(limit=warm_up)
            else:
                system.warm_up(limit=warm_up)
        server.start()
    except BaseException:
        system.close()  # don't leak the pools when startup fails
        raise
    return server
