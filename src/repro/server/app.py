"""Dependency-free HTTP front-end standing in for the demo's web UI.

The demo exposes "a web based front-end that allows a user to enter one or
more items" (§3.1).  This module serves the same interactions over plain
``http.server``:

* ``GET /``                       — landing page with the dataset summary and
  a form that links to the HTML explanation report,
* ``GET /explain?q=...``          — the Figure-2 HTML report,
* ``GET /explore?q=...&task=...&group=N`` — the Figure-3 HTML report,
* ``GET /choropleth?q=...&task=...`` — the Figure-2 map as a raw SVG image,
* ``GET /api/<endpoint>?...``     — the JSON API (summary, suggest, explain,
  statistics, drilldown, timeline, warmup, geo_summary, geo_drilldown,
  geo_explain, choropleth).

The server runs on a background thread (:meth:`MapRatHttpServer.start`) so the
integration tests and the web example can drive it with ``urllib`` without
blocking.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse
from xml.sax.saxutils import escape

from ..config import PipelineConfig
from ..data.model import RatingDataset
from ..errors import MapRatError, ServerError
from .api import JsonApi, MapRat

_LANDING_TEMPLATE = """<!DOCTYPE html>
<html><head><meta charset="utf-8"/><title>MapRat</title>
<style>body{{font-family:Helvetica,Arial,sans-serif;margin:32px;max-width:720px}}
input,select{{font-size:14px;padding:4px}}</style></head>
<body>
<h1>MapRat</h1>
<p>Meaningful explanation, interactive exploration and geo-visualization of
collaborative ratings.</p>
<form action="/explain" method="get">
  <input name="q" size="48" placeholder='title:&quot;Toy Story&quot; or genre:Thriller AND director:&quot;Steven Spielberg&quot;"/>
  <button type="submit">Explain Ratings</button>
</form>
<h2>Dataset</h2>
<pre>{summary}</pre>
<h2>Endpoints</h2>
<ul>
<li><code>/explain?q=…</code> — explanation report (Figure 2)</li>
<li><code>/explore?q=…&amp;task=similarity&amp;group=0</code> — exploration report (Figure 3)</li>
<li><code>/choropleth?q=…&amp;task=similarity</code> — the Figure-2 map as SVG</li>
<li><code>/api/explain?q=…</code>, <code>/api/drilldown?…</code>, <code>/api/timeline?…</code> — JSON API</li>
<li><code>/api/geo_summary</code>, <code>/api/geo_drilldown?region=CA</code>,
    <code>/api/geo_explain?q=…&amp;region=CA</code> — geo-visualization API</li>
<li><code>POST /api/ingest</code>, <code>POST /api/ingest_batch</code>,
    <code>/api/store_stats</code>, <code>/api/compact</code> — live ingestion API</li>
</ul>
</body></html>
"""


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one MapRat system via the server instance."""

    server_version = "MapRat/1.0"

    # Provided by MapRatHttpServer via the class attribute trick below.
    system: MapRat
    api: JsonApi

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        """Silence per-request logging (tests and demos stay clean)."""

    # -- routing -----------------------------------------------------------------

    def _query_params(self, parsed) -> dict:
        return {key: values[0] for key, values in parse_qs(parsed.query).items()}

    def _dispatch_api(self, parsed, params: dict) -> None:
        """Route one ``/api/<endpoint>`` request and send the JSON payload."""
        endpoint = parsed.path[len("/api/"):]
        self._send_json(200, self.api.dispatch(endpoint, params))

    def _guarded(self, handle) -> None:
        """Run one request handler with the shared error-to-JSON mapping."""
        try:
            handle()
        except ServerError as exc:
            self._send_json(exc.status, {"error": str(exc)})
        except MapRatError as exc:
            self._send_json(400, {"error": str(exc)})

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        params = self._query_params(parsed)
        self._guarded(lambda: self._route_get(parsed, params))

    def _route_get(self, parsed, params: dict) -> None:
        if parsed.path == "/" or parsed.path == "/index.html":
            self._send_html(self._landing_page())
        elif parsed.path == "/explain":
            query = params.get("q", "")
            if not query:
                raise ServerError("missing required parameter 'q'", status=400)
            self._send_html(self.system.explanation_html(query))
        elif parsed.path == "/explore":
            query = params.get("q", "")
            if not query:
                raise ServerError("missing required parameter 'q'", status=400)
            task = params.get("task", "similarity")
            try:
                group = int(params.get("group", "0"))
            except ValueError:
                raise ServerError("parameter 'group' must be an integer", status=400)
            self._send_html(
                self.system.exploration_html(query, task=task, group_index=group)
            )
        elif parsed.path == "/choropleth":
            query = params.get("q", "")
            if not query:
                raise ServerError("missing required parameter 'q'", status=400)
            payload = self.api.dispatch("choropleth", params)
            self._send_svg(payload["svg"])
        elif parsed.path.startswith("/api/"):
            self._dispatch_api(parsed, params)
        else:
            raise ServerError(f"unknown path {parsed.path!r}", status=404)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        """JSON-body POST to any ``/api/<endpoint>`` (the write-path verbs).

        Body keys merge over query parameters; non-string values (e.g. the
        ``ratings`` array of ``ingest_batch`` or a nested ``reviewer``
        record) pass through to the handler as-is, so clients post
        structured JSON instead of URL-encoding it.
        """
        parsed = urlparse(self.path)
        params = self._query_params(parsed)
        self._guarded(lambda: self._route_post(parsed, params))

    def _route_post(self, parsed, params: dict) -> None:
        if not parsed.path.startswith("/api/"):
            raise ServerError(f"unknown path {parsed.path!r}", status=404)
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            try:
                body = json.loads(self.rfile.read(length).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServerError(
                    f"request body must be a JSON object: {exc}", status=400
                ) from exc
            if not isinstance(body, dict):
                raise ServerError("request body must be a JSON object", status=400)
            params.update(body)
        self._dispatch_api(parsed, params)

    # -- responses ----------------------------------------------------------------

    def _landing_page(self) -> str:
        summary = json.dumps(self.system.summary(), indent=2)
        return _LANDING_TEMPLATE.format(summary=escape(summary))

    def _send(self, body: str, content_type: str, status: int = 200) -> None:
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _send_html(self, body: str, status: int = 200) -> None:
        self._send(body, "text/html", status)

    def _send_svg(self, body: str, status: int = 200) -> None:
        self._send(body, "image/svg+xml", status)

    def _send_json(self, status: int, payload: dict) -> None:
        self._send(json.dumps(payload), "application/json", status)


class MapRatHttpServer:
    """Background-thread HTTP server around one MapRat system."""

    def __init__(
        self,
        system: MapRat,
        host: Optional[str] = None,
        port: Optional[int] = None,
        owns_system: bool = False,
    ) -> None:
        self.system = system
        self.host = host if host is not None else system.config.server.host
        self.port = port if port is not None else system.config.server.port
        self.owns_system = owns_system
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Start serving on a daemon thread; returns the bound (host, port)."""
        handler = type(
            "BoundHandler",
            (_Handler,),
            {"system": self.system, "api": JsonApi(self.system)},
        )
        self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        self.host, self.port = self._httpd.server_address[0], self._httpd.server_address[1]
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return (self.host, self.port)

    def stop(self) -> None:
        """Shut the server down and join the serving thread.

        Also closes the MapRat system's worker pools when this server owns
        the system (``run_server`` builds one per server); externally supplied
        systems are left running for their owner.  Handler threads are daemon
        (stock ``ThreadingHTTPServer``), so stop() stays bounded even while a
        long request is in flight; such a request may then fail with a clean
        ``PoolError`` from the closed pools, which the JSON layer reports as
        an error payload.
        """
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self.owns_system:
            self.system.close()

    def __enter__(self) -> "MapRatHttpServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def url(self) -> str:
        """Base URL of the bound server (``http://host:port``)."""
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Blocking serve loop for the CLI example (Ctrl-C to stop)."""
        if self._httpd is None:
            self.start()
        assert self._httpd is not None
        try:
            self._thread.join()  # type: ignore[union-attr]
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            self.stop()


def run_server(
    dataset: RatingDataset,
    config: Optional[PipelineConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    warm_up: int = 0,
) -> MapRatHttpServer:
    """Build a MapRat system over ``dataset`` and start serving it.

    Args:
        dataset: the collaborative rating dataset to serve.
        config: pipeline configuration (defaults apply when omitted).
        host: bind address.
        port: bind port; 0 picks a free ephemeral port.
        warm_up: when positive, pre-compute explanations for that many popular
            items.  With ``server.warm_in_background`` (the default) the
            warm-up runs on a background thread and the server starts serving
            immediately — early requests for an item the warmer is currently
            mining coalesce with it through the single-flight cache.  Set the
            config flag to False to block until the cache is warm.
    """
    system = MapRat.for_dataset(dataset, config)
    server = MapRatHttpServer(system, host=host, port=port, owns_system=True)
    try:
        if warm_up:
            if system.config.server.warm_in_background:
                system.start_warmer(limit=warm_up)
            else:
                system.warm_up(limit=warm_up)
        server.start()
    except BaseException:
        system.close()  # don't leak the pools when startup fails
        raise
    return server
