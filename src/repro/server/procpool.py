"""Process-parallel mining pool over shared-memory store snapshots.

:class:`~repro.server.pool.MiningWorkerPool` shards mining across threads,
which PR-3's benchmarks measured as GIL-bound (~1× speedup on the mining
fan-out).  This module is the true-parallel backend behind
``ServerConfig.mining_backend="process"``:

* **Persistent workers.**  ``workers`` processes are spawned once (lazily, on
  the first :meth:`ProcessMiningPool.publish`) and live for the pool's
  lifetime; each runs :func:`_worker_main`, a loop over its private task
  queue.  ``workers <= 1`` runs every task inline in the serving process
  through the *same* spec executor, so the inline and parallel paths can
  never drift.
* **Epoch-tagged attach cache.**  Publishing a store epoch exports its numpy
  parts once into shared memory (:class:`~repro.data.shm.SharedStoreExport`)
  and broadcasts the manifest; each worker attaches zero-copy via
  ``RatingStore._from_parts`` and caches the attached store by epoch, so a
  task message carries only a tiny spec tuple — never row data.
* **Submission-ordered scatter-gather.**  Tasks are scattered round-robin
  over the per-worker queues and gathered through futures in submission
  order; every mining task seeds its own generator from the fixed seed of
  its :class:`~repro.config.MiningConfig` (batch drivers that need distinct
  streams reuse :func:`~repro.server.pool.split_seed` exactly as the thread
  backend does), so the process schedule can never leak into results —
  process, thread and serial paths are bit-identical for a fixed seed.
* **Drain-then-retire epochs.**  A compaction publishes the new epoch's
  segment *before* the serving state swaps; the superseded epoch keeps its
  segment until its in-flight tasks drain, then the segment is unlinked and
  workers detach.  A task submitted for a retired epoch raises
  :class:`~repro.errors.StaleEpochError`; the façade retries it once against
  the current epoch.  Readers therefore never see a torn store.

The pool is thread-safe: concurrent request threads (and the warm-up's
thread pool) submit specs freely; a dedicated collector thread resolves
futures from the shared result queue.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import EmptyRatingSetError, MiningTimeoutError, PoolError, StaleEpochError
from .pool import split_seed, split_seeds  # re-exported: one seed-splitting scheme

__all__ = ["ProcessMiningPool", "split_seed", "split_seeds"]

#: Mining-task spec kinds understood by the worker executor.
_MINE_KINDS = ("similarity", "diversity")
_EXPLAIN_REGION = "explain_region"

#: Module-level caches of one worker process (never used in the parent).
_worker_hierarchy = None


def _explorer_for(epoch: int, store, config, explorers: Dict[int, Any]):
    """The worker's per-epoch GeoExplorer (hierarchy shared across epochs)."""
    global _worker_hierarchy
    explorer = explorers.get(epoch)
    if explorer is None:
        from ..core.miner import RatingMiner
        from ..geo.explorer import GeoExplorer
        from ..geo.hierarchy import LocationHierarchy

        if _worker_hierarchy is None:
            _worker_hierarchy = LocationHierarchy()
        explorer = GeoExplorer(RatingMiner(store, config), hierarchy=_worker_hierarchy)
        explorers[epoch] = explorer
    return explorer


def _execute_spec(spec: tuple, stores: Dict[int, Any], explorers: Dict[int, Any]):
    """Run one mining spec against the attached store of its epoch.

    The one executor shared by worker processes and the inline (``workers <=
    1``) path.  Specs are small picklable tuples:

    * ``("similarity"|"diversity", epoch, item_ids, interval, region, config)``
      → an :class:`~repro.core.explanation.Explanation`; ``region`` restricts
      the slice to one state's tuples first (the geo-explain shape).
    * ``("explain_region", epoch, item_ids, interval, region, config,
      description)`` → a full :class:`~repro.geo.explorer.GeoMiningResult`
      (the per-region fan-out shape).
    """
    kind = spec[0]
    epoch = int(spec[1])
    store = stores.get(epoch)
    if store is None:
        raise StaleEpochError(f"no store attached for epoch {epoch}")
    if kind in _MINE_KINDS:
        _, _, item_ids, interval, region, config = spec
        from ..core.miner import RatingMiner

        miner = RatingMiner(store, config)
        if region is None:
            rating_slice = store.slice_for_items(item_ids, time_interval=interval)
        else:
            explorer = _explorer_for(epoch, store, config, explorers)
            rating_slice = explorer._region_slice(
                region, None if item_ids is None else list(item_ids), interval
            )
            if rating_slice is None:
                raise EmptyRatingSetError(
                    f"region {region!r} has no ratings for this selection"
                )
        if kind == "similarity":
            return miner.mine_similarity(rating_slice, config)
        return miner.mine_diversity(rating_slice, config)
    if kind == _EXPLAIN_REGION:
        _, _, item_ids, interval, region, config, description = spec
        explorer = _explorer_for(epoch, store, config, explorers)
        return explorer.explain_region(
            None if item_ids is None else list(item_ids),
            region,
            description=description,
            time_interval=interval,
            config=config,
            pool=None,
        )
    raise PoolError(f"unknown mining spec kind {kind!r}")


def _worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Loop of one persistent worker process.

    Messages: ``("attach", manifest)`` maps an epoch's shared segment into
    the epoch cache, ``("detach", epoch)`` unmaps it, ``("task", task_id,
    spec)`` executes one spec, ``("stop",)`` exits.  Payloads are pickled
    **in the worker** and shipped as bytes, so serialization happens exactly
    once and a pathological payload can never wedge the queue's feeder
    thread and orphan the parent's future.

    An attach may arrive for an epoch that was already retired and unlinked
    (the parent drains a superseded epoch as soon as its in-flight count
    hits zero, without waiting for slow or still-booting workers to consume
    the earlier attach); that is benign — the segment is gone, no task for
    the epoch can be submitted anymore, and the queued detach that follows
    is a no-op — so a failed attach is skipped, never fatal.
    """
    from ..data.shm import attach_store, detach_store
    from ..errors import DataError

    stores: Dict[int, Any] = {}
    explorers: Dict[int, Any] = {}
    while True:
        message = task_queue.get()
        tag = message[0]
        if tag == "stop":
            break
        if tag == "attach":
            manifest = message[1]
            if manifest.epoch not in stores:
                try:
                    stores[manifest.epoch] = attach_store(manifest)
                except DataError:
                    pass  # epoch already retired before we got here
            continue
        if tag == "detach":
            store = stores.pop(message[1], None)
            explorers.pop(message[1], None)
            if store is not None:
                detach_store(store)
            continue
        _, task_id, spec = message
        try:
            payload: Any = _execute_spec(spec, stores, explorers)
            ok = True
        except BaseException as exc:
            payload, ok = exc, False
        try:
            blob = pickle.dumps(payload)
        except Exception:
            blob = pickle.dumps(
                PoolError(
                    f"worker {worker_id}: unpicklable "
                    f"{'result' if ok else 'error'} "
                    f"{type(payload).__name__}: {payload}"
                )
            )
            ok = False
        result_queue.put(("done", worker_id, task_id, ok, blob))
    for store in stores.values():
        detach_store(store)


class ProcessMiningPool:
    """Persistent worker processes mining over shared-memory snapshots.

    Mirrors the :class:`~repro.server.pool.MiningWorkerPool` contract where
    the two overlap (submission-ordered gathering, ``PoolError`` after
    shutdown, inline execution at ``workers <= 1``) but accepts **spec
    tuples** instead of closures — closures cannot cross a process boundary.
    Callers branch on ``pool.kind == "process"``.

    Args:
        workers: worker-process count; ``0``/``1`` executes every spec inline
            in the calling thread (bit-identical by construction — same
            executor, same store objects).
        start_method: multiprocessing start method; the default ``"spawn"``
            is safe under the serving layer's threads (``fork`` would clone
            lock state into children).
        timeout_s: per-task gather deadline in seconds (``None``: wait
            forever).  Only meaningful when ``workers > 1`` — inline pools
            resolve the future inside :meth:`submit`, before any gather.
    """

    kind = "process"

    def __init__(
        self,
        workers: int = 0,
        start_method: str = "spawn",
        timeout_s: Optional[float] = None,
    ) -> None:
        workers = int(workers)
        if workers < 0:
            raise PoolError("workers must be non-negative")
        if timeout_s is not None and timeout_s <= 0:
            raise PoolError("timeout_s must be positive (or None)")
        self.workers = workers
        self.timeout_s = timeout_s
        self._ctx = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()
        self._shutdown = False
        self._submitted = 0
        self._next_task_id = 0
        self._procs: List[Any] = []
        self._task_queues: List[Any] = []
        self._result_queue: Optional[Any] = None
        self._collector: Optional[threading.Thread] = None
        self._futures: Dict[int, Future] = {}
        self._task_epochs: Dict[int, int] = {}
        self._inflight: Dict[int, int] = {}
        self._exports: Dict[int, Any] = {}  # epoch -> SharedStoreExport
        self._stores: Dict[int, Any] = {}  # inline mode: epoch -> RatingStore
        self._explorers: Dict[int, Any] = {}  # inline mode explorer cache
        self._retiring: set = set()
        self._current_epoch: Optional[int] = None
        self._broken: Optional[str] = None
        self._monitor: Optional[threading.Thread] = None

    # -- lifecycle / epochs -----------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True when specs run on worker processes (``workers > 1``)."""
        return self.workers > 1

    @property
    def current_epoch(self) -> Optional[int]:
        """The most recently published epoch (None before the first publish)."""
        return self._current_epoch

    def _live_epoch_map(self) -> Dict[int, Any]:
        return self._exports if self.parallel else self._stores

    def _ensure_started_locked(self) -> None:
        if self._procs or not self.parallel:
            return
        self._result_queue = self._ctx.Queue()
        for worker_id in range(self.workers):
            queue = self._ctx.Queue()
            process = self._ctx.Process(
                target=_worker_main,
                args=(worker_id, queue, self._result_queue),
                name=f"maprat-proc-{worker_id}",
                daemon=True,
            )
            process.start()
            self._task_queues.append(queue)
            self._procs.append(process)
        self._collector = threading.Thread(
            target=self._collect,
            args=(self._result_queue,),
            name="maprat-proc-collector",
            daemon=True,
        )
        self._collector.start()
        self._monitor = threading.Thread(
            target=self._watch_workers,
            args=(list(self._procs),),
            name="maprat-proc-monitor",
            daemon=True,
        )
        self._monitor.start()

    def publish(self, store, retire_previous: bool = True) -> int:
        """Export a store epoch to the workers and make it submittable.

        The new epoch's segment is created and broadcast *before* this call
        returns, so the caller can atomically swap its serving state right
        after — a request grabbing the new state can submit immediately.
        With ``retire_previous`` (the default) every older epoch is marked
        retiring and its segment is unlinked (workers detach) as soon as its
        in-flight tasks drain.  A caller that still serves the old epoch
        between publish and its own state swap passes ``False`` and calls
        :meth:`retire_older` *after* the swap — otherwise a request could be
        told its epoch is stale while the current serving state still points
        at it, making the stale-epoch retry spin.  Publishing the current
        epoch again is a no-op (idempotent across no-op compactions).

        The segment export (a full-store memcpy) runs outside the pool lock,
        so concurrent submissions to live epochs are never blocked behind an
        epoch turnover.
        """
        epoch = int(store.epoch)
        with self._lock:
            if self._shutdown:
                raise PoolError("process mining pool is shut down")
            if epoch == self._current_epoch:
                return epoch
            parallel = self.parallel
        export = None
        if parallel:
            from ..data.shm import SharedStoreExport

            export = SharedStoreExport(store)
        with self._lock:
            if self._shutdown:
                if export is not None:
                    export.release()
                raise PoolError("process mining pool is shut down")
            if epoch == self._current_epoch:  # raced duplicate publish
                if export is not None:
                    export.release()
                return epoch
            if parallel:
                self._ensure_started_locked()
                self._exports[epoch] = export
                for queue in self._task_queues:
                    queue.put(("attach", export.manifest))
            else:
                self._stores[epoch] = store
            previous = self._current_epoch
            self._current_epoch = epoch
            if previous is not None and retire_previous:
                self._retiring.add(previous)
            self._drain_retired_locked()
            return epoch

    def retire_older(self, epoch: int) -> None:
        """Mark every live epoch older than ``epoch`` retiring; drain if idle.

        The second half of the publish-before-swap protocol: call after the
        serving-state swap so a stale-epoch rejection can only ever be
        answered by a retry that observes the *new* serving state.
        """
        with self._lock:
            for live in list(self._live_epoch_map()):
                if live < int(epoch):
                    self._retiring.add(live)
            self._drain_retired_locked()

    def _drain_retired_locked(self) -> None:
        """Unlink every retiring epoch whose in-flight tasks have drained."""
        for epoch in sorted(self._retiring):
            if self._inflight.get(epoch, 0) > 0:
                continue
            self._retiring.discard(epoch)
            if self.parallel:
                export = self._exports.pop(epoch, None)
                for queue in self._task_queues:
                    queue.put(("detach", epoch))
                if export is not None:
                    export.release()
            else:
                self._stores.pop(epoch, None)
                self._explorers.pop(epoch, None)

    # -- submission -------------------------------------------------------------------

    def submit(self, spec: tuple) -> Future:
        """Schedule one mining spec; returns a future resolving to its result.

        Raises :class:`~repro.errors.PoolError` after shutdown and
        :class:`~repro.errors.StaleEpochError` when the spec's epoch is no
        longer exported (superseded and drained) — callers holding a
        pre-compaction serving state retry against the current one.
        """
        future: Future = Future()
        with self._lock:
            if self._shutdown:
                raise PoolError("process mining pool is shut down")
            if self._broken is not None:
                raise PoolError(self._broken)
            epoch = int(spec[1])
            if epoch not in self._live_epoch_map():
                raise StaleEpochError(
                    f"epoch {epoch} is not exported "
                    f"(current epoch: {self._current_epoch})"
                )
            self._submitted += 1
            if self.parallel:
                task_id = self._next_task_id
                self._next_task_id += 1
                self._futures[task_id] = future
                self._task_epochs[task_id] = epoch
                self._inflight[epoch] = self._inflight.get(epoch, 0) + 1
                self._task_queues[task_id % self.workers].put(("task", task_id, spec))
                return future
        # Inline mode executes outside the lock; the store reference was
        # validated above and stays alive for the duration of the call even
        # if a publish retires the epoch concurrently.
        try:
            future.set_result(_execute_spec(spec, self._stores, self._explorers))
        except BaseException as exc:
            future.set_exception(exc)
        return future

    def gather(self, future: Future) -> Any:
        """Resolve one future under the pool's deadline.

        Raises :class:`~repro.errors.MiningTimeoutError` when the task has
        not finished within ``timeout_s``.  The worker keeps executing the
        task (its result is dropped by the abandoned future) — the gatherer
        just stops waiting, which is what bounds the *request's* latency.
        """
        try:
            return future.result(timeout=self.timeout_s)
        except FutureTimeoutError as exc:
            raise MiningTimeoutError(
                f"mining task exceeded the {self.timeout_s:g}s deadline"
            ) from exc

    def map(self, specs: Sequence[tuple]) -> List[Any]:
        """Run many specs; results come back in submission order.

        The first task exception propagates after scatter (remaining tasks
        still run to completion), matching the thread pool's ``map``.
        """
        futures = [self.submit(spec) for spec in specs]
        return [self.gather(future) for future in futures]

    def mine_pair(
        self,
        epoch: int,
        item_ids: Optional[Sequence[int]],
        time_interval: Optional[Tuple[int, int]],
        config,
        region: Optional[str] = None,
    ) -> Tuple[Any, Any]:
        """Scatter one selection's SM + DM as two tasks; gather both.

        The shape behind ``RatingMiner.explain_items`` and
        ``GeoExplorer.explain_region``: the two mining tasks of one request
        run on two workers concurrently.  ``region`` carries the canonical
        state code for within-region mining (``config`` must then already be
        the region-adapted configuration, exactly what the serial path
        mines with).
        """
        ids = None if item_ids is None else tuple(int(i) for i in item_ids)
        interval = (
            None
            if time_interval is None
            else (int(time_interval[0]), int(time_interval[1]))
        )
        similarity_future = self.submit(
            ("similarity", int(epoch), ids, interval, region, config)
        )
        diversity_future = self.submit(
            ("diversity", int(epoch), ids, interval, region, config)
        )
        return self.gather(similarity_future), self.gather(diversity_future)

    def explain_regions(
        self,
        epoch: int,
        item_ids: Optional[Sequence[int]],
        regions: Sequence[str],
        description: str,
        time_interval: Optional[Tuple[int, int]],
        config,
    ) -> List[Any]:
        """One full within-region mining task per region, submission-ordered."""
        ids = None if item_ids is None else tuple(int(i) for i in item_ids)
        interval = (
            None
            if time_interval is None
            else (int(time_interval[0]), int(time_interval[1]))
        )
        return self.map(
            [
                (_EXPLAIN_REGION, int(epoch), ids, interval, region, config, description)
                for region in regions
            ]
        )

    # -- gathering --------------------------------------------------------------------

    def _watch_workers(self, procs: List[Any]) -> None:
        """Fail outstanding futures if a worker process dies unexpectedly.

        Without this, a crashed worker (OOM-kill, a spawn that could not
        re-import the parent's ``__main__``) would leave its futures
        unresolved and every gatherer blocked forever.  An unexpected death
        marks the pool broken: outstanding futures fail with
        :class:`~repro.errors.PoolError` and later submissions are refused.
        """
        from multiprocessing.connection import wait as wait_sentinels

        while True:
            wait_sentinels([process.sentinel for process in procs])
            with self._lock:
                if self._shutdown:
                    return
                dead = [p for p in procs if not p.is_alive()]
                if not dead:
                    continue
                codes = sorted({p.exitcode for p in dead})
                self._broken = (
                    f"{len(dead)} mining worker process(es) died "
                    f"unexpectedly (exit codes {codes})"
                )
                futures = list(self._futures.values())
                self._futures.clear()
                self._task_epochs.clear()
                self._inflight.clear()
                message = self._broken
            for future in futures:
                future.set_exception(PoolError(message))
            return

    def _collect(self, result_queue) -> None:
        """Collector thread: resolve futures, drive epoch drain accounting.

        The queue is bound at thread start — ``shutdown`` nulls the instance
        attribute while a result may still be in flight, and the collector
        must keep draining until it sees the stop sentinel.
        """
        while True:
            message = result_queue.get()
            if message[0] == "stop":
                break
            _, _worker_id, task_id, ok, blob = message
            try:
                payload: Any = pickle.loads(blob)
            except Exception as exc:  # pragma: no cover - defensive
                payload, ok = PoolError(f"undecodable worker payload: {exc}"), False
            with self._lock:
                future = self._futures.pop(task_id, None)
                epoch = self._task_epochs.pop(task_id, None)
                if epoch is not None:
                    remaining = self._inflight.get(epoch, 0) - 1
                    if remaining > 0:
                        self._inflight[epoch] = remaining
                    else:
                        self._inflight.pop(epoch, None)
                self._drain_retired_locked()
            if future is None:
                continue  # pool shut down while the task was in flight
            if ok:
                future.set_result(payload)
            else:
                future.set_exception(
                    payload
                    if isinstance(payload, BaseException)
                    else PoolError(str(payload))
                )

    # -- shutdown / reporting -----------------------------------------------------------

    @property
    def tasks_submitted(self) -> int:
        """Number of specs accepted over the pool's lifetime."""
        with self._lock:
            return self._submitted

    def segment_names(self) -> List[str]:
        """Names of the currently linked shared-memory segments (diagnostics)."""
        with self._lock:
            return sorted(export.segment_name for export in self._exports.values())

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop the workers and unlink every shared segment (idempotent).

        Pending futures are cancelled (their gatherers see
        ``CancelledError``, as with the thread pool's drained shutdown);
        workers finish the task they are executing, then exit.  All exports
        are released here, so a closed pool leaves nothing in ``/dev/shm``.
        """
        with self._lock:
            already = self._shutdown
            self._shutdown = True
            futures = list(self._futures.values())
            self._futures.clear()
            self._task_epochs.clear()
            self._inflight.clear()
            self._retiring.clear()
            procs, self._procs = self._procs, []
            queues, self._task_queues = self._task_queues, []
            exports = list(self._exports.values())
            self._exports.clear()
            self._stores.clear()
            self._explorers.clear()
            result_queue, self._result_queue = self._result_queue, None
            collector, self._collector = self._collector, None
        if already and not procs:
            return
        for future in futures:
            future.cancel()
        for queue in queues:
            queue.put(("stop",))
        for process in procs:
            process.join(timeout=10 if wait else 0.2)
            if process.is_alive():  # pragma: no cover - wedged worker
                process.terminate()
                process.join(timeout=5)
        if result_queue is not None:
            result_queue.put(("stop",))
        if collector is not None:
            collector.join(timeout=5)
        for queue in queues:
            queue.close()
        if result_queue is not None:
            result_queue.close()
        for export in exports:
            export.release()

    def __enter__(self) -> "ProcessMiningPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def to_dict(self) -> dict:
        """Status payload for the ``summary`` endpoint and diagnostics."""
        with self._lock:
            return {
                "backend": "process",
                "workers": self.workers,
                "parallel": self.parallel,
                "tasks_submitted": self._submitted,
                "current_epoch": self._current_epoch,
                "live_epochs": sorted(self._live_epoch_map()),
                "retiring_epochs": sorted(self._retiring),
                "broken": self._broken,
            }
