"""Result cache: single-flight LRU with optional TTL, keyed canonically.

Mining a popular movie involves enumerating thousands of candidate groups and
running two randomized searches; repeating that for every visitor would defeat
the "interactive" promise of the demo.  The cache keeps the most recent
results, evicts least-recently-used entries beyond the capacity, optionally
expires entries after a TTL, and records hit/miss statistics that the latency
benchmarks (claim §2.3) report.

Two serving-layer guarantees live here:

* **Single-flight computation** — when several threads miss on the same key
  at once (the classic cache stampede: concurrent visitors asking for the
  same just-expired blockbuster), exactly one *leader* runs the computation
  while the other *waiters* block on the in-flight entry and receive the
  leader's value.  Every caller lands in exactly one of ``hits``/``misses``:
  a coalesced waiter counts as a hit (plus the ``coalesced`` stampede
  counter) when its leader succeeds, and as a miss when the leader fails.
  While computations succeed, ``misses`` therefore equals the number of
  computations performed; failed flights add their waiters on top.
* **Canonical keys** — :func:`canonical_explain_key` normalises an item
  selection, time interval and :class:`~repro.config.MiningConfig` into one
  hashable tuple (sorted unique ids, ordered config fields), so equivalent
  requests — a query string resolving to the same items, a warm-up
  pre-computation, a direct ``explain_items`` call, case variants of a title
  (item matching is case-insensitive) — all land on the same entry.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Optional, Tuple

from ..errors import CacheError


def canonical_explain_key(
    item_ids: Iterable[int],
    time_interval: Optional[Tuple[int, int]],
    config,
    epoch: int = 0,
) -> tuple:
    """Canonical cache key of one explain request.

    Every path that produces a :class:`~repro.core.explanation.MiningResult`
    (query strings, explicit item lists, warm-up pre-computation) must key its
    cache entry through this function so equivalent requests hit each other's
    results.  Item ids are de-duplicated and sorted, the interval collapses to
    a plain ``(start, end)`` tuple or ``None``, and the mining configuration
    contributes its ordered :meth:`~repro.config.MiningConfig.cache_key`
    fields.

    ``epoch`` is the store snapshot the result was computed on: a compaction
    bumps it, so every entry of a superseded snapshot becomes unreachable the
    instant new ratings land — a stale result can never serve a post-ingest
    read.  The epoch is always the **last** component, which the serving
    layer's cache-migration scan relies on.
    """
    ids = tuple(sorted({int(item_id) for item_id in item_ids}))
    interval = (
        (int(time_interval[0]), int(time_interval[1]))
        if time_interval is not None
        else None
    )
    return ("explain", ids, interval, config.cache_key(), int(epoch))


def canonical_geo_key(
    kind: str,
    item_ids: Optional[Iterable[int]],
    time_interval: Optional[Tuple[int, int]],
    region: str = "",
    by: str = "",
    task: str = "",
    min_size: int = 0,
    config=None,
    epoch: int = 0,
) -> tuple:
    """Canonical cache key of one geo endpoint request.

    Mirrors :func:`canonical_explain_key` for the geo serving surface:
    ``item_ids=None`` (the whole-store view) is distinct from any explicit
    selection, region codes are upper-cased so ``ca`` and ``CA`` share an
    entry, and the mining configuration contributes its ordered fields only
    for the kinds that actually mine (``geo_explain``/``choropleth``) —
    aggregate-only kinds pass ``config=None`` so a config change never
    invalidates cheap summaries.  ``epoch`` (always last, see
    :func:`canonical_explain_key`) ties the entry to one store snapshot.
    """
    ids = (
        None
        if item_ids is None
        else tuple(sorted({int(item_id) for item_id in item_ids}))
    )
    interval = (
        (int(time_interval[0]), int(time_interval[1]))
        if time_interval is not None
        else None
    )
    return (
        "geo",
        kind,
        ids,
        interval,
        str(region).strip().upper(),
        by,
        task,
        int(min_size),
        config.cache_key() if config is not None else None,
        int(epoch),
    )


@dataclass
class CacheStats:
    """Hit/miss counters of one cache instance.

    Every request increments exactly one of ``hits``/``misses``, even under
    single-flight (``requests`` is the derived sum): coalesced waiters count
    as hits plus the ``coalesced`` counter when their leader succeeds, and as
    misses when it fails.  So while computations succeed, ``misses`` equals
    the number of computations performed — the stress tests pin this down
    against an independent computation counter.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    coalesced: int = 0

    @property
    def requests(self) -> int:
        """Total lookups (the derived sum ``hits + misses``)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any request)."""
        return self.hits / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        """The counters as a JSON-ready dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "coalesced": self.coalesced,
            "hit_rate": round(self.hit_rate, 4),
        }


#: Sentinel distinguishing "absent/expired" from a cached ``None``.
_MISSING = object()


class _InFlight:
    """One in-progress computation that waiters block on."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None


class ResultCache:
    """Thread-safe LRU cache with optional TTL and single-flight computation.

    Values are opaque to the cache; the MapRat façade stores
    :class:`~repro.core.explanation.MiningResult` objects, the pre-computation
    layer stores aggregates.

    Args:
        capacity: maximum number of entries kept.
        ttl_seconds: optional expiry age; ``None`` keeps entries forever.
        single_flight: when True (the default), concurrent
            :meth:`get_or_compute` misses on the same key run one computation;
            when False every missing caller computes independently (the
            pre-PR-2 behaviour, kept for the serving benchmark's baseline).
        clock: monotonic time source for TTL bookkeeping; injectable so the
            expiry-accounting regression tests can advance time
            deterministically instead of sleeping.
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl_seconds: Optional[float] = None,
        single_flight: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise CacheError("cache capacity must be at least 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise CacheError("ttl_seconds must be positive when given")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self.single_flight = single_flight
        self._clock = clock
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, Tuple[float, Any]]" = OrderedDict()
        self._inflight: dict = {}
        self._lock = threading.Lock()

    # -- core operations ----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return self.get(key, record_stats=False) is not None

    def _lookup_locked(self, key: Hashable, record_stats: bool = True) -> Any:
        """Fresh value of ``key`` or ``_MISSING``; caller holds the lock.

        The one implementation of hit/expiry/LRU-refresh accounting: drops an
        expired entry (counting the expiration only when ``record_stats`` —
        untracked scans such as ``__contains__`` and the epoch-migration pass
        must never mutate the counters) and refreshes LRU order on a hit.
        Hit/miss counters are the caller's responsibility.
        """
        entry = self._entries.get(key)
        if entry is None:
            return _MISSING
        stored_at, value = entry
        if self._expired(stored_at):
            del self._entries[key]
            if record_stats:
                self.stats.expirations += 1
            return _MISSING
        self._entries.move_to_end(key)
        return value

    def get(self, key: Hashable, default: Any = None, record_stats: bool = True) -> Any:
        """Return the cached value or ``default``; refreshes LRU order on hit."""
        with self._lock:
            value = self._lookup_locked(key, record_stats)
            if value is _MISSING:
                if record_stats:
                    self.stats.misses += 1
                return default
            if record_stats:
                self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the LRU entry beyond capacity.

        Replacing an entry that has already expired counts the expiration: the
        old value died of TTL without ever being looked up (the classic case
        is a single-flight leader storing its recomputation over the entry
        that expired while it was computing), and silently overwriting it
        would otherwise leave the death invisible to every counter.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                if self._expired(entry[0]):
                    self.stats.expirations += 1
                self._entries.move_to_end(key)
            self._entries[key] = (self._clock(), value)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value, computing and storing it on a miss.

        Under single-flight, concurrent misses on the same key block on one
        in-flight computation: the leader's value is stored once and handed
        to every waiter; a leader's exception propagates to its waiters.
        ``compute`` runs outside the cache lock, so computations for distinct
        keys proceed concurrently.  ``compute`` must not re-enter
        ``get_or_compute`` with the same key (it would wait on itself).
        """
        with self._lock:
            value = self._lookup_locked(key)
            if value is not _MISSING:
                self.stats.hits += 1
                return value
            flight = self._inflight.get(key) if self.single_flight else None
            if flight is None:
                self.stats.misses += 1
                if self.single_flight:
                    flight = _InFlight()
                    self._inflight[key] = flight
                leader = True
            else:
                leader = False
        if not leader:
            flight.event.wait()
            with self._lock:
                if flight.error is None:
                    # coalesced counts only duplicate computations actually
                    # avoided; a failed flight served no value to its
                    # waiters (they re-raise the leader's error below), so
                    # they are plain misses.
                    self.stats.coalesced += 1
                    self.stats.hits += 1
                else:
                    self.stats.misses += 1
            if flight.error is not None:
                # The same exception instance is re-raised to every waiter —
                # the semantics of concurrent.futures.Future.result().
                raise flight.error
            return flight.value
        try:
            value = compute()
        except BaseException as exc:
            if flight is not None:
                with self._lock:
                    flight.error = exc
                    self._inflight.pop(key, None)
                flight.event.set()
            raise
        try:
            self.put(key, value)
        finally:
            # Resolve the flight even if storing raised (e.g. MemoryError):
            # waiters get the computed value; nothing may strand them.
            if flight is not None:
                with self._lock:
                    flight.value = value
                    self._inflight.pop(key, None)
                flight.event.set()
        return value

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns True when it existed."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    def keys(self) -> list:
        """Snapshot of the live keys (drives the epoch migration pass)."""
        with self._lock:
            return list(self._entries.keys())

    def inflight_count(self) -> int:
        """Number of computations currently in flight (diagnostics)."""
        with self._lock:
            return len(self._inflight)

    # -- internals ------------------------------------------------------------------

    def _expired(self, stored_at: float) -> bool:
        if self.ttl_seconds is None:
            return False
        return (self._clock() - stored_at) > self.ttl_seconds
