"""Result cache: LRU with optional TTL, keyed by query + mining configuration.

Mining a popular movie involves enumerating thousands of candidate groups and
running two randomized searches; repeating that for every visitor would defeat
the "interactive" promise of the demo.  The cache keeps the most recent
results, evicts least-recently-used entries beyond the capacity, optionally
expires entries after a TTL, and records hit/miss statistics that the latency
benchmark (claim §2.3) reports.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional, Tuple

from ..errors import CacheError


@dataclass
class CacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "hit_rate": round(self.hit_rate, 4),
        }


class ResultCache:
    """Thread-safe LRU cache with optional time-to-live.

    Values are opaque to the cache; the MapRat façade stores
    :class:`~repro.core.explanation.MiningResult` objects, the pre-computation
    layer stores aggregates.
    """

    def __init__(self, capacity: int = 256, ttl_seconds: Optional[float] = None) -> None:
        if capacity < 1:
            raise CacheError("cache capacity must be at least 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise CacheError("ttl_seconds must be positive when given")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, Tuple[float, Any]]" = OrderedDict()
        self._lock = threading.Lock()

    # -- core operations ----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return self.get(key, record_stats=False) is not None

    def get(self, key: Hashable, default: Any = None, record_stats: bool = True) -> Any:
        """Return the cached value or ``default``; refreshes LRU order on hit."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                if record_stats:
                    self.stats.misses += 1
                return default
            stored_at, value = entry
            if self._expired(stored_at):
                del self._entries[key]
                self.stats.expirations += 1
                if record_stats:
                    self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            if record_stats:
                self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the LRU entry beyond capacity."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (time.monotonic(), value)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value, computing and storing it on a miss."""
        sentinel = object()
        value = self.get(key, default=sentinel)
        if value is not sentinel:
            return value
        value = compute()
        self.put(key, value)
        return value

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns True when it existed."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    def keys(self) -> list:
        with self._lock:
            return list(self._entries.keys())

    # -- internals ------------------------------------------------------------------

    def _expired(self, stored_at: float) -> bool:
        if self.ttl_seconds is None:
            return False
        return (time.monotonic() - stored_at) > self.ttl_seconds
