"""Pre-processing and result pre-computation (§2.3 latency techniques).

Two of the three latency levers the paper names live here (the third, caching,
is :mod:`repro.server.cache`):

* **aggressive data pre-processing** — the indexed
  :class:`~repro.data.storage.RatingStore` is built once per dataset; this
  module additionally materialises per-item aggregates (count, average,
  histogram) so query summaries never re-scan ratings,
* **result pre-computation** — the explanations of the most-rated items are
  mined ahead of time and pushed into the result cache, so the popular demo
  queries ("Toy Story", blockbusters) answer from memory.

Both per-anchor loops (one task per item) shard across a
:class:`~repro.server.pool.MiningWorkerPool` when one is supplied; results
are gathered in submission order and every anchor mines with the fixed seed
of its mining configuration, so sharded runs are bit-identical to serial
ones.  :class:`CacheWarmer` runs the popular-item warm-up on a background
thread so a freshly started server answers its first requests immediately —
the single-flight cache coalesces any live request with the warm-up mining
of the same item.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.explanation import MiningResult
from ..core.miner import RatingMiner
from ..data.model import Item
from ..data.storage import RatingStore
from ..errors import MiningError
from ..geo.explorer import GeoExplorer


def _shards_closures(pool) -> bool:
    """True when ``pool`` can shard the per-anchor closures of this module.

    Only the thread pool can — closures cannot cross a process boundary, so a
    :class:`~repro.server.procpool.ProcessMiningPool` handed in here falls
    back to the serial anchor loop (its multi-core parallelism then comes
    from the *inner* SM/DM specs the anchors submit).
    """
    return (
        pool is not None
        and getattr(pool, "parallel", False)
        and getattr(pool, "kind", "thread") == "thread"
    )


@dataclass(frozen=True)
class ItemAggregate:
    """Cheap per-item statistics materialised ahead of queries.

    Attributes:
        item_id: the item.
        title: item title (for display without a catalogue lookup).
        count: number of ratings.
        average: average rating.
        histogram: count of ratings per integer score.
    """

    item_id: int
    title: str
    count: int
    average: float
    histogram: Dict[int, int]

    def to_dict(self) -> dict:
        """The aggregate as a JSON-ready dict."""
        return {
            "item_id": self.item_id,
            "title": self.title,
            "count": self.count,
            "average": self.average,
            "histogram": {str(k): v for k, v in sorted(self.histogram.items())},
        }


@dataclass
class PrecomputeReport:
    """What a warm-up run did (reported by the latency benchmark)."""

    items_aggregated: int = 0
    results_precomputed: int = 0
    regions_precomputed: int = 0
    failures: int = 0
    elapsed_seconds: float = 0.0

    def to_dict(self) -> dict:
        """The report as a JSON-ready dict."""
        return {
            "items_aggregated": self.items_aggregated,
            "results_precomputed": self.results_precomputed,
            "regions_precomputed": self.regions_precomputed,
            "failures": self.failures,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
        }

    def merged(self, other: "PrecomputeReport") -> "PrecomputeReport":
        """Combine two warm-up phases into one report (items + regions)."""
        return PrecomputeReport(
            items_aggregated=max(self.items_aggregated, other.items_aggregated),
            results_precomputed=self.results_precomputed + other.results_precomputed,
            regions_precomputed=self.regions_precomputed + other.regions_precomputed,
            failures=self.failures + other.failures,
            elapsed_seconds=self.elapsed_seconds + other.elapsed_seconds,
        )


class Precomputer:
    """Builds per-item aggregates and warms the result cache for popular items."""

    def __init__(
        self,
        store: RatingStore,
        miner: RatingMiner,
        explorer: Optional[GeoExplorer] = None,
    ) -> None:
        self.store = store
        self.miner = miner
        # Reuse the owning façade's explorer when given (one hierarchy, one
        # explorer per store); build lazily otherwise.
        self._explorer = explorer
        self._aggregates: Dict[int, ItemAggregate] = {}
        self._aggregates_built = False
        self._aggregates_lock = threading.Lock()
        self._build_lock = threading.Lock()

    # -- data pre-processing --------------------------------------------------------

    def build_item_aggregates(self, pool=None) -> Dict[int, ItemAggregate]:
        """Materialise (count, average, histogram) for every item in the store.

        The per-item loop shards across ``pool`` when given; the store is
        read-only, each item is independent, and results are keyed by item id,
        so the sharded dict equals the serial one.
        """
        items = list(self.store.dataset.items())
        if _shards_closures(pool):
            per_item = pool.map(self._aggregate_one, items)
        else:
            per_item = [self._aggregate_one(item) for item in items]
        aggregates = {agg.item_id: agg for agg in per_item if agg is not None}
        with self._aggregates_lock:
            self._aggregates = aggregates
            self._aggregates_built = True
        return aggregates

    def _aggregate_one(self, item: Item) -> Optional[ItemAggregate]:
        rating_slice = self.store.slice_for_items([item.item_id], allow_empty=True)
        if rating_slice.is_empty():
            return None
        histogram = {
            int(score): count
            for score, count in rating_slice.score_histogram().items()
            if count
        }
        return ItemAggregate(
            item_id=item.item_id,
            title=item.title,
            count=len(rating_slice),
            average=round(rating_slice.average(), 4),
            histogram=histogram,
        )

    @classmethod
    def rebased(
        cls,
        previous: "Precomputer",
        store: RatingStore,
        miner: RatingMiner,
        explorer: Optional[GeoExplorer],
        touched_items,
    ) -> "Precomputer":
        """A precomputer for the next epoch, maintained incrementally.

        Carries the previous epoch's per-item aggregates forward and
        recomputes **only the items touched by the compaction delta** (each a
        single inverted-index lookup on the new store) — untouched items'
        slices are unchanged by construction, so their aggregates are reused
        as-is.  A previous instance that never built its aggregates stays
        lazy: nothing is built just to be rebased.
        """
        fresh = cls(store, miner, explorer=explorer)
        with previous._aggregates_lock:
            built = previous._aggregates_built
            aggregates = dict(previous._aggregates)
        if not built:
            return fresh
        for item_id in sorted(touched_items):
            if not store.dataset.has_item(item_id):
                continue
            aggregate = fresh._aggregate_one(store.dataset.item(item_id))
            if aggregate is not None:
                aggregates[item_id] = aggregate
        with fresh._aggregates_lock:
            fresh._aggregates = aggregates
            fresh._aggregates_built = True
        return fresh

    def _ensure_aggregates(self, pool=None) -> None:
        """Build the aggregates once; concurrent cold callers share one build.

        The dedicated built flag (not dict truthiness) keeps a legitimately
        empty result — a store with no rated items — from re-scanning the
        catalogue on every lookup.
        """
        if self._aggregates_built:
            return
        with self._build_lock:
            if not self._aggregates_built:
                self.build_item_aggregates(pool=pool)

    def aggregate_for(self, item_id: int) -> Optional[ItemAggregate]:
        """Return the pre-computed aggregate of one item (None when unrated)."""
        self._ensure_aggregates()
        return self._aggregates.get(item_id)

    def top_items(self, limit: int = 10) -> List[ItemAggregate]:
        """The most-rated items, the natural warm-up set for the demo."""
        self._ensure_aggregates()
        ordered = sorted(
            self._aggregates.values(), key=lambda agg: (-agg.count, agg.item_id)
        )
        return ordered[:limit]

    # -- result pre-computation -------------------------------------------------------

    def warm_popular_items(
        self,
        explain: Callable[[List[int], str], MiningResult],
        limit: int = 20,
        pool=None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> PrecomputeReport:
        """Mine the explanations of the ``limit`` most-rated items ahead of time.

        Args:
            explain: callback that mines and caches one item selection; the
                MapRat façade passes its own cache-aware ``explain_items``.
                When sharding across a pool, the callback must not submit
                nested work to the same pool (it would deadlock a saturated
                pool); the façade runs the inner SM/DM tasks serially.
            limit: how many popular items to pre-compute.
            pool: optional worker pool; anchors shard across it, one task per
                item.  ``MiningError`` counting and the report match the
                serial loop; a *fatal* (non-mining) error still propagates,
                but only after the whole sharded batch has been gathered —
                the serial path fails fast at the offending anchor.
            should_stop: optional cancellation probe checked at the start of
                every anchor (serial and pooled alike); anchors that observe
                it are skipped and counted in neither bucket of the report.
        """
        report = PrecomputeReport()
        started_at = time.perf_counter()
        self._ensure_aggregates(pool=pool)  # the aggregate build shards too
        anchors = self.top_items(limit)

        def warm_one(aggregate: ItemAggregate) -> bool:
            if should_stop is not None and should_stop():
                return False
            explain([aggregate.item_id], f'title:"{aggregate.title}"')
            return True

        if _shards_closures(pool):
            outcomes = pool.map_outcomes(warm_one, anchors)
        else:
            outcomes = []
            for aggregate in anchors:
                if should_stop is not None and should_stop():
                    break
                try:
                    outcomes.append((warm_one(aggregate), None))
                except MiningError as exc:
                    outcomes.append((None, exc))
        for mined, error in outcomes:
            if error is None:
                if mined:
                    report.results_precomputed += 1
            elif isinstance(error, MiningError):
                report.failures += 1
            elif isinstance(error, CancelledError):
                pass  # pool shut down mid-batch: a skip, not a failure
            else:
                raise error
        report.items_aggregated = len(self._aggregates)
        report.elapsed_seconds = time.perf_counter() - started_at
        return report

    # -- geo pre-computation ----------------------------------------------------------

    def top_region_anchors(self, limit: int = 5) -> List[Tuple[str, int, str]]:
        """The warm-up anchors of the geo serving surface.

        For each of the ``limit`` most-rated states, the most-rated item
        *within* that state: ``(state_code, item_id, title)`` triples.  These
        are the (region, item) pairs the geo endpoints are most likely to be
        asked about, exactly as :meth:`top_items` anchors the explain surface.
        """
        if limit <= 0:
            return []
        slice_all = self.store.slice_all()
        if slice_all.is_empty():
            return []
        if self._explorer is None:
            self._explorer = GeoExplorer(self.miner)
        explorer = self._explorer
        regions = [
            agg.region
            for agg in explorer.aggregate_by(slice_all, "state", "state")[:limit]
        ]
        anchors: List[Tuple[str, int, str]] = []
        for region in regions:
            mask = slice_all.mask_for("state", region)
            item_ids = slice_all.item_ids[mask]
            if item_ids.shape[0] == 0:
                continue
            values, counts = np.unique(item_ids, return_counts=True)
            order = np.lexsort((values, -counts))
            top_item = int(values[order[0]])
            title = (
                self.store.dataset.item(top_item).title
                if self.store.dataset.has_item(top_item)
                else str(top_item)
            )
            anchors.append((region, top_item, title))
        return anchors

    def warm_top_regions(
        self,
        explain_region: Callable[[List[int], str, str], object],
        limit: int = 5,
        pool=None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> PrecomputeReport:
        """Pre-mine the geo explanations of the top-region anchors.

        Args:
            explain_region: callback mining and caching one (item selection,
                region) pair — the MapRat façade passes its cache-aware
                ``geo_explain`` path.  When sharding across a pool the
                callback must not submit nested work to the same pool.
            limit: how many top regions to anchor.
            pool: optional worker pool; one task per region, gathered in
                submission order.
            should_stop: optional cancellation probe checked per anchor.
        """
        report = PrecomputeReport()
        started_at = time.perf_counter()
        anchors = self.top_region_anchors(limit)

        def warm_one(anchor: Tuple[str, int, str]) -> bool:
            region, item_id, title = anchor
            if should_stop is not None and should_stop():
                return False
            explain_region([item_id], region, f'title:"{title}"')
            return True

        if _shards_closures(pool):
            outcomes = pool.map_outcomes(warm_one, anchors)
        else:
            outcomes = []
            for anchor in anchors:
                if should_stop is not None and should_stop():
                    break
                try:
                    outcomes.append((warm_one(anchor), None))
                except MiningError as exc:
                    outcomes.append((None, exc))
        for mined, error in outcomes:
            if error is None:
                if mined:
                    report.regions_precomputed += 1
            elif isinstance(error, MiningError):
                report.failures += 1
            elif isinstance(error, CancelledError):
                pass  # pool shut down mid-batch: a skip, not a failure
            else:
                raise error
        report.elapsed_seconds = time.perf_counter() - started_at
        return report


class CacheWarmer:
    """Background warm-up of the popular-item explanations at server startup.

    Wraps one :meth:`Precomputer.warm_popular_items` run on a daemon thread:
    the server starts serving immediately while the warmer fills the cache
    behind it, and the single-flight cache coalesces any early request for an
    item the warmer is currently mining.
    """

    def __init__(
        self,
        precomputer: Precomputer,
        explain: Callable[[List[int], str], MiningResult],
        limit: int = 20,
        pool=None,
        explain_region: Optional[Callable[[List[int], str, str], object]] = None,
        region_limit: int = 0,
    ) -> None:
        self.precomputer = precomputer
        self.explain = explain
        self.limit = limit
        self.pool = pool
        self.explain_region = explain_region
        self.region_limit = region_limit
        self.report: Optional[PrecomputeReport] = None
        self.error: Optional[BaseException] = None
        self._done = threading.Event()
        self._cancelled = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "CacheWarmer":
        """Kick off the warm-up thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="maprat-warmer", daemon=True
            )
            self._thread.start()
        return self

    def cancel(self) -> None:
        """Ask the warm-up to stop after the anchors currently mining.

        Works on both the serial and the pooled path (each anchor probes the
        flag before mining); ``MapRat.close`` additionally shuts the warm
        pool down with ``cancel_pending=True``.
        """
        self._cancelled.set()

    def _run(self) -> None:
        try:
            report = self.precomputer.warm_popular_items(
                self.explain,
                limit=self.limit,
                pool=self.pool,
                should_stop=self._cancelled.is_set,
            )
            if (
                self.explain_region is not None
                and self.region_limit > 0
                and not self._cancelled.is_set()
            ):
                report = report.merged(
                    self.precomputer.warm_top_regions(
                        self.explain_region,
                        limit=self.region_limit,
                        pool=self.pool,
                        should_stop=self._cancelled.is_set,
                    )
                )
            self.report = report
        except BaseException as exc:  # surfaced through .error / .wait()
            self.error = exc
        finally:
            self._done.set()

    @property
    def done(self) -> bool:
        """True once the warm-up thread has finished (or failed)."""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> Optional[PrecomputeReport]:
        """Block until the warm-up finishes; returns its report (or raises).

        Returns ``None`` on timeout.  A warm-up that died with a non-mining
        error re-raises it here, so callers that block on the warmer see the
        failure instead of an empty cache.
        """
        if not self._done.wait(timeout):
            return None
        if self.error is not None:
            raise self.error
        return self.report

    def to_dict(self) -> dict:
        """Warmer status for the ``summary`` endpoint."""
        return {
            "done": self.done,
            "failed": self.error is not None,
            "report": self.report.to_dict() if self.report is not None else None,
        }
