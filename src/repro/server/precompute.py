"""Pre-processing and result pre-computation (§2.3 latency techniques).

Two of the three latency levers the paper names live here (the third, caching,
is :mod:`repro.server.cache`):

* **aggressive data pre-processing** — the indexed
  :class:`~repro.data.storage.RatingStore` is built once per dataset; this
  module additionally materialises per-item aggregates (count, average,
  histogram) so query summaries never re-scan ratings,
* **result pre-computation** — the explanations of the most-rated items are
  mined ahead of time and pushed into the result cache, so the popular demo
  queries ("Toy Story", blockbusters) answer from memory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.explanation import MiningResult
from ..core.miner import RatingMiner
from ..data.storage import RatingStore
from ..errors import MiningError


@dataclass(frozen=True)
class ItemAggregate:
    """Cheap per-item statistics materialised ahead of queries.

    Attributes:
        item_id: the item.
        title: item title (for display without a catalogue lookup).
        count: number of ratings.
        average: average rating.
        histogram: count of ratings per integer score.
    """

    item_id: int
    title: str
    count: int
    average: float
    histogram: Dict[int, int]

    def to_dict(self) -> dict:
        return {
            "item_id": self.item_id,
            "title": self.title,
            "count": self.count,
            "average": self.average,
            "histogram": {str(k): v for k, v in sorted(self.histogram.items())},
        }


@dataclass
class PrecomputeReport:
    """What a warm-up run did (reported by the latency benchmark)."""

    items_aggregated: int = 0
    results_precomputed: int = 0
    failures: int = 0
    elapsed_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "items_aggregated": self.items_aggregated,
            "results_precomputed": self.results_precomputed,
            "failures": self.failures,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
        }


class Precomputer:
    """Builds per-item aggregates and warms the result cache for popular items."""

    def __init__(self, store: RatingStore, miner: RatingMiner) -> None:
        self.store = store
        self.miner = miner
        self._aggregates: Dict[int, ItemAggregate] = {}

    # -- data pre-processing --------------------------------------------------------

    def build_item_aggregates(self) -> Dict[int, ItemAggregate]:
        """Materialise (count, average, histogram) for every item in the store."""
        aggregates: Dict[int, ItemAggregate] = {}
        for item in self.store.dataset.items():
            rating_slice = self.store.slice_for_items([item.item_id], allow_empty=True)
            if rating_slice.is_empty():
                continue
            histogram = {
                int(score): count
                for score, count in rating_slice.score_histogram().items()
                if count
            }
            aggregates[item.item_id] = ItemAggregate(
                item_id=item.item_id,
                title=item.title,
                count=len(rating_slice),
                average=round(rating_slice.average(), 4),
                histogram=histogram,
            )
        self._aggregates = aggregates
        return aggregates

    def aggregate_for(self, item_id: int) -> Optional[ItemAggregate]:
        """Return the pre-computed aggregate of one item (None when unrated)."""
        if not self._aggregates:
            self.build_item_aggregates()
        return self._aggregates.get(item_id)

    def top_items(self, limit: int = 10) -> List[ItemAggregate]:
        """The most-rated items, the natural warm-up set for the demo."""
        if not self._aggregates:
            self.build_item_aggregates()
        ordered = sorted(
            self._aggregates.values(), key=lambda agg: (-agg.count, agg.item_id)
        )
        return ordered[:limit]

    # -- result pre-computation -------------------------------------------------------

    def warm_popular_items(
        self,
        explain: Callable[[List[int], str], MiningResult],
        limit: int = 20,
    ) -> PrecomputeReport:
        """Mine the explanations of the ``limit`` most-rated items ahead of time.

        Args:
            explain: callback that mines and caches one item selection; the
                MapRat façade passes its own cache-aware ``explain_items``.
            limit: how many popular items to pre-compute.
        """
        report = PrecomputeReport()
        started_at = time.perf_counter()
        for aggregate in self.top_items(limit):
            try:
                explain([aggregate.item_id], f'title:"{aggregate.title}"')
                report.results_precomputed += 1
            except MiningError:
                report.failures += 1
        report.items_aggregated = len(self._aggregates)
        report.elapsed_seconds = time.perf_counter() - started_at
        return report
