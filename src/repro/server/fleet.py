"""Multi-host miner fleet (``mining_backend="fleet"``).

The sharded backend (:mod:`repro.server.shardpool`) already partitions an
epoch into K per-shard stores, but its segments travel over ``/dev/shm`` —
every worker must share the serving box's memory.  This module moves the
same scatter-gather over TCP so workers can live anywhere:

* :class:`FleetWorkerServer` is one worker: a small threaded TCP server
  (the ``repro fleet-worker`` CLI entrypoint) that attaches shard segments
  shipped as packed bytes (:func:`repro.data.wire.store_from_bytes`) and
  executes the exact same ``("cells", ...)`` specs as the shard worker
  processes, via the shared :func:`~repro.server.shardpool._execute_shard_spec`.
* :class:`FleetMiningPool` is the coordinator: it packs each published
  epoch's shards once (:func:`repro.data.wire.pack_store_bytes`), routes
  every shard to R workers picked from a consistent-hash ring
  (:class:`repro.data.wire.HashRing` — stable across processes, minimal
  reshuffle on membership change), ships segments lazily on first use (which
  is also how a worker joining or reconnecting mid-epoch re-syncs), and
  fails over to the next replica on any transport fault.  The partial cubes
  come back over the wire and the coordinator merge + serial DFS replay
  (:mod:`repro.core.shardmerge`) is inherited unchanged — **fleet ≡ serial**,
  bit for bit, like every other backend.

Failure semantics, all typed and bounded:

* a worker that dies mid-request (``SIGKILL``, crash, network partition)
  surfaces as a transport error on its socket; the coordinator marks it
  dead, removes it from the ring and retries the task on the next replica —
  the caller sees the identical answer, later;
* a stuck worker (``SIGSTOP``, livelock) trips the per-connection I/O
  deadline; with no replica left the task fails
  :class:`~repro.errors.MiningTimeoutError` — never a hang;
* torn or corrupt frames raise :class:`~repro.errors.WireProtocolError`
  (failover first, surfaced only when no replica remains);
* a retired epoch raises :class:`~repro.errors.StaleEpochError` exactly as
  the PR 5 protocol demands, and the façade retries once on the current
  epoch.

A heartbeat thread drives membership: it pings every idle worker, marks
unresponsive ones dead, revives returning ones, respawns locally-spawned
workers that exited (worker recycling), and propagates epoch retirement
(``detach_below``) so workers drop superseded segments.  The epoch protocol
itself is the sharded pool's, inherited: publish-before-swap,
drain-then-retire, per-epoch in-flight accounting.

With ``workers <= 1`` and no addresses the pool runs every spec inline over
the same partitioned shard stores — the degenerate single-node mode, used
by the wide equivalence batteries.  The fleet never creates shared-memory
segments: segments are byte strings in the coordinator and in worker RAM.
"""

from __future__ import annotations

import os
import pickle
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import Future, InvalidStateError, ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..data.sharding import partition_store
from ..data.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    HashRing,
    pack_store_bytes,
    recv_frame,
    recv_message,
    send_frame,
    send_message,
    store_from_bytes,
)
from ..errors import (
    MiningTimeoutError,
    PoolError,
    StaleEpochError,
    WireProtocolError,
)
from .shardpool import ShardedMiningPool, _execute_shard_spec

__all__ = ["FleetMiningPool", "FleetWorkerServer", "serve_worker"]


# -- the worker --------------------------------------------------------------------


class FleetWorkerServer:
    """One fleet mining worker: a threaded TCP server executing shard specs.

    Speaks the framed message protocol of :mod:`repro.data.wire`, one
    coordinator connection per handler thread.  Attached stores live in a
    server-wide ``(epoch, shard_id)`` cache shared by every connection, so a
    coordinator reconnecting on a fresh socket still finds the segments an
    earlier connection shipped.  A connection that sends garbage (framing or
    checksum failure) is dropped; the server and its other connections keep
    serving.

    Messages handled:

    * ``("ping",)`` → ``("pong", held_segments)`` — liveness + heartbeat.
    * ``("attach", epoch, shard_id, manifest)`` followed by one raw bytes
      frame → ``("ok",)`` — map one shard segment into the cache.
    * ``("detach_below", floor)`` → ``("ok",)`` — drop every store of an
      epoch below ``floor`` (epoch retirement).
    * ``("task", spec)`` → ``("result", ok, pickled_payload)`` — execute one
      cell-enumeration spec; errors travel pickled, exactly like the shard
      worker processes.
    * ``("shutdown",)`` — stop the server.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.max_frame_bytes = int(max_frame_bytes)
        self._listener = socket.create_server((host, int(port)))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stores: Dict[Tuple[int, int], Any] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._conns: set = set()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port 0 resolves to the kernel's pick)."""
        return (self.host, self.port)

    def serve_forever(self) -> None:
        """Accept coordinator connections until shutdown is requested."""
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:  # listener closed under us
                break
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="maprat-fleet-conn",
                daemon=True,
            ).start()
        self.close()

    def _serve_connection(self, conn) -> None:
        """Serve one coordinator connection until EOF, garbage or shutdown."""
        try:
            while not self._stop.is_set():
                try:
                    message = recv_message(conn, self.max_frame_bytes)
                    if message is None or not self._dispatch(conn, message):
                        break
                except (WireProtocolError, OSError):
                    break  # garbage or a vanished peer: drop this connection
        finally:
            with self._lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _dispatch(self, conn, message: tuple) -> bool:
        """Handle one message; False closes the connection."""
        tag = message[0]
        if tag == "ping":
            with self._lock:
                held = len(self._stores)
            send_message(conn, ("pong", held))
            return True
        if tag == "attach":
            _, epoch, shard_id, manifest = message
            blob = recv_frame(conn, self.max_frame_bytes)
            if blob is None:
                return False
            store = store_from_bytes(manifest, blob)
            with self._lock:
                self._stores[(int(epoch), int(shard_id))] = store
            send_message(conn, ("ok",))
            return True
        if tag == "detach_below":
            floor = int(message[1])
            with self._lock:
                for key in [key for key in self._stores if key[0] < floor]:
                    del self._stores[key]
            send_message(conn, ("ok",))
            return True
        if tag == "task":
            spec = message[1]
            try:
                payload: Any = _execute_shard_spec(spec, self._stores)
                ok = True
            except BaseException as exc:
                payload, ok = exc, False
            try:
                blob = pickle.dumps(payload)
            except Exception:
                blob = pickle.dumps(
                    PoolError(
                        f"fleet worker: unpicklable "
                        f"{'result' if ok else 'error'} "
                        f"{type(payload).__name__}: {payload}"
                    )
                )
                ok = False
            send_message(conn, ("result", ok, blob))
            return True
        if tag == "shutdown":
            self._stop.set()
            return False
        return False  # unknown tag: protocol violation, drop the connection

    def close(self) -> None:
        """Stop accepting, close every connection, drop attached stores."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        with self._lock:
            conns = list(self._conns)
            self._conns.clear()
            self._stores.clear()
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass


def serve_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    parent_pid: Optional[int] = None,
    out=None,
) -> int:
    """Run one fleet worker until shutdown (the CLI entrypoint's body).

    Prints the machine-readable ``FLEET-WORKER READY <host> <port>`` line
    (flushed) once the listener is bound, so a spawning coordinator can read
    the kernel-assigned port.  With ``parent_pid``, a watchdog thread exits
    the worker when that process disappears — a coordinator that dies
    without a clean shutdown cannot leak orphan workers.
    """
    out = out if out is not None else sys.stdout
    server = FleetWorkerServer(host, port)
    if parent_pid:
        def _watch_parent() -> None:
            while not server._stop.wait(1.0):
                if os.getppid() != int(parent_pid):
                    server._stop.set()
                    return

        threading.Thread(
            target=_watch_parent, name="maprat-fleet-parent-watch", daemon=True
        ).start()
    print(f"FLEET-WORKER READY {server.host} {server.port}", file=out, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.close()
    return 0


# -- coordinator-side worker handles ------------------------------------------------


def _spawn_worker_proc() -> subprocess.Popen:
    """Start one localhost worker subprocess on a kernel-assigned port.

    The package is not installed (tests import it via a ``sys.path`` hook),
    so the child's ``PYTHONPATH`` gets this tree's ``src/`` prepended; the
    ``--parent-pid`` watchdog ties the worker's lifetime to this process.
    """
    src_dir = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = str(src_dir) + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "fleet-worker",
            "--port",
            "0",
            "--parent-pid",
            str(os.getpid()),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )


def _ready_address(proc: subprocess.Popen) -> Tuple[str, int]:
    """Read a spawned worker's READY line; returns its ``(host, port)``."""
    line = proc.stdout.readline() if proc.stdout else ""
    parts = line.split()
    if len(parts) != 4 or parts[:2] != ["FLEET-WORKER", "READY"]:
        try:
            proc.terminate()
        except OSError:  # pragma: no cover - already gone
            pass
        raise PoolError(f"fleet worker failed to start (said {line!r})")
    return parts[2], int(parts[3])


def _reap(proc: subprocess.Popen, timeout: float = 5.0) -> None:
    """Wait a terminated worker out; escalate to SIGKILL if it lingers."""
    try:
        proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:  # pragma: no cover - wedged worker
        proc.kill()
        proc.wait(timeout=timeout)
    if proc.stdout is not None:
        proc.stdout.close()


class _FleetMember:
    """Coordinator-side state of one fleet worker.

    ``lock`` serializes all use of the member's socket (task round-trips,
    heartbeats, reconnects); ``attached`` is the coordinator's record of
    which ``(epoch, shard_id)`` segments this worker holds **on the current
    connection** — cleared on reconnect, which is exactly what forces the
    lazy re-sync after a worker recycles.
    """

    def __init__(
        self,
        name: str,
        address: Tuple[str, int],
        proc: Optional[subprocess.Popen] = None,
    ) -> None:
        self.name = name
        self.address = address
        self.proc = proc
        self.lock = threading.Lock()
        self.sock: Optional[socket.socket] = None
        self.attached: set = set()
        self.alive = True
        self.tasks = 0
        self.failures = 0


def _parse_address(address: str) -> Tuple[str, int]:
    """Split one ``HOST:PORT`` worker address string."""
    host, _, port = str(address).rpartition(":")
    if not host or not port.isdigit():
        raise PoolError(
            f"fleet worker address must be HOST:PORT, got {address!r}"
        )
    return host, int(port)


# -- the coordinator ---------------------------------------------------------------


class FleetMiningPool(ShardedMiningPool):
    """Scatter-gather mining over TCP-connected fleet workers.

    Keeps the :class:`~repro.server.shardpool.ShardedMiningPool` surface
    (``publish``/``retire_older``/``mine_pair``/``gather``/``shutdown``/
    ``to_dict``) and its coordinator merge + epoch protocol; only transport
    and placement change.  Callers branch on ``pool.kind == "fleet"``.

    Args:
        workers: localhost worker subprocesses to spawn (ignored when
            ``addresses`` is given); ``0``/``1`` with no addresses runs every
            spec inline over partitioned shard stores, bit-identically.
        shards: partition count K per epoch (as the sharded backend).
        scheme: ``"reviewer"`` or ``"region"`` row partitioning.
        replicas: R — how many distinct workers each shard is routed to; the
            coordinator fails over along this replica list, so R ≥ 2 rides
            out any single worker death without failing a request.
        addresses: external worker ``HOST:PORT`` strings; non-empty switches
            the pool to connect-only mode (no spawning, no respawning).
        heartbeat_s: membership probe period in seconds.
        io_timeout_s: per-connection socket deadline — bounds connects,
            segment ships and task round-trips; a stuck worker fails over
            (or times out typed) after at most this long.
        timeout_s: end-to-end gather deadline per task
            (:class:`~repro.errors.MiningTimeoutError` beyond it), as in
            every other pool.
        respawn: restart spawned workers that exit (worker recycling); the
            fault batteries disable it for deterministic membership.
        vnodes: virtual nodes per worker on the consistent-hash ring.
    """

    kind = "fleet"

    def __init__(
        self,
        workers: int = 0,
        shards: int = 2,
        scheme: str = "reviewer",
        replicas: int = 2,
        addresses: Tuple[str, ...] = (),
        heartbeat_s: float = 2.0,
        io_timeout_s: float = 30.0,
        timeout_s: Optional[float] = None,
        respawn: bool = True,
        vnodes: int = 64,
    ) -> None:
        super().__init__(
            workers=workers, shards=shards, scheme=scheme, timeout_s=timeout_s
        )
        if int(replicas) < 1:
            raise PoolError("replicas must be at least 1")
        if float(heartbeat_s) <= 0:
            raise PoolError("heartbeat_s must be positive")
        if float(io_timeout_s) <= 0:
            raise PoolError("io_timeout_s must be positive")
        self.replicas = int(replicas)
        self.heartbeat_s = float(heartbeat_s)
        self.io_timeout_s = float(io_timeout_s)
        self.respawn = bool(respawn)
        self.addresses = tuple(str(address) for address in addresses)
        for address in self.addresses:
            _parse_address(address)  # fail fast on malformed config
        self._members: Dict[str, _FleetMember] = {}
        self._ring = HashRing(vnodes=vnodes)
        self._segments: Dict[Tuple[int, int], Tuple[Any, bytes]] = {}
        self._pending: set = set()
        self._dispatcher: Optional[ThreadPoolExecutor] = None
        self._heartbeat: Optional[threading.Thread] = None
        self._hb_stop = threading.Event()
        self._failovers = 0
        self._heartbeat_failures = 0
        self._bytes_shipped = 0
        self._next_spawn_id = 0

    # -- lifecycle / epochs -----------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True when specs run on fleet workers (spawned or addressed)."""
        return self.workers > 1 or bool(self.addresses)

    def _ensure_fleet_locked(self) -> None:
        """Start the members, dispatcher and heartbeat (under the pool lock)."""
        if self._members or not self.parallel:
            return
        members: List[_FleetMember] = []
        if self.addresses:
            for address in self.addresses:
                members.append(_FleetMember(address, _parse_address(address)))
        else:
            procs = [_spawn_worker_proc() for _ in range(self.workers)]
            for proc in procs:
                name = f"w{self._next_spawn_id}"
                self._next_spawn_id += 1
                members.append(_FleetMember(name, _ready_address(proc), proc))
        for member in members:
            self._members[member.name] = member
            self._ring.add(member.name)
        self._dispatcher = ThreadPoolExecutor(
            max_workers=max(8, 2 * self.shards),
            thread_name_prefix="maprat-fleet-dispatch",
        )
        self._heartbeat = threading.Thread(
            target=self._heartbeat_loop, name="maprat-fleet-heartbeat", daemon=True
        )
        self._heartbeat.start()

    def publish(self, store, retire_previous: bool = True) -> int:
        """Partition and pack a store epoch; make it submittable.

        Same publish-before-swap contract as the sharded pool, but segments
        are packed byte strings held by the coordinator, not shm exports:
        workers receive a segment lazily the first time a task routes a
        shard to them (which also covers mid-epoch joins and post-recycle
        re-syncs).  The partition + pack runs outside the pool lock.
        """
        epoch = int(store.epoch)
        with self._lock:
            if self._shutdown:
                raise PoolError("fleet mining pool is shut down")
            if epoch == self._current_epoch:
                return epoch
            parallel = self.parallel
        shard_stores = partition_store(store, self.shards, self.scheme)
        segments = None
        if parallel:
            segments = [
                pack_store_bytes(shard_store, name=f"fleet-e{epoch}-s{shard_id}")
                for shard_id, shard_store in enumerate(shard_stores)
            ]
        with self._lock:
            if self._shutdown:
                raise PoolError("fleet mining pool is shut down")
            if epoch == self._current_epoch:  # raced duplicate publish
                return epoch
            if parallel:
                self._ensure_fleet_locked()
                for shard_id, segment in enumerate(segments):
                    self._segments[(epoch, shard_id)] = segment
            else:
                for shard_id, shard_store in enumerate(shard_stores):
                    self._shard_stores[(epoch, shard_id)] = shard_store
            self._full_stores[epoch] = store
            previous = self._current_epoch
            self._current_epoch = epoch
            if previous is not None and retire_previous:
                self._retiring.add(previous)
            self._drain_retired_locked()
            return epoch

    def _drain_retired_locked(self) -> None:
        """Drop a retiring epoch's packed segments once its tasks drained.

        Workers learn about the retirement from the heartbeat's
        ``detach_below`` floor; until then their copies are inert (no task
        can reference a retired epoch — submission already refuses it).
        """
        for epoch in sorted(self._retiring):
            if self._inflight.get(epoch, 0) > 0:
                continue
            self._retiring.discard(epoch)
            self._full_stores.pop(epoch, None)
            self._explorers.pop(epoch, None)
            for key in [key for key in self._segments if key[0] == epoch]:
                del self._segments[key]
            for key in [key for key in self._shard_stores if key[0] == epoch]:
                del self._shard_stores[key]

    def segment_names(self) -> List[str]:
        """The fleet links no shared-memory segments; always empty."""
        return []

    # -- submission -------------------------------------------------------------------

    def submit(self, spec: tuple) -> Future:
        """Schedule one shard spec; returns a future resolving to its result.

        Parallel mode hands the spec to a dispatch thread that runs the
        route-ship-execute-failover protocol (:meth:`_execute_remote`);
        inline mode executes on the calling thread over the local shard
        stores, exactly as the sharded pool.
        """
        future: Future = Future()
        with self._lock:
            if self._shutdown:
                raise PoolError("fleet mining pool is shut down")
            epoch = int(spec[1])
            if epoch not in self._full_stores:
                raise StaleEpochError(
                    f"epoch {epoch} is not exported "
                    f"(current epoch: {self._current_epoch})"
                )
            self._submitted += 1
            parallel = self.parallel
            if parallel:
                self._inflight[epoch] = self._inflight.get(epoch, 0) + 1
                self._pending.add(future)
                dispatcher = self._dispatcher

        if not parallel:
            try:
                future.set_result(_execute_shard_spec(spec, self._shard_stores))
            except BaseException as exc:
                future.set_exception(exc)
            return future

        def _run() -> None:
            try:
                result = self._execute_remote(spec, epoch)
            except BaseException as exc:
                self._finish(future, epoch, error=exc)
            else:
                self._finish(future, epoch, result=result)

        dispatcher.submit(_run)
        return future

    def _finish(self, future: Future, epoch: int, result=None, error=None) -> None:
        """Resolve one dispatched future and drive epoch drain accounting."""
        with self._lock:
            self._pending.discard(future)
            remaining = self._inflight.get(epoch, 0) - 1
            if remaining > 0:
                self._inflight[epoch] = remaining
            else:
                self._inflight.pop(epoch, None)
            self._drain_retired_locked()
        try:
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(result)
        except InvalidStateError:  # pragma: no cover - lost race with shutdown
            pass

    # -- remote execution (routing, shipping, failover) ---------------------------------

    def _execute_remote(self, spec: tuple, epoch: int):
        """Run one spec on the shard's replica set, failing over on faults.

        Routing is a consistent-hash lookup of the shard key over the *live*
        ring, recomputed per attempt: a worker marked dead mid-loop drops
        out, and after the preferred replicas are exhausted any surviving
        worker can serve (the lazy attach ships it the segment).  Transport
        faults (socket errors, I/O deadlines, wire-protocol violations)
        fail over; application errors — stale epochs, empty selections,
        worker-side mining failures — propagate immediately, because every
        replica would answer the same.
        """
        shard_id = int(spec[2])
        attempted: set = set()
        last_error: Optional[BaseException] = None
        while True:
            with self._lock:
                if self._shutdown:
                    raise PoolError("fleet mining pool is shut down")
                order = self._ring.lookup(f"shard-{shard_id}", self.replicas)
                member = next(
                    (
                        self._members[name]
                        for name in order
                        if name not in attempted
                    ),
                    None,
                )
            if member is None:
                break
            attempted.add(member.name)
            try:
                return self._request_on(member, spec, epoch, shard_id)
            except (WireProtocolError, OSError) as exc:
                last_error = exc
                self._mark_dead(member)
                with self._lock:
                    self._failovers += 1
        if last_error is None:
            raise PoolError(
                f"no live fleet worker to serve shard {shard_id} "
                f"(epoch {epoch})"
            )
        if isinstance(last_error, (socket.timeout, TimeoutError)):
            raise MiningTimeoutError(
                f"fleet worker(s) for shard {shard_id} exceeded the "
                f"{self.io_timeout_s:g}s I/O deadline"
            ) from last_error
        if isinstance(last_error, WireProtocolError):
            raise last_error
        raise PoolError(
            f"all {len(attempted)} replica worker(s) for shard {shard_id} "
            f"failed: {last_error}"
        ) from last_error

    def _connect_locked(self, member: _FleetMember) -> socket.socket:
        """The member's live socket, (re)connecting if needed (member lock held).

        A fresh connection clears the member's attach record: whatever the
        worker held belongs to an older connection's epoch sync, and the
        lazy attach re-ships on demand (epoch re-sync after reconnect).
        """
        if member.sock is not None:
            return member.sock
        sock = socket.create_connection(member.address, timeout=self.io_timeout_s)
        sock.settimeout(self.io_timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        member.sock = sock
        member.attached = set()
        return sock

    def _request_on(
        self, member: _FleetMember, spec: tuple, epoch: int, shard_id: int
    ):
        """One task round-trip on one member (attach-on-demand first)."""
        with member.lock:
            sock = self._connect_locked(member)
            key = (epoch, shard_id)
            if key not in member.attached:
                with self._lock:
                    segment = self._segments.get(key)
                    current = self._current_epoch
                if segment is None:
                    raise StaleEpochError(
                        f"epoch {epoch} shard {shard_id} is no longer "
                        f"exported (current epoch: {current})"
                    )
                manifest, blob = segment
                send_message(sock, ("attach", epoch, shard_id, manifest))
                send_frame(sock, blob)
                reply = recv_message(sock)
                if reply is None:
                    raise WireProtocolError(
                        f"fleet worker {member.name} closed the connection "
                        "during attach"
                    )
                if reply[0] != "ok":
                    raise WireProtocolError(
                        f"fleet worker {member.name} rejected attach: "
                        f"{reply[0]!r}"
                    )
                member.attached.add(key)
                with self._lock:
                    self._bytes_shipped += len(blob)
            send_message(sock, ("task", spec))
            reply = recv_message(sock)
            if reply is None:
                raise WireProtocolError(
                    f"fleet worker {member.name} closed the connection mid-task"
                )
            if reply[0] != "result" or len(reply) != 3:
                raise WireProtocolError(
                    f"unexpected {reply[0]!r} reply from fleet worker "
                    f"{member.name}"
                )
            _, ok, blob = reply
            member.tasks += 1
        try:
            payload = pickle.loads(blob)
        except Exception as exc:
            raise WireProtocolError(
                f"undecodable result payload from fleet worker "
                f"{member.name}: {exc}"
            ) from exc
        if ok:
            return payload
        if isinstance(payload, BaseException):
            raise payload
        raise PoolError(str(payload))

    def _mark_dead(self, member: _FleetMember) -> None:
        """Drop a member from the ring and close its connection."""
        with member.lock:
            if member.sock is not None:
                try:
                    member.sock.close()
                except OSError:  # pragma: no cover - already closed
                    pass
                member.sock = None
            member.attached = set()
        with self._lock:
            member.failures += 1
            if member.alive:
                member.alive = False
                self._ring.remove(member.name)

    def _revive(self, member: _FleetMember) -> None:
        """Return a responsive member to the ring."""
        with self._lock:
            if self._shutdown:
                return
            if not member.alive and member.name in self._members:
                member.alive = True
                self._ring.add(member.name)

    # -- membership (heartbeat, recycling, churn) ----------------------------------------

    def _heartbeat_loop(self) -> None:
        """Probe every member each period; recycle, revive and retire."""
        while not self._hb_stop.wait(self.heartbeat_s):
            with self._lock:
                if self._shutdown:
                    return
                members = list(self._members.values())
                floor = min(self._full_stores) if self._full_stores else None
            for member in members:
                self._heartbeat_member(member, floor)

    def _heartbeat_member(self, member: _FleetMember, floor: Optional[int]) -> None:
        """One membership probe: detach floor + ping, or recycle the corpse."""
        if member.proc is not None and member.proc.poll() is not None:
            self._mark_dead(member)
            if self.respawn:
                self._respawn(member)
            return
        if not member.lock.acquire(blocking=False):
            return  # mid-task on its socket — busy means alive
        ok = True
        try:
            sock = self._connect_locked(member)
            if floor is not None:
                send_message(sock, ("detach_below", floor))
                reply = recv_message(sock)
                if reply is None or reply[0] != "ok":
                    raise WireProtocolError("bad detach_below reply")
                member.attached = {
                    key for key in member.attached if key[0] >= floor
                }
            send_message(sock, ("ping",))
            reply = recv_message(sock)
            if reply is None or reply[0] != "pong":
                raise WireProtocolError("bad ping reply")
        except (OSError, WireProtocolError):
            ok = False
            if member.sock is not None:
                try:
                    member.sock.close()
                except OSError:  # pragma: no cover - already closed
                    pass
                member.sock = None
            member.attached = set()
        finally:
            member.lock.release()
        if ok:
            self._revive(member)
        else:
            with self._lock:
                self._heartbeat_failures += 1
            self._mark_dead(member)

    def _respawn(self, member: _FleetMember) -> None:
        """Replace a spawned member's dead process (worker recycling)."""
        old = member.proc
        try:
            proc = _spawn_worker_proc()
            address = _ready_address(proc)
        except PoolError:  # pragma: no cover - spawn failure
            return  # leave the member dead; the next heartbeat retries
        with member.lock:
            member.proc = proc
            member.address = address
            member.sock = None
            member.attached = set()
        if old is not None:
            _reap(old)
        self._revive(member)

    def recycle_worker(self, name: str) -> str:
        """Kill and respawn one spawned worker; it re-syncs lazily on reuse."""
        with self._lock:
            member = self._members.get(str(name))
        if member is None or member.proc is None:
            raise PoolError(f"no spawned fleet worker named {name!r}")
        try:
            member.proc.terminate()
        except OSError:  # pragma: no cover - already gone
            pass
        _reap(member.proc)
        self._mark_dead(member)
        self._respawn(member)
        return member.name

    def add_worker(self, address: Optional[str] = None) -> str:
        """Join one worker mid-epoch (spawned, or an external ``HOST:PORT``).

        The ring reassigns only ~1/(N+1) of the shard keys to the newcomer;
        its first routed task ships it the live segments (mid-epoch
        re-sync).  Returns the new member's name.
        """
        with self._lock:
            if self._shutdown:
                raise PoolError("fleet mining pool is shut down")
            if not self._members:
                raise PoolError(
                    "the fleet is not started — publish an epoch first"
                )
        if address is not None:
            member = _FleetMember(str(address), _parse_address(address))
        else:
            proc = _spawn_worker_proc()
            worker_address = _ready_address(proc)
            with self._lock:
                name = f"w{self._next_spawn_id}"
                self._next_spawn_id += 1
            member = _FleetMember(name, worker_address, proc)
        with self._lock:
            if self._shutdown:
                if member.proc is not None:
                    member.proc.terminate()
                raise PoolError("fleet mining pool is shut down")
            self._members[member.name] = member
            self._ring.add(member.name)
        return member.name

    def remove_worker(self, name: str) -> None:
        """Retire one worker from the ring (kills it if the pool spawned it)."""
        with self._lock:
            member = self._members.pop(str(name), None)
            if member is None:
                raise PoolError(f"unknown fleet worker {name!r}")
            if member.alive:
                self._ring.remove(member.name)
            member.alive = False
        with member.lock:
            if member.sock is not None:
                try:
                    member.sock.close()
                except OSError:  # pragma: no cover - already closed
                    pass
                member.sock = None
        if member.proc is not None:
            try:
                member.proc.terminate()
            except OSError:  # pragma: no cover - already gone
                pass
            _reap(member.proc)

    def live_workers(self) -> Tuple[str, ...]:
        """Names of the ring's current live members (diagnostics, tests)."""
        with self._lock:
            return self._ring.workers

    # -- shutdown / reporting -----------------------------------------------------------

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop the fleet: close sockets, reap spawned workers (idempotent)."""
        with self._lock:
            already = self._shutdown
            self._shutdown = True
            members = list(self._members.values())
            self._members = {}
            pending = list(self._pending)
            self._pending.clear()
            self._segments.clear()
            self._shard_stores.clear()
            self._full_stores.clear()
            self._explorers.clear()
            self._retiring.clear()
            self._inflight.clear()
            dispatcher, self._dispatcher = self._dispatcher, None
            heartbeat, self._heartbeat = self._heartbeat, None
            self._ring = HashRing(vnodes=self._ring.vnodes)
        if already and not members:
            return
        self._hb_stop.set()
        for future in pending:
            try:
                future.set_exception(PoolError("fleet mining pool is shut down"))
            except InvalidStateError:
                pass
        for member in members:
            with member.lock:
                sock, member.sock = member.sock, None
                if sock is not None:
                    if member.proc is not None:
                        try:
                            send_message(sock, ("shutdown",))
                        except OSError:
                            pass
                    try:
                        sock.close()
                    except OSError:  # pragma: no cover - already closed
                        pass
        for member in members:
            if member.proc is not None:
                try:
                    member.proc.terminate()
                except OSError:  # pragma: no cover - already gone
                    pass
        for member in members:
            if member.proc is not None:
                _reap(member.proc, timeout=5.0 if wait else 0.5)
        if dispatcher is not None:
            dispatcher.shutdown(wait=False)
        if heartbeat is not None:
            heartbeat.join(timeout=5)

    def to_dict(self) -> dict:
        """Status payload for the ``summary`` endpoint and ``/metrics``."""
        with self._lock:
            members = sorted(
                (
                    {
                        "name": member.name,
                        "alive": member.alive,
                        "address": "%s:%d" % member.address,
                        "spawned": member.proc is not None,
                        "tasks": member.tasks,
                        "failures": member.failures,
                    }
                    for member in self._members.values()
                ),
                key=lambda entry: entry["name"],
            )
            return {
                "backend": "fleet",
                "workers": len(members) if members else self.workers,
                "shards": self.shards,
                "scheme": self.scheme,
                "replicas": self.replicas,
                "parallel": self.parallel,
                "tasks_submitted": self._submitted,
                "current_epoch": self._current_epoch,
                "live_epochs": sorted(self._full_stores),
                "retiring_epochs": sorted(self._retiring),
                "members": members,
                "failovers": self._failovers,
                "heartbeat_failures": self._heartbeat_failures,
                "bytes_shipped": self._bytes_shipped,
                # Worker death is a membership change handled by failover,
                # never a broken pool: the fleet stays submittable as long
                # as it is not shut down.
                "broken": None,
            }
